//! Tuple-independent databases (TI-DBs).
//!
//! A TI-DB marks each tuple as optional or not; its possible worlds contain
//! all non-optional tuples plus any subset of the optional ones (paper
//! Section 4.1). The probabilistic version attaches a marginal probability
//! to each tuple. The paper's results for TI-DBs:
//!
//! * `label_TIDB` (certain ⇔ not optional / `P(t) = 1`) is **c-correct**
//!   (Theorem 1);
//! * the best-guess world keeps exactly the tuples with `P(t) ≥ 0.5`
//!   (Section 4.2);
//! * queries over TI-DB labelings additionally preserve c-completeness
//!   (Corollary 1), which `ua-core` tests end-to-end.

use rand::Rng;
use ua_data::relation::{Database, Relation};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_incomplete::IncompleteDb;

/// One tuple of a TI-relation with its marginal probability.
///
/// `probability == 1.0` means non-optional; anything below means optional.
/// Purely incomplete (non-probabilistic) TI-DBs use
/// [`TiTuple::optional`]'s default of 0.5.
#[derive(Clone, Debug, PartialEq)]
pub struct TiTuple {
    /// The tuple.
    pub tuple: Tuple,
    /// Marginal probability of the tuple's presence.
    pub probability: f64,
}

impl TiTuple {
    /// A certain (non-optional) tuple.
    pub fn certain(tuple: Tuple) -> TiTuple {
        TiTuple {
            tuple,
            probability: 1.0,
        }
    }

    /// An optional tuple without a meaningful probability (incomplete TI-DB).
    pub fn optional(tuple: Tuple) -> TiTuple {
        TiTuple {
            tuple,
            probability: 0.5,
        }
    }

    /// An optional tuple with an explicit marginal probability.
    ///
    /// # Panics
    /// Panics when `probability` is outside `[0, 1]`.
    pub fn with_probability(tuple: Tuple, probability: f64) -> TiTuple {
        assert!(
            (0.0..=1.0).contains(&probability),
            "marginal probability must be in [0,1], got {probability}"
        );
        TiTuple { tuple, probability }
    }

    /// Whether the tuple is optional (may be absent from some world).
    pub fn is_optional(&self) -> bool {
        self.probability < 1.0
    }
}

/// A TI-relation: independent tuples with marginals.
#[derive(Clone, Debug, PartialEq)]
pub struct TiRelation {
    schema: Schema,
    tuples: Vec<TiTuple>,
}

impl TiRelation {
    /// Empty TI-relation.
    pub fn new(schema: Schema) -> TiRelation {
        TiRelation {
            schema,
            tuples: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a tuple.
    pub fn push(&mut self, t: TiTuple) {
        assert_eq!(
            t.tuple.arity(),
            self.schema.arity(),
            "tuple arity must match the schema"
        );
        self.tuples.push(t);
    }

    /// The tuples.
    pub fn tuples(&self) -> &[TiTuple] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A tuple-independent database.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TiDb {
    relations: std::collections::BTreeMap<String, TiRelation>,
}

impl TiDb {
    /// Empty TI-DB.
    pub fn new() -> TiDb {
        TiDb::default()
    }

    /// Register a relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: TiRelation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&TiRelation> {
        self.relations.get(name)
    }

    /// Iterate over relations.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &TiRelation)> {
        self.relations.iter()
    }

    /// The best-guess world: all tuples with `P(t) ≥ 0.5` (paper
    /// Section 4.2 — this choice maximizes the world probability).
    pub fn best_guess_world(&self) -> Database<bool> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(
                name.clone(),
                Relation::from_tuples(
                    rel.schema.clone(),
                    rel.tuples
                        .iter()
                        .filter(|t| t.probability >= 0.5)
                        .map(|t| t.tuple.clone()),
                ),
            );
        }
        db
    }

    /// `label_TIDB`: the 𝔹-labeling marking exactly the non-optional tuples
    /// certain. C-correct by paper Theorem 1 (verified in tests).
    pub fn labeling(&self) -> Database<bool> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(
                name.clone(),
                Relation::from_tuples(
                    rel.schema.clone(),
                    rel.tuples
                        .iter()
                        .filter(|t| !t.is_optional())
                        .map(|t| t.tuple.clone()),
                ),
            );
        }
        db
    }

    /// Number of possible worlds (`2^#optional`), saturating.
    pub fn world_count(&self) -> u128 {
        let optional: u32 = self
            .relations
            .values()
            .flat_map(|r| &r.tuples)
            .filter(|t| t.is_optional())
            .count()
            .try_into()
            .unwrap_or(u32::MAX);
        1u128.checked_shl(optional).unwrap_or(u128::MAX)
    }

    /// Enumerate all possible worlds with their probabilities.
    ///
    /// # Panics
    /// Panics when there are more than `max_optional` optional tuples
    /// (world counts explode as `2^m`; callers wanting big instances should
    /// sample instead).
    pub fn enumerate_worlds(&self, max_optional: usize) -> IncompleteDb<bool> {
        let optional: Vec<(&String, &TiTuple)> = self
            .relations
            .iter()
            .flat_map(|(name, rel)| {
                rel.tuples
                    .iter()
                    .filter(|t| t.is_optional())
                    .map(move |t| (name, t))
            })
            .collect();
        assert!(
            optional.len() <= max_optional,
            "refusing to enumerate 2^{} worlds (limit 2^{max_optional})",
            optional.len()
        );
        let n = optional.len() as u32;
        let mut worlds = Vec::with_capacity(1 << n);
        let mut probs = Vec::with_capacity(1 << n);
        for mask in 0u64..(1u64 << n) {
            let mut db = Database::new();
            let mut prob = 1.0f64;
            for (name, rel) in &self.relations {
                let mut r: Relation<bool> = Relation::new(rel.schema.clone());
                for t in &rel.tuples {
                    if !t.is_optional() {
                        r.set(t.tuple.clone(), true);
                    }
                }
                db.insert(name.clone(), r);
            }
            for (bit, (name, t)) in optional.iter().enumerate() {
                let included = mask & (1 << bit) != 0;
                if included {
                    let mut r = db.get(name.as_str()).cloned().expect("relation exists");
                    r.set(t.tuple.clone(), true);
                    db.insert(name.to_string(), r);
                    prob *= t.probability;
                } else {
                    prob *= 1.0 - t.probability;
                }
            }
            worlds.push(db);
            probs.push(prob);
        }
        // Probabilities may not sum exactly to 1 for degenerate marginals;
        // normalize to guard against float drift.
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        IncompleteDb::new(worlds).with_probabilities(probs)
    }

    /// Sample one possible world.
    pub fn sample_world(&self, rng: &mut impl Rng) -> Database<bool> {
        let mut db = Database::new();
        for (name, rel) in &self.relations {
            db.insert(
                name.clone(),
                Relation::from_tuples(
                    rel.schema.clone(),
                    rel.tuples
                        .iter()
                        .filter(|t| !t.is_optional() || rng.gen::<f64>() < t.probability)
                        .map(|t| t.tuple.clone()),
                ),
            );
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_data::tuple;
    use ua_incomplete::{is_c_correct, is_c_sound};

    fn sample_tidb() -> TiDb {
        let mut rel = TiRelation::new(Schema::qualified("r", ["a"]));
        rel.push(TiTuple::certain(tuple![1i64]));
        rel.push(TiTuple::with_probability(tuple![2i64], 0.9));
        rel.push(TiTuple::with_probability(tuple![3i64], 0.2));
        let mut db = TiDb::new();
        db.insert("r", rel);
        db
    }

    #[test]
    fn world_count() {
        assert_eq!(sample_tidb().world_count(), 4);
    }

    #[test]
    fn enumeration_probabilities() {
        let inc = sample_tidb().enumerate_worlds(10);
        assert_eq!(inc.n_worlds(), 4);
        let total: f64 = (0..4).map(|i| inc.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Certain tuple 1 is in every world.
        for w in inc.worlds() {
            assert!(w.get("r").unwrap().annotation(&tuple![1i64]));
        }
    }

    #[test]
    fn theorem1_labeling_is_c_correct() {
        let db = sample_tidb();
        let inc = db.enumerate_worlds(10);
        let labeling = db.labeling();
        assert!(
            is_c_correct(&labeling, &inc),
            "Theorem 1: label_TIDB is c-correct"
        );
    }

    #[test]
    fn best_guess_world_keeps_majority_tuples() {
        let bgw = sample_tidb().best_guess_world();
        let r = bgw.get("r").unwrap();
        assert!(r.annotation(&tuple![1i64]));
        assert!(r.annotation(&tuple![2i64]));
        assert!(!r.annotation(&tuple![3i64]));
    }

    #[test]
    fn best_guess_world_is_most_probable() {
        let db = sample_tidb();
        let inc = db.enumerate_worlds(10);
        let bgw = db.best_guess_world();
        let bgw_index = (0..inc.n_worlds())
            .find(|&i| inc.world(i).get("r").unwrap() == bgw.get("r").unwrap())
            .expect("BGW must be one of the worlds");
        for i in 0..inc.n_worlds() {
            assert!(
                inc.probability(bgw_index) >= inc.probability(i) - 1e-12,
                "world {i} more probable than the BGW"
            );
        }
    }

    #[test]
    fn labeling_is_sound_even_with_all_optional() {
        let mut rel = TiRelation::new(Schema::qualified("r", ["a"]));
        rel.push(TiTuple::optional(tuple![1i64]));
        let mut db = TiDb::new();
        db.insert("r", rel);
        let inc = db.enumerate_worlds(10);
        assert!(is_c_sound(&db.labeling(), &inc));
        assert!(db.labeling().get("r").unwrap().is_empty());
    }

    #[test]
    fn sampling_respects_certain_tuples() {
        let db = sample_tidb();
        let mut rng = StdRng::seed_from_u64(42);
        let mut saw_2 = 0;
        for _ in 0..200 {
            let w = db.sample_world(&mut rng);
            assert!(w.get("r").unwrap().annotation(&tuple![1i64]));
            if w.get("r").unwrap().annotation(&tuple![2i64]) {
                saw_2 += 1;
            }
        }
        assert!(saw_2 > 140, "P=0.9 tuple sampled only {saw_2}/200 times");
    }

    #[test]
    #[should_panic(expected = "refusing to enumerate")]
    fn enumeration_limit() {
        let mut rel = TiRelation::new(Schema::qualified("r", ["a"]));
        for i in 0..25 {
            rel.push(TiTuple::optional(tuple![i as i64]));
        }
        let mut db = TiDb::new();
        db.insert("r", rel);
        let _ = db.enumerate_worlds(20);
    }
}
