//! The possible-world semiring `K^W` (paper Definition 2).
//!
//! An incomplete K-database with `n` worlds can equivalently be stored as a
//! single database whose annotations are *vectors* of length `n`: position
//! `i` holds the tuple's annotation in world `i`. Addition and
//! multiplication act pointwise, and the projection `pw_i` (extracting world
//! `i`) is a semiring homomorphism (paper Lemma 1) — which is exactly why
//! queries over `K^W`-databases implement possible-world semantics.
//!
//! `Semiring::zero`/`one` carry no length information, so [`WorldVec`] has a
//! length-polymorphic [`WorldVec::Uniform`] variant denoting "the same
//! annotation in every world". Operations broadcast `Uniform` against
//! concrete vectors; all concrete vectors combined in one expression must
//! have equal lengths (enforced with a panic, since mixed-width annotation
//! vectors indicate a construction bug, not a recoverable condition).

use crate::{LSemiring, NaturalOrder, Semiring};

/// An annotation in the possible-world semiring `K^W`.
#[derive(Clone, Debug)]
pub enum WorldVec<K> {
    /// The same annotation `k` in every world (length-polymorphic).
    Uniform(K),
    /// One annotation per world.
    Worlds(Vec<K>),
}

/// Semantic equality: `Uniform(k)` denotes `k` in *every* world, so it equals
/// any concrete vector whose entries are all `k` (this keeps the semiring
/// laws — e.g. `0 ⊗ v = 0` — observable through `==`).
impl<K: PartialEq> PartialEq for WorldVec<K> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (WorldVec::Uniform(a), WorldVec::Uniform(b)) => a == b,
            (WorldVec::Uniform(a), WorldVec::Worlds(bs))
            | (WorldVec::Worlds(bs), WorldVec::Uniform(a)) => bs.iter().all(|b| b == a),
            (WorldVec::Worlds(a), WorldVec::Worlds(b)) => a == b,
        }
    }
}

impl<K: Eq> Eq for WorldVec<K> {}

impl<K: Semiring> WorldVec<K> {
    /// Annotation vector from per-world annotations.
    ///
    /// # Panics
    /// Panics when `worlds` is empty: an incomplete database must have at
    /// least one possible world.
    pub fn from_worlds(worlds: Vec<K>) -> Self {
        assert!(
            !worlds.is_empty(),
            "an incomplete database needs at least one possible world"
        );
        WorldVec::Worlds(worlds)
    }

    /// The number of worlds, if this vector is concrete.
    pub fn len(&self) -> Option<usize> {
        match self {
            WorldVec::Uniform(_) => None,
            WorldVec::Worlds(v) => Some(v.len()),
        }
    }

    /// Whether this vector is concrete and empty (never true for values built
    /// through [`WorldVec::from_worlds`]).
    pub fn is_empty(&self) -> bool {
        matches!(self, WorldVec::Worlds(v) if v.is_empty())
    }

    /// The annotation in world `i` — the homomorphism `pw_i` (paper Eq. 5).
    pub fn world(&self, i: usize) -> K {
        match self {
            WorldVec::Uniform(k) => k.clone(),
            WorldVec::Worlds(v) => v[i].clone(),
        }
    }

    /// Expand to a concrete vector of `n` worlds.
    ///
    /// # Panics
    /// Panics if already concrete with a different length.
    pub fn materialize(self, n: usize) -> Vec<K> {
        match self {
            WorldVec::Uniform(k) => vec![k; n],
            WorldVec::Worlds(v) => {
                assert_eq!(v.len(), n, "world-vector width mismatch");
                v
            }
        }
    }

    /// The certain annotation `cert_K = ⊓_K` over all worlds
    /// (paper Section 3.2).
    pub fn cert(&self) -> K
    where
        K: LSemiring,
    {
        match self {
            WorldVec::Uniform(k) => k.clone(),
            WorldVec::Worlds(v) => K::glb_all(v.iter()).expect("non-empty world vector"),
        }
    }

    /// The possible annotation `poss_K = ⊔_K` over all worlds.
    pub fn poss(&self) -> K
    where
        K: LSemiring,
    {
        match self {
            WorldVec::Uniform(k) => k.clone(),
            WorldVec::Worlds(v) => K::lub_all(v.iter()).expect("non-empty world vector"),
        }
    }

    fn zip_with(&self, other: &Self, f: impl Fn(&K, &K) -> K) -> Self {
        match (self, other) {
            (WorldVec::Uniform(a), WorldVec::Uniform(b)) => WorldVec::Uniform(f(a, b)),
            (WorldVec::Uniform(a), WorldVec::Worlds(bs)) => {
                WorldVec::Worlds(bs.iter().map(|b| f(a, b)).collect())
            }
            (WorldVec::Worlds(rs), WorldVec::Uniform(b)) => {
                WorldVec::Worlds(rs.iter().map(|a| f(a, b)).collect())
            }
            (WorldVec::Worlds(rs), WorldVec::Worlds(bs)) => {
                assert_eq!(
                    rs.len(),
                    bs.len(),
                    "combining annotation vectors of different world counts"
                );
                WorldVec::Worlds(rs.iter().zip(bs).map(|(a, b)| f(a, b)).collect())
            }
        }
    }
}

impl<K: Semiring> Semiring for WorldVec<K> {
    fn zero() -> Self {
        WorldVec::Uniform(K::zero())
    }

    fn one() -> Self {
        WorldVec::Uniform(K::one())
    }

    fn plus(&self, other: &Self) -> Self {
        self.zip_with(other, K::plus)
    }

    fn times(&self, other: &Self) -> Self {
        self.zip_with(other, K::times)
    }

    fn is_zero(&self) -> bool {
        match self {
            WorldVec::Uniform(k) => k.is_zero(),
            WorldVec::Worlds(v) => v.iter().all(K::is_zero),
        }
    }

    fn is_one(&self) -> bool {
        match self {
            WorldVec::Uniform(k) => k.is_one(),
            WorldVec::Worlds(v) => v.iter().all(K::is_one),
        }
    }
}

impl<K: NaturalOrder> NaturalOrder for WorldVec<K> {
    fn natural_leq(&self, other: &Self) -> bool {
        match (self, other) {
            (WorldVec::Uniform(a), WorldVec::Uniform(b)) => a.natural_leq(b),
            (WorldVec::Uniform(a), WorldVec::Worlds(bs)) => bs.iter().all(|b| a.natural_leq(b)),
            (WorldVec::Worlds(rs), WorldVec::Uniform(b)) => rs.iter().all(|a| a.natural_leq(b)),
            (WorldVec::Worlds(rs), WorldVec::Worlds(bs)) => {
                rs.len() == bs.len() && rs.iter().zip(bs).all(|(a, b)| a.natural_leq(b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn example8_encoding() {
        // Paper Example 8: the ℕ²-relation annotations.
        let lasalle = WorldVec::from_worlds(vec![3u64, 2]);
        let tucson = WorldVec::from_worlds(vec![2u64, 1]);
        let greenville = WorldVec::from_worlds(vec![0u64, 5]);
        assert_eq!(lasalle.cert(), 2);
        assert_eq!(tucson.cert(), 1);
        assert_eq!(greenville.cert(), 0);
        assert_eq!(greenville.poss(), 5);
    }

    #[test]
    fn pointwise_ops() {
        let a = WorldVec::from_worlds(vec![1u64, 2]);
        let b = WorldVec::from_worlds(vec![3u64, 0]);
        assert_eq!(a.plus(&b), WorldVec::from_worlds(vec![4, 2]));
        assert_eq!(a.times(&b), WorldVec::from_worlds(vec![3, 0]));
    }

    #[test]
    fn uniform_broadcast() {
        let one = WorldVec::<u64>::one();
        let b = WorldVec::from_worlds(vec![3u64, 0]);
        assert_eq!(one.times(&b), b);
        assert_eq!(WorldVec::<u64>::zero().plus(&b), b);
        assert_eq!(one.clone().materialize(3), vec![1, 1, 1]);
        assert!(WorldVec::<u64>::zero().is_zero());
    }

    #[test]
    fn pw_projection() {
        let a = WorldVec::from_worlds(vec![1u64, 2, 5]);
        assert_eq!(a.world(0), 1);
        assert_eq!(a.world(2), 5);
        assert_eq!(WorldVec::Uniform(7u64).world(1), 7);
    }

    #[test]
    #[should_panic(expected = "different world counts")]
    fn width_mismatch_panics() {
        let a = WorldVec::from_worlds(vec![1u64, 2]);
        let b = WorldVec::from_worlds(vec![1u64, 2, 3]);
        let _ = a.plus(&b);
    }

    #[test]
    fn natural_order_is_pointwise() {
        let a = WorldVec::from_worlds(vec![1u64, 2]);
        let b = WorldVec::from_worlds(vec![2u64, 2]);
        assert!(a.natural_leq(&b));
        assert!(!b.natural_leq(&a));
    }

    #[test]
    fn world_vec_laws() {
        let elems = vec![
            WorldVec::<u64>::zero(),
            WorldVec::<u64>::one(),
            WorldVec::from_worlds(vec![1, 2]),
            WorldVec::from_worlds(vec![0, 3]),
            WorldVec::from_worlds(vec![2, 2]),
        ];
        laws::check_semiring_laws(&elems);
    }
}
