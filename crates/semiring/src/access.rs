//! The access-control semiring `A` (Green et al.; paper Section 11.3,
//! Figure 21).
//!
//! Elements form the chain `0 < T < S < C < P`:
//!
//! * `0` — "nobody can access the data" (the additive identity; the tuple is
//!   effectively absent),
//! * `T` — top secret, `S` — secret, `C` — confidential,
//! * `P` — public (the multiplicative identity).
//!
//! Addition is `max` and multiplication is `min` w.r.t. this chain: joining
//! two tuples yields a result at the *more restrictive* clearance, while
//! alternative derivations grant the *least restrictive* one.
//!
//! Because the order is total, `A` is an l-semiring with `⊓ = min` and
//! `⊔ = max`, so UA-DBs over `A` are well defined: the certain annotation of
//! a tuple is the most restrictive clearance it carries in any world.

use crate::{LSemiring, Monus, NaturalOrder, Semiring};

/// An element of the access-control semiring.
///
/// Ordered as `None < TopSecret < Secret < Confidential < Public`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Access {
    /// Nobody can access the data (`0_A`).
    #[default]
    None,
    /// Top-secret clearance required.
    TopSecret,
    /// Secret clearance required.
    Secret,
    /// Confidential clearance required.
    Confidential,
    /// Publicly accessible (`1_A`).
    Public,
}

impl Access {
    /// All five elements in ascending order.
    pub const ALL: [Access; 5] = [
        Access::None,
        Access::TopSecret,
        Access::Secret,
        Access::Confidential,
        Access::Public,
    ];

    /// Rank in the chain, `0` for [`Access::None`] through `4` for
    /// [`Access::Public`].
    pub fn rank(self) -> u8 {
        match self {
            Access::None => 0,
            Access::TopSecret => 1,
            Access::Secret => 2,
            Access::Confidential => 3,
            Access::Public => 4,
        }
    }

    /// Element with the given rank, if in `0..=4`.
    pub fn from_rank(rank: u8) -> Option<Access> {
        Access::ALL.get(rank as usize).copied()
    }

    /// The label-error distance used by the paper's Figure 21: the number of
    /// chain steps between two clearances, normalized by the chain length
    /// (e.g. `dist(C, T) = 2/5 = 0.4`).
    pub fn distance(self, other: Access) -> f64 {
        (self.rank().abs_diff(other.rank())) as f64 / 5.0
    }
}

impl Semiring for Access {
    fn zero() -> Self {
        Access::None
    }
    fn one() -> Self {
        Access::Public
    }
    fn plus(&self, other: &Self) -> Self {
        *self.max(other)
    }
    fn times(&self, other: &Self) -> Self {
        *self.min(other)
    }
}

impl NaturalOrder for Access {
    fn natural_leq(&self, other: &Self) -> bool {
        // a ⊕ c = max(a, c) = b is solvable iff a ≤ b in the chain.
        self <= other
    }
}

impl LSemiring for Access {
    fn glb(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn lub(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

impl Monus for Access {
    fn monus(&self, other: &Self) -> Self {
        // Least c with a ⪯ max(b, c): zero when a ≤ b, otherwise a itself.
        if self <= other {
            Access::None
        } else {
            *self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn chain_order() {
        assert!(Access::None < Access::TopSecret);
        assert!(Access::TopSecret < Access::Secret);
        assert!(Access::Secret < Access::Confidential);
        assert!(Access::Confidential < Access::Public);
    }

    #[test]
    fn plus_is_max_times_is_min() {
        assert_eq!(Access::Secret.plus(&Access::Public), Access::Public);
        assert_eq!(Access::Secret.times(&Access::Public), Access::Secret);
        // Joining a top-secret tuple with a public one yields top secret.
        assert_eq!(Access::TopSecret.times(&Access::Public), Access::TopSecret);
    }

    #[test]
    fn identities() {
        for a in Access::ALL {
            assert_eq!(a.plus(&Access::None), a);
            assert_eq!(a.times(&Access::Public), a);
            assert_eq!(a.times(&Access::None), Access::None);
        }
    }

    #[test]
    fn distance_matches_paper_example() {
        // "the distance of C and T is 2/5 = 0.4"
        assert_eq!(Access::Confidential.distance(Access::TopSecret), 0.4);
        assert_eq!(Access::Public.distance(Access::Public), 0.0);
        assert_eq!(Access::Public.distance(Access::None), 0.8);
    }

    #[test]
    fn rank_round_trip() {
        for a in Access::ALL {
            assert_eq!(Access::from_rank(a.rank()), Some(a));
        }
        assert_eq!(Access::from_rank(5), None);
    }

    #[test]
    fn access_laws() {
        laws::check_semiring_laws(&Access::ALL);
        laws::check_lattice_laws(&Access::ALL);
        laws::check_natural_order_laws(&Access::ALL);
        laws::check_monus_laws(&Access::ALL);
    }
}
