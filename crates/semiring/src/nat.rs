//! The bag semiring `ℕ = ⟨ℕ, +, ×, 0, 1⟩`.
//!
//! Tuples in bag relations are annotated with their multiplicity. We
//! represent `ℕ` by `u64` with *saturating* arithmetic: multiplicities in all
//! of the paper's workloads are tiny, and saturation keeps `⊕`/`⊗` total
//! without panicking on adversarial inputs. Saturation only bends the
//! semiring laws at `u64::MAX`, far outside any realistic multiplicity.
//!
//! `ℕ`'s natural order is the usual order on naturals, with `⊓ = min` and
//! `⊔ = max` (paper Section 3.1); its monus is saturating subtraction.

use crate::{LSemiring, Monus, NaturalOrder, Semiring};

impl Semiring for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn plus(&self, other: &Self) -> Self {
        self.saturating_add(*other)
    }
    fn times(&self, other: &Self) -> Self {
        self.saturating_mul(*other)
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn is_one(&self) -> bool {
        *self == 1
    }
}

impl NaturalOrder for u64 {
    fn natural_leq(&self, other: &Self) -> bool {
        self <= other
    }
}

impl LSemiring for u64 {
    fn glb(&self, other: &Self) -> Self {
        *self.min(other)
    }
    fn lub(&self, other: &Self) -> Self {
        *self.max(other)
    }
}

impl Monus for u64 {
    fn monus(&self, other: &Self) -> Self {
        self.saturating_sub(*other)
    }
}

#[cfg(test)]
mod tests {
    use crate::{laws, LSemiring, Monus, NaturalOrder, Semiring};

    #[test]
    fn nat_identities() {
        assert_eq!(u64::zero(), 0);
        assert_eq!(u64::one(), 1);
        assert_eq!(3u64.plus(&4), 7);
        assert_eq!(3u64.times(&4), 12);
    }

    #[test]
    fn nat_certain_annotation_is_min() {
        // Paper Example 7: cert_ℕ({2,3}) = min(2,3) = 2; cert_ℕ({0,5}) = 0.
        assert_eq!(u64::glb_all([2u64, 3].iter()), Some(2));
        assert_eq!(u64::glb_all([0u64, 5].iter()), Some(0));
        assert_eq!(u64::lub_all([2u64, 3].iter()), Some(3));
    }

    #[test]
    fn nat_natural_order() {
        assert!(2u64.natural_leq(&5));
        assert!(!5u64.natural_leq(&2));
        assert!(2u64.natural_lt(&3));
    }

    #[test]
    fn nat_monus_truncates() {
        assert_eq!(5u64.monus(&3), 2);
        assert_eq!(3u64.monus(&5), 0);
        assert_eq!(0u64.monus(&0), 0);
    }

    #[test]
    fn nat_saturates_instead_of_overflowing() {
        assert_eq!(u64::MAX.plus(&1), u64::MAX);
        assert_eq!(u64::MAX.times(&2), u64::MAX);
    }

    #[test]
    fn nat_laws_on_small_sample() {
        laws::check_semiring_laws(&[0u64, 1, 2, 3, 7, 100]);
        laws::check_lattice_laws(&[0u64, 1, 2, 3, 7, 100]);
        laws::check_natural_order_laws(&[0u64, 1, 2, 3, 7, 100]);
    }
}
