//! Semiring homomorphisms.
//!
//! A mapping `h : K → K'` is a semiring homomorphism when it maps `0`/`1` to
//! their counterparts and distributes over `⊕` and `⊗`. Homomorphisms lift
//! pointwise to K-relations and **commute with RA⁺ queries**
//! (`h(Q(D)) = Q(h(D))`, Green et al.), which the paper uses to prove:
//!
//! * possible-world semantics of `K^W`-databases (`pw_i` is a hom, Lemma 1),
//! * bound preservation for UA-DBs (`h_cert`, `h_det` are homs, Theorem 4).
//!
//! Any `Fn(&A) -> B` can serve as a [`SemiringHom`]; the free functions below
//! are the homomorphisms named in the paper.

use crate::pair::Ua;
use crate::world::WorldVec;
use crate::Semiring;

/// A mapping between semirings, expected (and in tests verified) to be a
/// homomorphism.
pub trait SemiringHom<A: Semiring, B: Semiring> {
    /// Apply the mapping to one annotation.
    fn apply(&self, a: &A) -> B;
}

impl<A: Semiring, B: Semiring, F: Fn(&A) -> B> SemiringHom<A, B> for F {
    fn apply(&self, a: &A) -> B {
        self(a)
    }
}

/// The support homomorphism `ℕ → 𝔹`: `h(k) = T iff k > 0`
/// (paper Example 6 — deriving a set instance from a bag instance).
pub fn support(k: &u64) -> bool {
    *k > 0
}

/// `h_cert : K² → K`, first projection of a UA-annotation.
pub fn h_cert<K: Semiring>(ua: &Ua<K>) -> K {
    ua.cert.clone()
}

/// `h_det : K² → K`, second projection of a UA-annotation.
pub fn h_det<K: Semiring>(ua: &Ua<K>) -> K {
    ua.det.clone()
}

/// `pw_i : K^W → K`, extraction of possible world `i` (paper Eq. 5).
pub fn pw<K: Semiring>(i: usize) -> impl Fn(&WorldVec<K>) -> K {
    move |v| v.world(i)
}

/// Verify the homomorphism laws of `h` on all pairs drawn from `elems`.
///
/// Intended for tests: panics with a descriptive message on the first
/// violated law.
pub fn check_hom_laws<A, B, H>(h: &H, elems: &[A])
where
    A: Semiring,
    B: Semiring,
    H: SemiringHom<A, B>,
{
    assert_eq!(h.apply(&A::zero()), B::zero(), "hom must map 0 to 0");
    assert_eq!(h.apply(&A::one()), B::one(), "hom must map 1 to 1");
    for a in elems {
        for b in elems {
            assert_eq!(
                h.apply(&a.plus(b)),
                h.apply(a).plus(&h.apply(b)),
                "hom must distribute over ⊕ (at {a:?}, {b:?})"
            );
            assert_eq!(
                h.apply(&a.times(b)),
                h.apply(a).times(&h.apply(b)),
                "hom must distribute over ⊗ (at {a:?}, {b:?})"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn support_is_a_hom() {
        check_hom_laws(&support, &[0u64, 1, 2, 3, 10]);
    }

    #[test]
    fn ua_projections_are_homs() {
        let elems: Vec<Ua<u64>> = [(0u64, 0u64), (0, 1), (1, 1), (2, 3)]
            .iter()
            .map(|&(c, d)| Ua::new(c, d))
            .collect();
        check_hom_laws(&h_cert::<u64>, &elems);
        check_hom_laws(&h_det::<u64>, &elems);
    }

    #[test]
    fn pw_is_a_hom_lemma1() {
        let elems = vec![
            WorldVec::from_worlds(vec![1u64, 2]),
            WorldVec::from_worlds(vec![0u64, 3]),
            WorldVec::<u64>::zero(),
            WorldVec::<u64>::one(),
        ];
        check_hom_laws(&pw::<u64>(0), &elems);
        check_hom_laws(&pw::<u64>(1), &elems);
    }
}
