//! Exhaustive law checkers for semiring instances.
//!
//! These helpers iterate over every pair/triple drawn from a caller-supplied
//! sample of elements and assert the algebraic laws the paper relies on.
//! They back both the unit tests of each instance and the workspace's
//! property-based tests (which feed them randomly generated samples).

use crate::{LSemiring, Monus, NaturalOrder, Semiring};

/// Assert the commutative-semiring laws on every triple from `elems`.
///
/// # Panics
/// Panics (with the offending elements) on the first violated law.
pub fn check_semiring_laws<K: Semiring>(elems: &[K]) {
    let zero = K::zero();
    let one = K::one();
    assert!(zero.is_zero());
    assert!(one.is_one());
    for a in elems {
        assert_eq!(&a.plus(&zero), a, "0 must be the ⊕ identity at {a:?}");
        assert_eq!(&a.times(&one), a, "1 must be the ⊗ identity at {a:?}");
        assert_eq!(a.times(&zero), zero, "0 must annihilate ⊗ at {a:?}");
        for b in elems {
            assert_eq!(a.plus(b), b.plus(a), "⊕ must commute at {a:?}, {b:?}");
            assert_eq!(a.times(b), b.times(a), "⊗ must commute at {a:?}, {b:?}");
            for c in elems {
                assert_eq!(
                    a.plus(&b.plus(c)),
                    a.plus(b).plus(c),
                    "⊕ must associate at {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.times(&b.times(c)),
                    a.times(b).times(c),
                    "⊗ must associate at {a:?}, {b:?}, {c:?}"
                );
                assert_eq!(
                    a.times(&b.plus(c)),
                    a.times(b).plus(&a.times(c)),
                    "⊗ must distribute over ⊕ at {a:?}, {b:?}, {c:?}"
                );
            }
        }
    }
}

/// Assert the lattice laws (absorption, idempotence, consistency with the
/// natural order) on every pair from `elems`.
pub fn check_lattice_laws<K: LSemiring>(elems: &[K]) {
    for a in elems {
        assert_eq!(&a.glb(a), a, "⊓ must be idempotent at {a:?}");
        assert_eq!(&a.lub(a), a, "⊔ must be idempotent at {a:?}");
        for b in elems {
            assert_eq!(a.glb(b), b.glb(a), "⊓ must commute");
            assert_eq!(a.lub(b), b.lub(a), "⊔ must commute");
            assert_eq!(&a.lub(&a.glb(b)), a, "absorption a ⊔ (a ⊓ b) = a");
            assert_eq!(&a.glb(&a.lub(b)), a, "absorption a ⊓ (a ⊔ b) = a");
            let g = a.glb(b);
            assert!(
                g.natural_leq(a) && g.natural_leq(b),
                "⊓ must be a lower bound at {a:?}, {b:?}"
            );
            let l = a.lub(b);
            assert!(
                a.natural_leq(&l) && b.natural_leq(&l),
                "⊔ must be an upper bound at {a:?}, {b:?}"
            );
        }
    }
}

/// Assert that the natural order is a partial order on `elems` and that it
/// factors through `⊕` and `⊗` (paper Lemma 2).
pub fn check_natural_order_laws<K: NaturalOrder>(elems: &[K]) {
    for a in elems {
        assert!(a.natural_leq(a), "⪯ must be reflexive at {a:?}");
        assert!(
            K::zero().natural_leq(a),
            "0 must be the least element at {a:?}"
        );
        for b in elems {
            if a.natural_leq(b) && b.natural_leq(a) {
                assert_eq!(a, b, "⪯ must be antisymmetric at {a:?}, {b:?}");
            }
            for c in elems {
                if a.natural_leq(b) && b.natural_leq(c) {
                    assert!(
                        a.natural_leq(c),
                        "⪯ must be transitive at {a:?}, {b:?}, {c:?}"
                    );
                }
                for d in elems {
                    // Lemma 2: monotonicity of ⊕ and ⊗.
                    if a.natural_leq(c) && b.natural_leq(d) {
                        assert!(
                            a.plus(b).natural_leq(&c.plus(d)),
                            "⊕ must be monotone (Lemma 2)"
                        );
                        assert!(
                            a.times(b).natural_leq(&c.times(d)),
                            "⊗ must be monotone (Lemma 2)"
                        );
                    }
                }
            }
        }
    }
}

/// Assert the defining property of the monus on every pair from `elems`:
/// `a ⊖ b` is the least `c` (among the sample) with `a ⪯ b ⊕ c`.
pub fn check_monus_laws<K: Monus + NaturalOrder>(elems: &[K]) {
    for a in elems {
        for b in elems {
            let m = a.monus(b);
            assert!(
                a.natural_leq(&b.plus(&m)),
                "a ⪯ b ⊕ (a ⊖ b) must hold at {a:?}, {b:?}"
            );
            for c in elems {
                if a.natural_leq(&b.plus(c)) {
                    assert!(
                        m.natural_leq(c),
                        "a ⊖ b must be minimal at {a:?}, {b:?}, {c:?}"
                    );
                }
            }
        }
    }
}

/// Assert that `cert`-style GLB folds are superadditive and
/// supermultiplicative over pairs of world vectors (paper Lemma 3), given a
/// sample of per-world annotations.
pub fn check_cert_super_laws<K: LSemiring>(vectors: &[Vec<K>]) {
    use crate::world::WorldVec;
    for a in vectors {
        for b in vectors {
            if a.len() != b.len() {
                continue;
            }
            let va = WorldVec::from_worlds(a.clone());
            let vb = WorldVec::from_worlds(b.clone());
            let sum = va.plus(&vb);
            let prod = va.times(&vb);
            assert!(
                va.cert().plus(&vb.cert()).natural_leq(&sum.cert()),
                "cert must be superadditive (Lemma 3) at {a:?}, {b:?}"
            );
            assert!(
                va.cert().times(&vb.cert()).natural_leq(&prod.cert()),
                "cert must be supermultiplicative (Lemma 3) at {a:?}, {b:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma3_on_nat_vectors() {
        let vectors = vec![
            vec![0u64, 5],
            vec![2, 3],
            vec![1, 1],
            vec![4, 0],
            vec![7, 2],
        ];
        check_cert_super_laws(&vectors);
    }

    #[test]
    fn lemma3_on_bool_vectors() {
        let vectors = vec![
            vec![false, true],
            vec![true, true],
            vec![false, false],
            vec![true, false],
        ];
        check_cert_super_laws(&vectors);
    }

    #[test]
    fn nat_monus_law() {
        check_monus_laws(&[0u64, 1, 2, 3, 5, 9]);
    }
}
