//! The UA-semiring `K_UA = K²` (paper Definition 3).
//!
//! A UA-DB annotates each tuple with a pair `[c, d]`:
//!
//! * `c` (the *certain* component) under-approximates the tuple's certain
//!   annotation `cert_K(D, t)`,
//! * `d` (the *determinized* component) is the tuple's annotation in the
//!   distinguished best-guess world.
//!
//! `K²` is the direct product of `K` with itself, with pointwise operations —
//! and products of semirings are semirings, so standard K-relational query
//! evaluation applies unchanged. The projections [`Ua::cert`] (`h_cert`) and
//! [`Ua::det`] (`h_det`) are semiring homomorphisms (see [`crate::hom`]),
//! which is the crux of the paper's Theorem 4: queries act on the two
//! components independently, so the sandwich
//! `c ⪯ cert_K(D, t) ⪯ d` is preserved by every RA⁺ query.

use crate::{LSemiring, Monus, NaturalOrder, Semiring};

/// An annotation in the UA-semiring `K² = K × K`: `[certain, best-guess]`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Ua<K> {
    /// Under-approximation of the certain annotation (`c`).
    pub cert: K,
    /// Annotation in the best-guess world (`d`).
    pub det: K,
}

impl<K: Semiring> Ua<K> {
    /// Annotation `[cert, det]`.
    pub fn new(cert: K, det: K) -> Self {
        Ua { cert, det }
    }

    /// A fully certain annotation `[k, k]`.
    pub fn certain(k: K) -> Self {
        Ua {
            cert: k.clone(),
            det: k,
        }
    }

    /// A fully uncertain annotation `[0, k]`: present in the best-guess world
    /// but with no certainty guarantee.
    pub fn uncertain(k: K) -> Self {
        Ua {
            cert: K::zero(),
            det: k,
        }
    }

    /// The `h_cert` projection.
    pub fn cert(&self) -> &K {
        &self.cert
    }

    /// The `h_det` projection.
    pub fn det(&self) -> &K {
        &self.det
    }

    /// Whether the annotation claims full certainty (`c = d`, and the tuple
    /// is present). For `𝔹` this is the "Certain?" column of the paper's
    /// Figure 3d.
    pub fn is_fully_certain(&self) -> bool {
        !self.det.is_zero() && self.cert == self.det
    }

    /// A well-formed UA-annotation must satisfy `c ⪯_K d`: the certain lower
    /// bound can never exceed the best-guess annotation.
    pub fn is_well_formed(&self) -> bool
    where
        K: NaturalOrder,
    {
        self.cert.natural_leq(&self.det)
    }
}

impl<K: Semiring> Semiring for Ua<K> {
    fn zero() -> Self {
        Ua {
            cert: K::zero(),
            det: K::zero(),
        }
    }

    fn one() -> Self {
        Ua {
            cert: K::one(),
            det: K::one(),
        }
    }

    fn plus(&self, other: &Self) -> Self {
        Ua {
            cert: self.cert.plus(&other.cert),
            det: self.det.plus(&other.det),
        }
    }

    fn times(&self, other: &Self) -> Self {
        Ua {
            cert: self.cert.times(&other.cert),
            det: self.det.times(&other.det),
        }
    }

    fn is_zero(&self) -> bool {
        self.cert.is_zero() && self.det.is_zero()
    }

    fn is_one(&self) -> bool {
        self.cert.is_one() && self.det.is_one()
    }
}

impl<K: NaturalOrder> NaturalOrder for Ua<K> {
    fn natural_leq(&self, other: &Self) -> bool {
        // The natural order of a product semiring is pointwise.
        self.cert.natural_leq(&other.cert) && self.det.natural_leq(&other.det)
    }
}

impl<K: LSemiring> LSemiring for Ua<K> {
    fn glb(&self, other: &Self) -> Self {
        Ua {
            cert: self.cert.glb(&other.cert),
            det: self.det.glb(&other.det),
        }
    }

    fn lub(&self, other: &Self) -> Self {
        Ua {
            cert: self.cert.lub(&other.cert),
            det: self.det.lub(&other.det),
        }
    }
}

impl<K: Monus> Monus for Ua<K> {
    fn monus(&self, other: &Self) -> Self {
        Ua {
            cert: self.cert.monus(&other.cert),
            det: self.det.monus(&other.det),
        }
    }
}

/// A generic direct product of two (possibly different) semirings.
///
/// `Ua<K>` is the special case `Product<K, K>` with named fields; the generic
/// form is used in tests of the "products of semirings are semirings" fact
/// the paper leans on.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Product<A, B>(pub A, pub B);

impl<A: Semiring, B: Semiring> Semiring for Product<A, B> {
    fn zero() -> Self {
        Product(A::zero(), B::zero())
    }
    fn one() -> Self {
        Product(A::one(), B::one())
    }
    fn plus(&self, other: &Self) -> Self {
        Product(self.0.plus(&other.0), self.1.plus(&other.1))
    }
    fn times(&self, other: &Self) -> Self {
        Product(self.0.times(&other.0), self.1.times(&other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laws;

    #[test]
    fn ua_bool_pointwise() {
        let c = Ua::certain(true);
        let u = Ua::uncertain(true);
        // Joining a certain with an uncertain tuple yields uncertain.
        let j = c.times(&u);
        assert_eq!(j, Ua::new(false, true));
        assert!(!j.is_fully_certain());
        // Union of two uncertain derivations of the same tuple stays present.
        assert_eq!(u.plus(&u), Ua::new(false, true));
    }

    #[test]
    fn ua_nat_multiplicities() {
        let a = Ua::<u64>::new(2, 3); // at least 2 copies certain, 3 in BGW
        let b = Ua::<u64>::new(1, 1);
        assert_eq!(a.plus(&b), Ua::new(3, 4));
        assert_eq!(a.times(&b), Ua::new(2, 3));
        assert!(a.is_well_formed());
        assert!(!Ua::<u64>::new(4, 3).is_well_formed());
    }

    #[test]
    fn fully_certain_requires_presence() {
        assert!(Ua::certain(true).is_fully_certain());
        assert!(!Ua::<bool>::zero().is_fully_certain());
        assert!(!Ua::uncertain(true).is_fully_certain());
        assert!(Ua::<u64>::new(2, 2).is_fully_certain());
        assert!(!Ua::<u64>::new(1, 2).is_fully_certain());
    }

    #[test]
    fn ua_laws() {
        let elems: Vec<Ua<u64>> = [(0u64, 0u64), (0, 1), (1, 1), (1, 2), (2, 3)]
            .iter()
            .map(|&(c, d)| Ua::new(c, d))
            .collect();
        laws::check_semiring_laws(&elems);
        laws::check_lattice_laws(&elems);
    }

    #[test]
    fn product_laws() {
        let elems = [
            Product(false, 0u64),
            Product(true, 0),
            Product(false, 2),
            Product(true, 3),
        ];
        laws::check_semiring_laws(&elems);
    }
}
