//! Commutative semirings and the annotation algebra behind UA-DBs.
//!
//! This crate provides the algebraic foundation of the K-relation framework
//! of Green, Karvounarakis and Tannen (PODS 2007) as it is used by
//! *Uncertainty Annotated Databases* (Feng, Huber, Glavic, Kennedy,
//! SIGMOD 2019):
//!
//! * [`Semiring`] — commutative semirings `⟨K, ⊕, ⊗, 0, 1⟩`;
//! * [`NaturalOrder`] — semirings whose natural order
//!   (`k ⪯ k' ⇔ ∃k''. k ⊕ k'' = k'`) is a partial order;
//! * [`LSemiring`] — naturally ordered semirings whose order forms a lattice,
//!   giving well-defined greatest lower bounds (the paper defines the
//!   *certain annotation* `cert_K` as a GLB across possible worlds);
//! * [`Monus`] — semirings with a truncated subtraction `⊖` (needed by the
//!   bag encoding of UA-relations, paper Definition 8);
//! * [`SemiringHom`] — semiring homomorphisms, which commute with queries and
//!   drive most of the paper's proofs.
//!
//! Concrete instances:
//!
//! * [`bool`] — the set semiring `𝔹 = ⟨{F,T}, ∨, ∧, F, T⟩`;
//! * [`u64`] — the bag semiring `ℕ = ⟨ℕ, +, ×, 0, 1⟩` (saturating at
//!   `u64::MAX`; see [`nat`]);
//! * [`access::Access`] — the access-control semiring `A` of Green et al.,
//!   used in the paper's Figure 21 experiment;
//! * [`pair::Ua`] — the UA-semiring `K_UA = K × K` carrying
//!   `[certain, best-guess]` pairs (paper Section 5);
//! * [`world::WorldVec`] — the possible-world semiring `K^W`
//!   (paper Definition 2).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod hom;
pub mod laws;
pub mod nat;
pub mod pair;
pub mod world;

use std::fmt::Debug;

/// A commutative semiring `⟨K, ⊕, ⊗, 0, 1⟩`.
///
/// Laws (checked for all concrete instances by [`laws::check_semiring_laws`]):
///
/// * `⊕` and `⊗` are commutative and associative;
/// * `0` is the identity of `⊕` and annihilates `⊗`;
/// * `1` is the identity of `⊗`;
/// * `⊗` distributes over `⊕`.
///
/// Annotations of tuples in K-relations are semiring elements; queries of the
/// positive relational algebra combine them using only `⊕` and `⊗`, which is
/// what makes homomorphisms commute with queries.
pub trait Semiring: Clone + PartialEq + Debug + Send + Sync + 'static {
    /// The additive identity `0_K`. Tuples annotated `0_K` are *not* in the
    /// relation.
    fn zero() -> Self;
    /// The multiplicative identity `1_K`.
    fn one() -> Self;
    /// Semiring addition `⊕_K` (used by union and projection).
    fn plus(&self, other: &Self) -> Self;
    /// Semiring multiplication `⊗_K` (used by join and selection).
    fn times(&self, other: &Self) -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool {
        *self == Self::zero()
    }

    /// Whether this element is the multiplicative identity.
    fn is_one(&self) -> bool {
        *self == Self::one()
    }

    /// In-place addition; override when cheaper than `plus` + assignment.
    fn plus_assign(&mut self, other: &Self) {
        *self = self.plus(other);
    }

    /// In-place multiplication.
    fn times_assign(&mut self, other: &Self) {
        *self = self.times(other);
    }

    /// `⊕`-fold of an iterator (the empty sum is `0_K`).
    fn sum<'a, I>(iter: I) -> Self
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut acc = Self::zero();
        for k in iter {
            acc.plus_assign(k);
        }
        acc
    }

    /// `⊗`-fold of an iterator (the empty product is `1_K`).
    fn product<'a, I>(iter: I) -> Self
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut acc = Self::one();
        for k in iter {
            acc.times_assign(k);
        }
        acc
    }

    /// The boolean `b` coerced into `K`: `1_K` if `b` else `0_K`.
    ///
    /// This is `θ(t)` from the paper's selection semantics
    /// `[σ_θ(R)](t) = R(t) ⊗ θ(t)`.
    fn from_bool(b: bool) -> Self {
        if b {
            Self::one()
        } else {
            Self::zero()
        }
    }
}

/// A semiring whose *natural order* is a partial order ("naturally ordered"
/// semiring, paper Section 2.3, Eq. 4).
///
/// The natural order is defined as `k ⪯_K k' ⇔ ∃k''. k ⊕_K k'' = k'`.
/// Implementations must decide this relation exactly.
pub trait NaturalOrder: Semiring {
    /// Whether `self ⪯_K other` holds in the natural order.
    fn natural_leq(&self, other: &Self) -> bool;

    /// Strict variant of [`NaturalOrder::natural_leq`].
    fn natural_lt(&self, other: &Self) -> bool {
        self.natural_leq(other) && self != other
    }
}

/// An *l-semiring* (Kostylev & Buneman): a naturally ordered semiring whose
/// order forms a lattice, so every finite set of elements has a unique
/// greatest lower bound and least upper bound.
///
/// UA-DBs define the certain annotation of a tuple as the GLB of its
/// annotations across all possible worlds (paper Section 3.1), so the
/// underlying semiring must be an l-semiring.
pub trait LSemiring: NaturalOrder {
    /// Greatest lower bound `⊓_K` of two elements.
    fn glb(&self, other: &Self) -> Self;
    /// Least upper bound `⊔_K` of two elements.
    fn lub(&self, other: &Self) -> Self;

    /// GLB of a non-empty iterator; `None` when empty.
    ///
    /// Well-defined regardless of iteration order because `⊓` is associative
    /// and commutative in a lattice.
    fn glb_all<'a, I>(iter: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut iter = iter.into_iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, k| acc.glb(k)))
    }

    /// LUB of a non-empty iterator; `None` when empty.
    fn lub_all<'a, I>(iter: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Self>,
        Self: 'a,
    {
        let mut iter = iter.into_iter();
        let first = iter.next()?.clone();
        Some(iter.fold(first, |acc, k| acc.lub(k)))
    }
}

/// A semiring with a *monus* operation `⊖` (Geerts & Poggi): a truncated
/// subtraction satisfying `a ⊖ b = ` the least `c` with `a ⪯ b ⊕ c`.
///
/// The bag encoding of a UA-relation stores `d ⊖ c` copies of a tuple marked
/// "uncertain" (paper Definition 8), which is where this operation is needed.
pub trait Monus: Semiring {
    /// Truncated subtraction `self ⊖ other`.
    fn monus(&self, other: &Self) -> Self;
}

pub use hom::SemiringHom;

// ---------------------------------------------------------------------------
// The set semiring 𝔹.
// ---------------------------------------------------------------------------

impl Semiring for bool {
    fn zero() -> Self {
        false
    }
    fn one() -> Self {
        true
    }
    fn plus(&self, other: &Self) -> Self {
        *self || *other
    }
    fn times(&self, other: &Self) -> Self {
        *self && *other
    }
    fn is_zero(&self) -> bool {
        !*self
    }
    fn is_one(&self) -> bool {
        *self
    }
}

impl NaturalOrder for bool {
    fn natural_leq(&self, other: &Self) -> bool {
        // F ⪯ F, F ⪯ T, T ⪯ T; T ⋠ F.
        !*self || *other
    }
}

impl LSemiring for bool {
    fn glb(&self, other: &Self) -> Self {
        *self && *other
    }
    fn lub(&self, other: &Self) -> Self {
        *self || *other
    }
}

impl Monus for bool {
    fn monus(&self, other: &Self) -> Self {
        *self && !*other
    }
}

/// The set semiring `𝔹` (alias for `bool`).
pub type BoolSemiring = bool;

/// The bag semiring `ℕ` (alias for `u64`; see [`nat`] for the impl).
pub type NatSemiring = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_semiring_tables() {
        assert!(!bool::zero());
        assert!(bool::one());
        assert!(true.plus(&false));
        assert!(!false.plus(&false));
        assert!(true.times(&true));
        assert!(!true.times(&false));
    }

    #[test]
    fn bool_natural_order_is_f_below_t() {
        assert!(false.natural_leq(&true));
        assert!(false.natural_leq(&false));
        assert!(true.natural_leq(&true));
        assert!(!true.natural_leq(&false));
        assert!(false.natural_lt(&true));
        assert!(!false.natural_lt(&false));
    }

    #[test]
    fn bool_lattice_matches_logic() {
        assert!(!true.glb(&false));
        assert!(true.lub(&false));
        assert_eq!(
            bool::glb_all([true, true, false].iter()),
            Some(false),
            "⊓ over 𝔹 is conjunction"
        );
        assert_eq!(bool::lub_all([false, false].iter()), Some(false));
        assert_eq!(bool::glb_all(std::iter::empty()), None);
    }

    #[test]
    fn bool_monus() {
        assert!(true.monus(&false));
        assert!(!true.monus(&true));
        assert!(!false.monus(&true));
    }

    #[test]
    fn sum_and_product_folds() {
        assert!(bool::sum([false, true].iter()));
        assert!(!bool::sum(std::iter::empty()));
        assert!(bool::product(std::iter::empty()));
        assert!(!bool::product([true, false].iter()));
    }

    #[test]
    fn from_bool_coercion() {
        assert_eq!(u64::from_bool(true), 1);
        assert_eq!(u64::from_bool(false), 0);
        assert!(bool::from_bool(true));
    }

    #[test]
    fn bool_laws() {
        laws::check_semiring_laws(&[false, true]);
        laws::check_lattice_laws(&[false, true]);
    }
}
