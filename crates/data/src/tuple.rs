//! Tuples: immutable, cheaply clonable rows of [`Value`]s.

use crate::value::Value;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable tuple over the universal domain.
///
/// Backed by `Arc<[Value]>`: cloning (which joins and map keys do
/// constantly) is a reference-count bump; equality and hashing act on the
/// contents.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Tuple {
        Tuple(values.into().into())
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Tuple {
        Tuple(Arc::from(Vec::new()))
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenation `(self, other)` — the join of two matched tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Tuple(v.into())
    }

    /// Projection onto the given positions (positions may repeat).
    ///
    /// # Panics
    /// Panics when a position is out of range — projection positions are
    /// produced by schema binding, so this indicates an internal bug.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// A new tuple with `value` appended.
    pub fn push(&self, value: Value) -> Tuple {
        let mut v = Vec::with_capacity(self.arity() + 1);
        v.extend_from_slice(&self.0);
        v.push(value);
        Tuple(v.into())
    }

    /// Whether any attribute is SQL `NULL` or a labeled null.
    ///
    /// Certain-answer semantics only admit *complete* tuples, so baselines
    /// use this to filter incomplete candidates.
    pub fn has_unknown(&self) -> bool {
        self.0.iter().any(Value::is_unknown)
    }

    /// Whether any attribute is an *anonymous* SQL `NULL` (labeled nulls do
    /// not count: a labeled null equals itself, so it can serve as a hash
    /// key — structural equality of `Var`s coincides with their SQL
    /// equality semantics).
    pub fn has_null(&self) -> bool {
        self.0.iter().any(|v| matches!(v, Value::Null))
    }

    /// Substitute every labeled null through `f` (used to instantiate
    /// C-table tuples in a possible world).
    pub fn substitute(&self, f: impl Fn(&Value) -> Value) -> Tuple {
        Tuple(self.0.iter().map(f).collect())
    }
}

impl Deref for Tuple {
    type Target = [Value];
    fn deref(&self) -> &[Value] {
        &self.0
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    fn from(values: [Value; N]) -> Tuple {
        Tuple(Arc::from(values.to_vec()))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Tuple {
        Tuple(values.into())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        Tuple(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

/// Shorthand for building a [`Tuple`] from heterogeneous literals:
/// `tuple![1, "abc", 2.5]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::VarId;

    #[test]
    fn construction_and_access() {
        let t = tuple![1i64, "ab", 2.5];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(1)));
        assert_eq!(t.get(1), Some(&Value::str("ab")));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn concat_and_project() {
        let a = tuple![1i64, 2i64];
        let b = tuple!["x"];
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), tuple!["x", 1i64]);
        assert_eq!(c.project(&[1, 1]), tuple![2i64, 2i64]);
    }

    #[test]
    fn unknown_detection() {
        assert!(!tuple![1i64, "a"].has_unknown());
        assert!(Tuple::new(vec![Value::Null]).has_unknown());
        assert!(Tuple::new(vec![Value::Var(VarId(0))]).has_unknown());
    }

    #[test]
    fn substitution() {
        let t = Tuple::new(vec![Value::Var(VarId(7)), Value::Int(1)]);
        let s = t.substitute(|v| match v {
            Value::Var(VarId(7)) => Value::Int(42),
            other => other.clone(),
        });
        assert_eq!(s, tuple![42i64, 1i64]);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(tuple![1i64, "a"], tuple![1i64, "a"]);
        assert_ne!(tuple![1i64, "a"], tuple![1i64, "b"]);
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, "a"].to_string(), "⟨1, 'a'⟩");
        assert_eq!(Tuple::empty().to_string(), "⟨⟩");
    }
}
