//! Relation schemas and column resolution.
//!
//! A [`Schema`] is an ordered list of columns, each with an optional
//! *qualifier* (typically the table or alias name it came from). Column
//! references resolve by exact qualified match (`a.id`) or by unambiguous
//! unqualified name (`id`); ambiguous references are an error, mirroring SQL
//! name resolution.

use std::fmt;
use std::sync::Arc;

/// One column of a schema: optional qualifier + name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Column {
    /// Table/alias qualifier, when known.
    pub qualifier: Option<Arc<str>>,
    /// Column name.
    pub name: Arc<str>,
}

impl Column {
    /// An unqualified column.
    pub fn unqualified(name: impl AsRef<str>) -> Column {
        Column {
            qualifier: None,
            name: Arc::from(name.as_ref()),
        }
    }

    /// A qualified column `qualifier.name`.
    pub fn qualified(qualifier: impl AsRef<str>, name: impl AsRef<str>) -> Column {
        Column {
            qualifier: Some(Arc::from(qualifier.as_ref())),
            name: Arc::from(name.as_ref()),
        }
    }

    fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Errors raised while resolving column references against a schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SchemaError {
    /// The referenced column does not exist.
    UnknownColumn(String),
    /// The reference matches more than one column.
    AmbiguousColumn(String),
    /// Two relations were combined with incompatible widths.
    ArityMismatch {
        /// Width of the left relation.
        left: usize,
        /// Width of the right relation.
        right: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            SchemaError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            SchemaError::ArityMismatch { left, right } => {
                write!(f, "arity mismatch: {left} vs {right} columns")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered list of columns (cheaply clonable).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    columns: Arc<[Column]>,
}

impl Schema {
    /// Schema from explicit columns.
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema {
            columns: columns.into(),
        }
    }

    /// Schema of unqualified columns named `names`.
    pub fn unqualified<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Schema {
        Schema::new(names.into_iter().map(Column::unqualified).collect())
    }

    /// Schema where every column is qualified by `qualifier`.
    pub fn qualified<S: AsRef<str>>(qualifier: &str, names: impl IntoIterator<Item = S>) -> Schema {
        Schema::new(
            names
                .into_iter()
                .map(|n| Column::qualified(qualifier, n))
                .collect(),
        )
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Unqualified column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.to_string()).collect()
    }

    /// Resolve a column reference (`name` or `qualifier.name`).
    ///
    /// Resolution is case-insensitive. Fails on unknown or ambiguous
    /// references. An exact qualified reference that matches exactly one
    /// column always wins; an unqualified reference must be unique among all
    /// column names.
    pub fn resolve(&self, reference: &str) -> Result<usize, SchemaError> {
        let (qualifier, name) = match reference.rsplit_once('.') {
            Some((q, n)) => (Some(q), n),
            None => (None, reference),
        };
        let mut matches = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name));
        match (matches.next(), matches.next()) {
            (Some((i, _)), None) => Ok(i),
            (None, _) => Err(SchemaError::UnknownColumn(reference.to_string())),
            (Some(_), Some(_)) => Err(SchemaError::AmbiguousColumn(reference.to_string())),
        }
    }

    /// Concatenation of two schemas (the schema of a join result).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.columns.to_vec();
        cols.extend_from_slice(&other.columns);
        Schema::new(cols)
    }

    /// The same columns re-qualified by `qualifier` (the schema of an
    /// aliased subquery).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| Column::qualified(qualifier, &c.name))
                .collect(),
        )
    }

    /// A schema with one extra unqualified column appended.
    pub fn with_column(&self, name: impl AsRef<str>) -> Schema {
        let mut cols = self.columns.to_vec();
        cols.push(Column::unqualified(name));
        Schema::new(cols)
    }

    /// Check that `other` has the same arity (union compatibility under our
    /// permissive regime: positional, like SQL `UNION ALL`).
    pub fn check_union_compatible(&self, other: &Schema) -> Result<(), SchemaError> {
        if self.arity() == other.arity() {
            Ok(())
        } else {
            Err(SchemaError::ArityMismatch {
                left: self.arity(),
                right: other.arity(),
            })
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_unqualified() {
        let s = Schema::unqualified(["id", "name"]);
        assert_eq!(s.resolve("id"), Ok(0));
        assert_eq!(s.resolve("NAME"), Ok(1));
        assert_eq!(
            s.resolve("missing"),
            Err(SchemaError::UnknownColumn("missing".into()))
        );
    }

    #[test]
    fn resolve_qualified() {
        let s = Schema::qualified("a", ["id"]).concat(&Schema::qualified("b", ["id"]));
        assert_eq!(s.resolve("a.id"), Ok(0));
        assert_eq!(s.resolve("b.id"), Ok(1));
        assert_eq!(
            s.resolve("id"),
            Err(SchemaError::AmbiguousColumn("id".into()))
        );
    }

    #[test]
    fn unqualified_reference_hits_qualified_column() {
        let s = Schema::qualified("addr", ["id", "geocoded"]);
        assert_eq!(s.resolve("geocoded"), Ok(1));
        assert_eq!(s.resolve("addr.geocoded"), Ok(1));
        assert_eq!(
            s.resolve("other.geocoded"),
            Err(SchemaError::UnknownColumn("other.geocoded".into()))
        );
    }

    #[test]
    fn requalify() {
        let s = Schema::qualified("a", ["id"]).with_qualifier("x");
        assert_eq!(s.resolve("x.id"), Ok(0));
        assert!(s.resolve("a.id").is_err());
    }

    #[test]
    fn union_compatibility() {
        let a = Schema::unqualified(["x", "y"]);
        let b = Schema::unqualified(["u", "v"]);
        let c = Schema::unqualified(["u"]);
        assert!(a.check_union_compatible(&b).is_ok());
        assert!(a.check_union_compatible(&c).is_err());
    }

    #[test]
    fn display() {
        let s = Schema::qualified("t", ["a"]).concat(&Schema::unqualified(["b"]));
        assert_eq!(s.to_string(), "(t.a, b)");
    }
}
