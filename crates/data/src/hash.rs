//! A fast, non-cryptographic hasher for tuple-keyed maps.
//!
//! This is the Fx hash algorithm used throughout rustc (and published as the
//! `rustc-hash` crate, which is not on this project's approved dependency
//! list — the algorithm is small enough to carry inline). It is much faster
//! than SipHash for the short integer/string keys that dominate relational
//! workloads; HashDoS resistance is irrelevant for an analytical engine that
//! only hashes its own generated data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let mut rest = chunks.remainder();
        if rest.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                rest[..4].try_into().expect("4-byte chunk"),
            )));
            rest = &rest[4..];
        }
        for &b in rest {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world, this is a tuple");
        b.write(b"hello world, this is a tuple");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn distinguishes_inputs() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"tuple-a");
        b.write(b"tuple-b");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(format!("key{i}"), i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&format!("key{i}")), Some(&i));
        }
    }
}
