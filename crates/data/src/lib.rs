//! Values, tuples, schemas, expressions and K-relations with `RA⁺`.
//!
//! This crate is the data layer shared by every component of the UA-DB
//! reproduction:
//!
//! * [`value::Value`] — the universal domain, including SQL nulls and
//!   labeled nulls (variables);
//! * [`tuple::Tuple`] / [`schema::Schema`] — rows and column resolution;
//! * [`expr::Expr`] — scalar expressions with two- and three-valued
//!   evaluation;
//! * [`relation::Relation`] — K-relations (annotation maps) over any
//!   [`ua_semiring::Semiring`];
//! * [`algebra`] — the positive relational algebra with K-relational
//!   semantics, one evaluator for every annotation domain.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod expr;
pub mod hash;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use algebra::{eval, ProjColumn, RaError, RaExpr};
pub use expr::{ArithOp, CmpOp, Expr, ExprError, Truth};
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use relation::{bag_relation, set_relation, Database, Relation};
pub use schema::{Column, Schema, SchemaError};
pub use tuple::Tuple;
pub use value::{Value, VarId, F64};
