//! Scalar expressions with two- and three-valued evaluation.
//!
//! Expressions are built against column *references* ([`Expr::Named`]) and
//! bound to a concrete [`Schema`] (producing positional [`Expr::Col`]
//! references) before evaluation. Predicates evaluate to a Kleene [`Truth`]
//! so that the engine can implement both classical two-valued semantics
//! (unknown ⇒ reject, used by K-relational selection `R(t) ⊗ θ(t)`) and the
//! SQL/Libkin three-valued semantics over nulls.

use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Kleene three-valued truth.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Truth {
    /// Certainly true.
    True,
    /// Certainly false.
    False,
    /// Unknown (a null or labeled null was involved).
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Two-valued collapse: unknown becomes `false`.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }

    /// From a boolean.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// To a SQL boolean value (`Unknown` ⇒ `NULL`).
    pub fn to_value(self) -> Value {
        match self {
            Truth::True => Value::Bool(true),
            Truth::False => Value::Bool(false),
            Truth::Unknown => Value::Null,
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Apply to an ordering.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with its arguments swapped (`a op b ≡ b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The negated operator (`NOT (a op b) ≡ a op.negate() b` for non-null
    /// operands).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Errors raised during expression binding or evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExprError {
    /// A column reference failed to resolve.
    Schema(SchemaError),
    /// An unbound named column reached evaluation.
    Unbound(String),
    /// Incompatible operand types.
    Type(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::Schema(e) => write!(f, "{e}"),
            ExprError::Unbound(c) => write!(f, "unbound column reference `{c}`"),
            ExprError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for ExprError {}

impl From<SchemaError> for ExprError {
    fn from(e: SchemaError) -> Self {
        ExprError::Schema(e)
    }
}

/// A scalar expression.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A bound (positional) column reference.
    Col(usize),
    /// A named column reference, resolved by [`Expr::bind`].
    Named(String),
    /// A literal value.
    Lit(Value),
    /// Comparison of two sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `expr IS NULL` (also true for labeled nulls).
    IsNull(Box<Expr>),
    /// Searched `CASE WHEN cond THEN value ... [ELSE value] END`.
    Case {
        /// `(condition, result)` branches, tested in order.
        branches: Vec<(Expr, Expr)>,
        /// The `ELSE` result (`NULL` when omitted).
        otherwise: Option<Box<Expr>>,
    },
    /// `expr BETWEEN low AND high`.
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, ..., vn)`.
    InList(Box<Expr>, Vec<Expr>),
    /// Binary `LEAST`/minimum of two expressions (used by the UA rewriting's
    /// `min(Q1.C, Q2.C)` projection).
    Least(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Column reference by position.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Column reference by (possibly qualified) name.
    pub fn named(name: impl Into<String>) -> Expr {
        Expr::Named(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }

    /// `self BETWEEN low AND high`.
    pub fn between(self, low: Expr, high: Expr) -> Expr {
        Expr::Between(Box::new(self), Box::new(low), Box::new(high))
    }

    /// `LEAST(self, other)`.
    pub fn least(self, other: Expr) -> Expr {
        Expr::Least(Box::new(self), Box::new(other))
    }

    /// The conjunction of all expressions (`TRUE` when empty).
    pub fn conjunction(exprs: impl IntoIterator<Item = Expr>) -> Expr {
        exprs
            .into_iter()
            .reduce(Expr::and)
            .unwrap_or(Expr::Lit(Value::Bool(true)))
    }

    /// Resolve all [`Expr::Named`] references against `schema`, producing a
    /// fully positional expression.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, ExprError> {
        Ok(match self {
            Expr::Col(i) => Expr::Col(*i),
            Expr::Named(name) => Expr::Col(schema.resolve(name)?),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => Expr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => Expr::Not(Box::new(a.bind(schema)?)),
            Expr::Arith(op, a, b) => {
                Expr::Arith(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.bind(schema)?)),
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((c.bind(schema)?, v.bind(schema)?)))
                    .collect::<Result<_, ExprError>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.bind(schema)?)),
                    None => None,
                },
            },
            Expr::Between(e, lo, hi) => Expr::Between(
                Box::new(e.bind(schema)?),
                Box::new(lo.bind(schema)?),
                Box::new(hi.bind(schema)?),
            ),
            Expr::InList(e, list) => Expr::InList(
                Box::new(e.bind(schema)?),
                list.iter()
                    .map(|v| v.bind(schema))
                    .collect::<Result<_, _>>()?,
            ),
            Expr::Least(a, b) => Expr::Least(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
        })
    }

    /// Evaluate to a [`Value`]. Predicates embedded as values follow SQL
    /// semantics (`Unknown` ⇒ `NULL`).
    pub fn eval(&self, tuple: &Tuple) -> Result<Value, ExprError> {
        Ok(match self {
            Expr::Col(i) => tuple
                .get(*i)
                .cloned()
                .ok_or_else(|| ExprError::Type(format!("column index {i} out of range")))?,
            Expr::Named(name) => return Err(ExprError::Unbound(name.clone())),
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..)
            | Expr::IsNull(..)
            | Expr::Between(..)
            | Expr::InList(..) => self.eval_truth(tuple)?.to_value(),
            Expr::Arith(op, a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                let result = match op {
                    ArithOp::Add => va.add(&vb),
                    ArithOp::Sub => va.sub(&vb),
                    ArithOp::Mul => va.mul(&vb),
                    ArithOp::Div => va.div(&vb),
                };
                result.ok_or_else(|| ExprError::Type(format!("cannot compute {va} {op} {vb}")))?
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (cond, result) in branches {
                    if cond.eval_truth(tuple)?.is_true() {
                        return result.eval(tuple);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(tuple)?,
                    None => Value::Null,
                }
            }
            Expr::Least(a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                match va.sql_cmp(&vb) {
                    Some(Ordering::Greater) => vb,
                    Some(_) => va,
                    None => Value::Null,
                }
            }
        })
    }

    /// Evaluate as a predicate under Kleene three-valued logic.
    pub fn eval_truth(&self, tuple: &Tuple) -> Result<Truth, ExprError> {
        Ok(match self {
            Expr::Cmp(op, a, b) => {
                let va = a.eval(tuple)?;
                let vb = b.eval(tuple)?;
                match va.sql_cmp(&vb) {
                    Some(ord) => Truth::from_bool(op.test(ord)),
                    // `x <> x` on an identical variable is certainly false,
                    // handled by sql_cmp; everything else unknown.
                    None => Truth::Unknown,
                }
            }
            Expr::And(a, b) => a.eval_truth(tuple)?.and(b.eval_truth(tuple)?),
            Expr::Or(a, b) => a.eval_truth(tuple)?.or(b.eval_truth(tuple)?),
            Expr::Not(a) => a.eval_truth(tuple)?.not(),
            Expr::IsNull(a) => Truth::from_bool(a.eval(tuple)?.is_unknown()),
            Expr::Between(e, lo, hi) => {
                let v = e.eval(tuple)?;
                let lo = lo.eval(tuple)?;
                let hi = hi.eval(tuple)?;
                let ge_lo = match v.sql_cmp(&lo) {
                    Some(ord) => Truth::from_bool(CmpOp::Ge.test(ord)),
                    None => Truth::Unknown,
                };
                let le_hi = match v.sql_cmp(&hi) {
                    Some(ord) => Truth::from_bool(CmpOp::Le.test(ord)),
                    None => Truth::Unknown,
                };
                ge_lo.and(le_hi)
            }
            Expr::InList(e, list) => {
                let v = e.eval(tuple)?;
                let mut acc = Truth::False;
                for item in list {
                    let w = item.eval(tuple)?;
                    let eq = match v.sql_cmp(&w) {
                        Some(ord) => Truth::from_bool(CmpOp::Eq.test(ord)),
                        None => Truth::Unknown,
                    };
                    acc = acc.or(eq);
                    if acc == Truth::True {
                        break;
                    }
                }
                acc
            }
            other => match other.eval(tuple)? {
                Value::Bool(b) => Truth::from_bool(b),
                Value::Null | Value::Var(_) => Truth::Unknown,
                v => return Err(ExprError::Type(format!("{v} is not a boolean"))),
            },
        })
    }

    /// Two-valued predicate evaluation: `Unknown` collapses to `false`.
    /// This realizes the paper's `θ(t)` in `[σ_θ(R)](t) = R(t) ⊗ θ(t)`.
    pub fn holds(&self, tuple: &Tuple) -> Result<bool, ExprError> {
        Ok(self.eval_truth(tuple)?.is_true())
    }

    /// All column positions this (bound) expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Named(_) | Expr::Lit(_) => {}
            Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b)
            | Expr::Arith(_, a, b)
            | Expr::Least(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.referenced_columns(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.referenced_columns(out);
                    v.referenced_columns(out);
                }
                if let Some(e) = otherwise {
                    e.referenced_columns(out);
                }
            }
            Expr::Between(e, lo, hi) => {
                e.referenced_columns(out);
                lo.referenced_columns(out);
                hi.referenced_columns(out);
            }
            Expr::InList(e, list) => {
                e.referenced_columns(out);
                for item in list {
                    item.referenced_columns(out);
                }
            }
        }
    }

    /// Rebuild the expression with every column reference mapped: named
    /// references through `names` (which may decline, failing the whole
    /// rebuild with `None`) and positional references through `cols`.
    /// Everything else is cloned structurally. This is the one shared
    /// reference-rewriting visitor — [`crate::algebra::shift_columns`] and
    /// the optimizer's requalification/remapping passes are instantiations.
    pub fn map_refs(
        &self,
        names: &dyn Fn(&str) -> Option<String>,
        cols: &dyn Fn(usize) -> usize,
    ) -> Option<Expr> {
        let go = |e: &Expr| e.map_refs(names, cols);
        Some(match self {
            Expr::Named(name) => Expr::Named(names(name)?),
            Expr::Col(i) => Expr::Col(cols(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(*op, Box::new(go(a)?), Box::new(go(b)?)),
            Expr::And(a, b) => Expr::And(Box::new(go(a)?), Box::new(go(b)?)),
            Expr::Or(a, b) => Expr::Or(Box::new(go(a)?), Box::new(go(b)?)),
            Expr::Not(a) => Expr::Not(Box::new(go(a)?)),
            Expr::Arith(op, a, b) => Expr::Arith(*op, Box::new(go(a)?), Box::new(go(b)?)),
            Expr::IsNull(a) => Expr::IsNull(Box::new(go(a)?)),
            Expr::Between(e, lo, hi) => {
                Expr::Between(Box::new(go(e)?), Box::new(go(lo)?), Box::new(go(hi)?))
            }
            Expr::InList(e, list) => Expr::InList(
                Box::new(go(e)?),
                list.iter().map(go).collect::<Option<_>>()?,
            ),
            Expr::Least(a, b) => Expr::Least(Box::new(go(a)?), Box::new(go(b)?)),
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Some((go(c)?, go(v)?)))
                    .collect::<Option<_>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(go(e)?)),
                    None => None,
                },
            },
        })
    }

    /// Split a conjunction into its conjuncts.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::And(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(i) => write!(f, "#{i}"),
            Expr::Named(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::Arith(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Between(e, lo, hi) => write!(f, "({e} BETWEEN {lo} AND {hi})"),
            Expr::InList(e, list) => {
                write!(f, "({e} IN (")?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            Expr::Least(a, b) => write!(f, "LEAST({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use crate::value::VarId;

    fn bind(e: Expr, names: &[&str]) -> Expr {
        e.bind(&Schema::unqualified(names.iter().copied())).unwrap()
    }

    #[test]
    fn bind_and_eval_comparison() {
        let e = bind(Expr::named("a").lt(Expr::lit(10i64)), &["a", "b"]);
        assert!(e.holds(&tuple![5i64, 0i64]).unwrap());
        assert!(!e.holds(&tuple![15i64, 0i64]).unwrap());
    }

    #[test]
    fn three_valued_logic_over_nulls() {
        let e = bind(Expr::named("a").eq(Expr::lit(1i64)), &["a"]);
        let null_row = Tuple::new(vec![Value::Null]);
        assert_eq!(e.eval_truth(&null_row).unwrap(), Truth::Unknown);
        assert!(!e.holds(&null_row).unwrap());
        // Unknown OR True = True.
        let e2 = bind(
            Expr::named("a").eq(Expr::lit(1i64)).or(Expr::lit(true)),
            &["a"],
        );
        assert_eq!(e2.eval_truth(&null_row).unwrap(), Truth::True);
    }

    #[test]
    fn labeled_null_self_equality() {
        let e = bind(Expr::named("a").eq(Expr::named("b")), &["a", "b"]);
        let x = Value::Var(VarId(1));
        assert_eq!(
            e.eval_truth(&Tuple::new(vec![x.clone(), x.clone()]))
                .unwrap(),
            Truth::True
        );
        assert_eq!(
            e.eval_truth(&Tuple::new(vec![x, Value::Var(VarId(2))]))
                .unwrap(),
            Truth::Unknown
        );
    }

    #[test]
    fn case_expression() {
        // The paper's Q1: CASE IUCR WHEN .. THEN .. END rewritten as searched case.
        let e = bind(
            Expr::Case {
                branches: vec![
                    (
                        Expr::named("iucr").eq(Expr::lit(820i64)),
                        Expr::lit("Theft"),
                    ),
                    (
                        Expr::named("iucr").eq(Expr::lit(486i64)),
                        Expr::lit("Domestic Battery"),
                    ),
                ],
                otherwise: None,
            },
            &["iucr"],
        );
        assert_eq!(e.eval(&tuple![820i64]).unwrap(), Value::str("Theft"));
        assert_eq!(e.eval(&tuple![999i64]).unwrap(), Value::Null);
    }

    #[test]
    fn between_and_in_list() {
        let e = bind(
            Expr::named("x").between(Expr::lit(1i64), Expr::lit(5i64)),
            &["x"],
        );
        assert!(e.holds(&tuple![3i64]).unwrap());
        assert!(!e.holds(&tuple![9i64]).unwrap());

        let e = bind(
            Expr::InList(
                Box::new(Expr::named("x")),
                vec![Expr::lit(1i64), Expr::lit(2i64)],
            ),
            &["x"],
        );
        assert!(e.holds(&tuple![2i64]).unwrap());
        assert!(!e.holds(&tuple![3i64]).unwrap());
    }

    #[test]
    fn in_list_with_null_is_unknown_not_false_positive() {
        let e = bind(
            Expr::InList(
                Box::new(Expr::named("x")),
                vec![Expr::lit(1i64), Expr::Lit(Value::Null)],
            ),
            &["x"],
        );
        assert_eq!(e.eval_truth(&tuple![1i64]).unwrap(), Truth::True);
        assert_eq!(e.eval_truth(&tuple![9i64]).unwrap(), Truth::Unknown);
    }

    #[test]
    fn arithmetic_and_least() {
        let e = bind(
            Expr::named("a").add(Expr::named("b")).mul(Expr::lit(2i64)),
            &["a", "b"],
        );
        assert_eq!(e.eval(&tuple![3i64, 4i64]).unwrap(), Value::Int(14));

        let l = bind(Expr::named("a").least(Expr::named("b")), &["a", "b"]);
        assert_eq!(l.eval(&tuple![3i64, 4i64]).unwrap(), Value::Int(3));
        assert_eq!(l.eval(&tuple![4i64, 3i64]).unwrap(), Value::Int(3));
    }

    #[test]
    fn is_null_and_unbound_errors() {
        let e = bind(Expr::IsNull(Box::new(Expr::named("a"))), &["a"]);
        assert!(e.holds(&Tuple::new(vec![Value::Null])).unwrap());
        assert!(!e.holds(&tuple![1i64]).unwrap());

        let unbound = Expr::named("zzz");
        assert!(matches!(
            unbound.eval(&tuple![1i64]),
            Err(ExprError::Unbound(_))
        ));
        assert!(matches!(
            Expr::named("zzz").bind(&Schema::unqualified(["a"])),
            Err(ExprError::Schema(_))
        ));
    }

    #[test]
    fn conjunct_splitting() {
        let e = Expr::named("a")
            .eq(Expr::lit(1i64))
            .and(Expr::named("b").eq(Expr::lit(2i64)))
            .and(Expr::named("c").eq(Expr::lit(3i64)));
        assert_eq!(e.split_conjuncts().len(), 3);
    }

    #[test]
    fn referenced_columns() {
        let e = bind(
            Expr::named("a")
                .eq(Expr::named("c"))
                .or(Expr::named("b").lt(Expr::lit(0i64))),
            &["a", "b", "c"],
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 1, 2]);
    }
}
