//! Attribute values, including SQL `NULL` and labeled nulls (variables).
//!
//! The universal domain `𝔻` of the paper is modeled by [`Value`]. Two kinds
//! of "unknown" coexist:
//!
//! * [`Value::Null`] — SQL's anonymous null (used by the Codd-table baseline
//!   and the engine's three-valued logic);
//! * [`Value::Var`] — a *labeled* null, i.e. a variable from `Σ` as used by
//!   V-tables and C-tables. Two occurrences of the same variable denote the
//!   same unknown value, so `x = x` is certainly true while `x = y` and
//!   `x = 3` are unknown.
//!
//! Value comparison comes in two flavours: the derived [`Ord`] is a *total
//! structural* order (used for map keys and deterministic output ordering),
//! while [`Value::sql_cmp`] implements the SQL comparison semantics returning
//! [`None`] on nulls, variables and type mismatches.

use std::fmt;
use std::sync::Arc;

/// A 64-bit float with total equality/order (canonical NaN, `-0.0 ≡ 0.0`),
/// usable as a hash-map key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct F64(u64);

impl F64 {
    /// Wrap a float, canonicalizing `NaN` and `-0.0` so equality is total.
    pub fn new(f: f64) -> Self {
        let canonical = if f.is_nan() {
            f64::NAN
        } else if f == 0.0 {
            0.0
        } else {
            f
        };
        // Store a monotone bit pattern: flipping the sign bit for positives
        // and all bits for negatives makes integer order match float order.
        let bits = canonical.to_bits();
        let key = if bits >> 63 == 0 {
            bits | (1 << 63)
        } else {
            !bits
        };
        F64(key)
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        let bits = if self.0 >> 63 == 1 {
            self.0 & !(1 << 63)
        } else {
            !self.0
        };
        f64::from_bits(bits)
    }
}

impl From<f64> for F64 {
    fn from(f: f64) -> Self {
        F64::new(f)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Identifier of a labeled null / C-table variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?x{}", self.0)
    }
}

/// An attribute value from the universal domain.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// SQL `NULL`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit float (total order; see [`F64`]).
    Float(F64),
    /// A string (cheaply clonable).
    Str(Arc<str>),
    /// A labeled null (C-table / V-table variable).
    Var(VarId),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for floats.
    pub fn float(f: f64) -> Value {
        Value::Float(F64::new(f))
    }

    /// Whether this value is SQL `NULL` or a labeled null.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Value::Null | Value::Var(_))
    }

    /// Canonical form for use as a hash-join key: integral floats collapse
    /// to ints, so structural key equality agrees with [`Value::sql_cmp`]'s
    /// coercing numeric equality (`Int(2) = Float(2.0)`). Every hash-key
    /// build/probe site must apply this, or the hash strategy would drop
    /// rows a nested-loop evaluation of the same predicate keeps.
    /// (Beyond ±2⁵³, where `i64 → f64` is lossy, `sql_cmp` itself compares
    /// through `f64` and the two can still disagree; exact within.)
    pub fn join_key(self) -> Value {
        if let Value::Float(f) = &self {
            let x = f.get();
            if x.fract() == 0.0 && x >= -(2f64.powi(63)) && x < 2f64.powi(63) {
                let i = x as i64;
                if i as f64 == x {
                    return Value::Int(i);
                }
            }
        }
        self
    }

    /// Whether this value mentions a labeled null.
    pub fn is_var(&self) -> bool {
        matches!(self, Value::Var(_))
    }

    /// The numeric interpretation of this value, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    /// SQL comparison semantics: `None` when the comparison is *unknown*
    /// (a null or variable is involved, or the types are incomparable).
    ///
    /// Identical variables compare equal (a labeled null denotes one
    /// unknown value), which is what makes `x = x` certain over V-tables.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::*;
        match (self, other) {
            (Var(a), Var(b)) if a == b => Some(std::cmp::Ordering::Equal),
            (Null | Var(_), _) | (_, Null | Var(_)) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(&b.get()),
            (Float(a), Int(b)) => a.get().partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            _ => None,
        }
    }

    /// SQL equality under two-valued semantics: unknown collapses to `false`.
    pub fn sql_eq(&self, other: &Value) -> bool {
        self.sql_cmp(other) == Some(std::cmp::Ordering::Equal)
    }

    fn numeric_pair(&self, other: &Value) -> Option<NumericPair> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(NumericPair::Ints(*a, *b)),
            (Int(a), Float(b)) => Some(NumericPair::Floats(*a as f64, b.get())),
            (Float(a), Int(b)) => Some(NumericPair::Floats(a.get(), *b as f64)),
            (Float(a), Float(b)) => Some(NumericPair::Floats(a.get(), b.get())),
            _ => None,
        }
    }

    /// Numeric addition with int→float promotion; `Null` on unknown inputs,
    /// `None` on a type error.
    pub fn add(&self, other: &Value) -> Option<Value> {
        if self.is_unknown() || other.is_unknown() {
            return Some(Value::Null);
        }
        match self.numeric_pair(other)? {
            NumericPair::Ints(a, b) => Some(Value::Int(a.wrapping_add(b))),
            NumericPair::Floats(a, b) => Some(Value::float(a + b)),
        }
    }

    /// Numeric subtraction (see [`Value::add`] for the coercion rules).
    pub fn sub(&self, other: &Value) -> Option<Value> {
        if self.is_unknown() || other.is_unknown() {
            return Some(Value::Null);
        }
        match self.numeric_pair(other)? {
            NumericPair::Ints(a, b) => Some(Value::Int(a.wrapping_sub(b))),
            NumericPair::Floats(a, b) => Some(Value::float(a - b)),
        }
    }

    /// Numeric multiplication (see [`Value::add`]).
    pub fn mul(&self, other: &Value) -> Option<Value> {
        if self.is_unknown() || other.is_unknown() {
            return Some(Value::Null);
        }
        match self.numeric_pair(other)? {
            NumericPair::Ints(a, b) => Some(Value::Int(a.wrapping_mul(b))),
            NumericPair::Floats(a, b) => Some(Value::float(a * b)),
        }
    }

    /// Numeric division. Division by zero yields `Null` (we follow the
    /// forgiving convention so that generated workloads never abort).
    pub fn div(&self, other: &Value) -> Option<Value> {
        if self.is_unknown() || other.is_unknown() {
            return Some(Value::Null);
        }
        match self.numeric_pair(other)? {
            NumericPair::Ints(_, 0) => Some(Value::Null),
            NumericPair::Ints(a, b) => Some(Value::Int(a.wrapping_div(b))),
            NumericPair::Floats(a, b) => {
                if b == 0.0 {
                    Some(Value::Null)
                } else {
                    Some(Value::float(a / b))
                }
            }
        }
    }
}

enum NumericPair {
    Ints(i64, i64),
    Floats(f64, f64),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Var(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn f64_total_order_matches_float_order() {
        let xs = [-5.5f64, -0.0, 0.0, 1.25, 100.0, f64::MAX, f64::MIN];
        for &a in &xs {
            for &b in &xs {
                let fa = F64::new(a);
                let fb = F64::new(b);
                if a < b {
                    assert!(fa < fb, "{a} < {b}");
                } else if a > b {
                    assert!(fa > fb, "{a} > {b}");
                } else {
                    assert_eq!(fa, fb, "{a} == {b}");
                }
            }
        }
    }

    #[test]
    fn f64_roundtrip() {
        for f in [-1.5, 0.0, 3.25, -1e300, 1e-300] {
            assert_eq!(F64::new(f).get(), f);
        }
        assert_eq!(F64::new(-0.0).get(), 0.0);
        assert!(F64::new(f64::NAN).get().is_nan());
    }

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_vars() {
        let x = Value::Var(VarId(1));
        let y = Value::Var(VarId(2));
        assert_eq!(x.sql_cmp(&x), Some(Ordering::Equal));
        assert_eq!(x.sql_cmp(&y), None);
        assert_eq!(x.sql_cmp(&Value::Int(3)), None);
    }

    #[test]
    fn sql_cmp_numeric_coercion() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(2).sql_cmp(&Value::str("2")), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::float(0.5)),
            Some(Value::float(2.5))
        );
        assert_eq!(Value::Int(2).add(&Value::Null), Some(Value::Null));
        assert_eq!(Value::Int(2).add(&Value::str("x")), None);
        assert_eq!(Value::Int(7).div(&Value::Int(0)), Some(Value::Null));
        assert_eq!(Value::Int(7).div(&Value::Int(2)), Some(Value::Int(3)));
        assert_eq!(Value::Int(7).mul(&Value::Var(VarId(0))), Some(Value::Null));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Var(VarId(3)).to_string(), "?x3");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
