//! K-relations and K-databases.
//!
//! An n-ary K-relation maps tuples to annotations from a semiring `K`
//! (Green et al.): tuples that are absent carry `0_K` and only finitely many
//! tuples are non-zero. [`Relation`] stores exactly the non-zero support in
//! a hash map, and re-normalizes on every mutation so the invariant
//! "`0_K` never stored" holds throughout.

use crate::hash::FxHashMap;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use ua_semiring::{LSemiring, Semiring, SemiringHom};

/// A finite K-relation: the non-zero support of a map `Tuple → K`.
#[derive(Clone, Debug)]
pub struct Relation<K: Semiring> {
    schema: Schema,
    data: FxHashMap<Tuple, K>,
}

impl<K: Semiring> Relation<K> {
    /// The empty relation over `schema`.
    pub fn new(schema: Schema) -> Relation<K> {
        Relation {
            schema,
            data: FxHashMap::default(),
        }
    }

    /// Build from `(tuple, annotation)` pairs; repeated tuples are combined
    /// with `⊕`.
    pub fn from_annotated(
        schema: Schema,
        pairs: impl IntoIterator<Item = (Tuple, K)>,
    ) -> Relation<K> {
        let mut rel = Relation::new(schema);
        for (t, k) in pairs {
            rel.insert(t, k);
        }
        rel
    }

    /// Build a relation where each listed tuple is annotated `1_K`
    /// (repetitions accumulate: under `ℕ` this is bag insertion, under `𝔹`
    /// set insertion).
    pub fn from_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Relation<K> {
        Relation::from_annotated(schema, tuples.into_iter().map(|t| (t, K::one())))
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Replace the schema (e.g. to re-qualify columns); the data is shared.
    ///
    /// # Panics
    /// Panics if the arity changes.
    pub fn with_schema(mut self, schema: Schema) -> Relation<K> {
        assert_eq!(
            self.schema.arity(),
            schema.arity(),
            "with_schema must preserve arity"
        );
        self.schema = schema;
        self
    }

    /// `R(t)`: the annotation of `t` (`0_K` when absent).
    pub fn annotation(&self, t: &Tuple) -> K {
        self.data.get(t).cloned().unwrap_or_else(K::zero)
    }

    /// Whether `t` has a non-zero annotation.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.data.contains_key(t)
    }

    /// Add `k` to the annotation of `t` (i.e. `R(t) ⊕= k`), dropping the
    /// entry if the result is `0_K`.
    pub fn insert(&mut self, t: Tuple, k: K) {
        if k.is_zero() && !self.data.contains_key(&t) {
            return;
        }
        let entry = self.data.entry(t);
        match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                o.get_mut().plus_assign(&k);
                if o.get().is_zero() {
                    o.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                if !k.is_zero() {
                    v.insert(k);
                }
            }
        }
    }

    /// Overwrite the annotation of `t` (removing it when `0_K`).
    pub fn set(&mut self, t: Tuple, k: K) {
        if k.is_zero() {
            self.data.remove(&t);
        } else {
            self.data.insert(t, k);
        }
    }

    /// Number of distinct tuples in the support.
    pub fn support_size(&self) -> usize {
        self.data.len()
    }

    /// Whether the support is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterate over `(tuple, annotation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, &K)> {
        self.data.iter()
    }

    /// Tuples sorted by the structural order (deterministic output for tests
    /// and display).
    pub fn sorted_tuples(&self) -> Vec<(Tuple, K)> {
        let mut rows: Vec<_> = self
            .data
            .iter()
            .map(|(t, k)| (t.clone(), k.clone()))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Apply a semiring homomorphism to every annotation, producing a
    /// K'-relation over the same support (entries mapped to `0` vanish).
    pub fn map_annotations<K2: Semiring>(&self, hom: &impl SemiringHom<K, K2>) -> Relation<K2> {
        Relation::from_annotated(
            self.schema.clone(),
            self.data.iter().map(|(t, k)| (t.clone(), hom.apply(k))),
        )
    }

    /// Semantic equality: same schema arity and identical annotation maps.
    /// (Column names are ignored: K-relations are functions on tuples.)
    pub fn annotation_eq(&self, other: &Relation<K>) -> bool {
        self.schema.arity() == other.schema.arity()
            && self.data.len() == other.data.len()
            && self
                .data
                .iter()
                .all(|(t, k)| other.data.get(t).is_some_and(|k2| k == k2))
    }

    /// Total annotation mass `⊕_t R(t)` (e.g. total row count under `ℕ`).
    pub fn total_annotation(&self) -> K {
        K::sum(self.data.values())
    }
}

impl<K: LSemiring> Relation<K> {
    /// The glb-based intersection of annotations with `other` — used to
    /// compute certain annotations across possible worlds.
    pub fn glb_pointwise(&self, other: &Relation<K>) -> Relation<K> {
        // GLB against an absent tuple is glb(k, 0) = 0, so only the common
        // support survives.
        let mut out = Relation::new(self.schema.clone());
        for (t, k) in &self.data {
            if let Some(k2) = other.data.get(t) {
                out.set(t.clone(), k.glb(k2));
            }
        }
        out
    }
}

impl<K: Semiring> PartialEq for Relation<K> {
    fn eq(&self, other: &Self) -> bool {
        self.annotation_eq(other)
    }
}

impl<K: Semiring> fmt::Display for Relation<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for (t, k) in self.sorted_tuples() {
            writeln!(f, "  {t} ↦ {k:?}")?;
        }
        Ok(())
    }
}

/// A named collection of K-relations (one possible world, or a whole
/// annotated database).
#[derive(Clone, Debug, PartialEq)]
pub struct Database<K: Semiring> {
    relations: std::collections::BTreeMap<String, Relation<K>>,
}

impl<K: Semiring> Database<K> {
    /// An empty database.
    pub fn new() -> Database<K> {
        Database {
            relations: std::collections::BTreeMap::new(),
        }
    }

    /// Register `relation` under `name` (replacing any previous one).
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation<K>) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn get(&self, name: &str) -> Option<&Relation<K>> {
        self.relations.get(name)
    }

    /// All `(name, relation)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation<K>)> {
        self.relations.iter()
    }

    /// Relation names in order.
    pub fn names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Apply a semiring homomorphism to every relation.
    pub fn map_annotations<K2: Semiring>(&self, hom: &impl SemiringHom<K, K2>) -> Database<K2> {
        let mut out = Database::new();
        for (name, rel) in &self.relations {
            out.insert(name.clone(), rel.map_annotations(hom));
        }
        out
    }
}

impl<K: Semiring> Default for Database<K> {
    fn default() -> Self {
        Database::new()
    }
}

/// Convenience: build a bag relation (`ℕ`) from rows of values.
pub fn bag_relation(
    name: &str,
    columns: &[&str],
    rows: impl IntoIterator<Item = Vec<Value>>,
) -> Relation<u64> {
    Relation::from_tuples(
        Schema::qualified(name, columns.iter().copied()),
        rows.into_iter().map(Tuple::new),
    )
}

/// Convenience: build a set relation (`𝔹`) from rows of values.
pub fn set_relation(
    name: &str,
    columns: &[&str],
    rows: impl IntoIterator<Item = Vec<Value>>,
) -> Relation<bool> {
    Relation::from_tuples(
        Schema::qualified(name, columns.iter().copied()),
        rows.into_iter().map(Tuple::new),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use ua_semiring::hom::support;

    #[test]
    fn zero_annotations_never_stored() {
        let mut r: Relation<u64> = Relation::new(Schema::unqualified(["a"]));
        r.insert(tuple![1i64], 0);
        assert!(r.is_empty());
        r.insert(tuple![1i64], 2);
        assert_eq!(r.support_size(), 1);
        r.set(tuple![1i64], 0);
        assert!(r.is_empty());
    }

    #[test]
    fn insert_accumulates_with_plus() {
        let mut r: Relation<u64> = Relation::new(Schema::unqualified(["a"]));
        r.insert(tuple![1i64], 2);
        r.insert(tuple![1i64], 3);
        assert_eq!(r.annotation(&tuple![1i64]), 5);
        assert_eq!(r.annotation(&tuple![2i64]), 0);
    }

    #[test]
    fn bag_from_rows_counts_duplicates() {
        let r = bag_relation(
            "t",
            &["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        assert_eq!(r.annotation(&tuple![1i64]), 2);
        assert_eq!(r.annotation(&tuple![2i64]), 1);
        assert_eq!(r.total_annotation(), 3);
    }

    #[test]
    fn hom_mapping_example6() {
        // Paper Example 6: ℕ → 𝔹 support homomorphism.
        let r = bag_relation("t", &["a"], vec![vec![Value::Int(1)], vec![Value::Int(1)]]);
        let s: Relation<bool> = r.map_annotations(&support);
        assert!(s.annotation(&tuple![1i64]));
        assert_eq!(s.support_size(), 1);
    }

    #[test]
    fn glb_pointwise_keeps_common_support() {
        let a = bag_relation(
            "t",
            &["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        let b = bag_relation("t", &["a"], vec![vec![Value::Int(1)]]);
        let g = a.glb_pointwise(&b);
        assert_eq!(g.annotation(&tuple![1i64]), 1);
        assert_eq!(g.annotation(&tuple![2i64]), 0);
    }

    #[test]
    fn database_round_trip() {
        let mut db: Database<u64> = Database::new();
        db.insert("r", bag_relation("r", &["a"], vec![vec![Value::Int(1)]]));
        assert_eq!(db.len(), 1);
        assert!(db.get("r").is_some());
        assert!(db.get("missing").is_none());
        let set_db = db.map_annotations(&support);
        assert!(set_db.get("r").unwrap().annotation(&tuple![1i64]));
    }

    #[test]
    fn annotation_equality_ignores_names() {
        let a = bag_relation("x", &["a"], vec![vec![Value::Int(1)]]);
        let b = bag_relation("y", &["b"], vec![vec![Value::Int(1)]]);
        assert_eq!(a, b);
    }
}
