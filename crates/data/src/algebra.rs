//! The positive relational algebra `RA⁺` over K-relations.
//!
//! Operators follow Green et al. (paper Section 2.3):
//!
//! * union:      `[R₁ ∪ R₂](t) = R₁(t) ⊕ R₂(t)`
//! * join:       `[R₁ ⋈ R₂](t) = R₁(π_{R₁} t) ⊗ R₂(π_{R₂} t)`
//! * projection: `[π_U R](t)   = Σ_{t = t'[U]} R(t')`
//! * selection:  `[σ_θ R](t)   = R(t) ⊗ θ(t)` with `θ(t) ∈ {0_K, 1_K}`
//!
//! The same evaluator therefore serves every annotation domain in the
//! workspace: `𝔹`, `ℕ`, `K^W` (possible-world semantics), `K²` (UA-DBs), the
//! access-control semiring, and the condition/lineage semiring. That single
//! code path is what makes "queries commute with homomorphisms" hold *by
//! construction* in this implementation.
//!
//! Predicates use two-valued semantics (`Unknown ⇒ 0_K`); three-valued
//! treatment of nulls lives in the engine/baseline layers where SQL
//! semantics are required.

use crate::expr::{CmpOp, Expr, ExprError};
use crate::hash::FxHashMap;
use crate::relation::{Database, Relation};
use crate::schema::{Schema, SchemaError};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use ua_semiring::Semiring;

/// One output column of a (generalized) projection.
#[derive(Clone, PartialEq, Debug)]
pub struct ProjColumn {
    /// The expression computing the column value.
    pub expr: Expr,
    /// The output column (name + optional qualifier).
    pub column: crate::schema::Column,
}

impl ProjColumn {
    /// Project an existing column under its own (unqualified) name.
    pub fn named(name: impl Into<String>) -> ProjColumn {
        let name = name.into();
        let out = name.rsplit('.').next().unwrap_or(&name).to_string();
        ProjColumn {
            expr: Expr::named(name.clone()),
            column: crate::schema::Column::unqualified(out),
        }
    }

    /// Project a computed expression as `name`.
    pub fn expr(expr: Expr, name: impl Into<String>) -> ProjColumn {
        ProjColumn {
            expr,
            column: crate::schema::Column::unqualified(name.into()),
        }
    }

    /// Project a computed expression under an explicit (possibly qualified)
    /// output column.
    pub fn with_column(expr: Expr, column: crate::schema::Column) -> ProjColumn {
        ProjColumn { expr, column }
    }

    /// The output column's (unqualified) name.
    pub fn name(&self) -> &str {
        &self.column.name
    }
}

/// An `RA⁺` query.
#[derive(Clone, PartialEq, Debug)]
pub enum RaExpr {
    /// Scan a named relation.
    Table(String),
    /// Re-qualify the input's columns under a new name.
    Alias {
        /// Input query.
        input: Box<RaExpr>,
        /// New qualifier.
        name: String,
    },
    /// Selection `σ_θ`.
    Select {
        /// Input query.
        input: Box<RaExpr>,
        /// The predicate `θ`.
        predicate: Expr,
    },
    /// Generalized projection `π`.
    Project {
        /// Input query.
        input: Box<RaExpr>,
        /// Output columns.
        columns: Vec<ProjColumn>,
    },
    /// θ-join (cross product when `predicate` is `None`).
    Join {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
        /// Join predicate (`None` = cross product).
        predicate: Option<Expr>,
    },
    /// Bag/set union (`UNION ALL` — annotations add).
    Union {
        /// Left input.
        left: Box<RaExpr>,
        /// Right input.
        right: Box<RaExpr>,
    },
}

impl RaExpr {
    /// Scan `name`.
    pub fn table(name: impl Into<String>) -> RaExpr {
        RaExpr::Table(name.into())
    }

    /// `σ_pred(self)`.
    pub fn select(self, predicate: Expr) -> RaExpr {
        RaExpr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// `π_cols(self)` with plain column references.
    pub fn project<S: Into<String>>(self, cols: impl IntoIterator<Item = S>) -> RaExpr {
        RaExpr::Project {
            input: Box::new(self),
            columns: cols
                .into_iter()
                .map(|c| ProjColumn::named(c.into()))
                .collect(),
        }
    }

    /// `π` with explicit output columns.
    pub fn project_cols(self, columns: Vec<ProjColumn>) -> RaExpr {
        RaExpr::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// θ-join with `other`.
    pub fn join(self, other: RaExpr, predicate: Expr) -> RaExpr {
        RaExpr::Join {
            left: Box::new(self),
            right: Box::new(other),
            predicate: Some(predicate),
        }
    }

    /// Cross product with `other`.
    pub fn cross(self, other: RaExpr) -> RaExpr {
        RaExpr::Join {
            left: Box::new(self),
            right: Box::new(other),
            predicate: None,
        }
    }

    /// Union with `other`.
    pub fn union(self, other: RaExpr) -> RaExpr {
        RaExpr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Alias as `name` (re-qualifies all columns).
    pub fn alias(self, name: impl Into<String>) -> RaExpr {
        RaExpr::Alias {
            input: Box::new(self),
            name: name.into(),
        }
    }

    /// The names of all base tables this query scans.
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a RaExpr, out: &mut Vec<&'a str>) {
            match e {
                RaExpr::Table(name) => out.push(name),
                RaExpr::Alias { input, .. }
                | RaExpr::Select { input, .. }
                | RaExpr::Project { input, .. } => walk(input, out),
                RaExpr::Join { left, right, .. } | RaExpr::Union { left, right } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of operators (σ/π/⋈/∪) in the query — the "complexity" axis of
    /// the paper's Figure 10.
    pub fn operator_count(&self) -> usize {
        match self {
            RaExpr::Table(_) => 0,
            RaExpr::Alias { input, .. } => input.operator_count(),
            RaExpr::Select { input, .. } | RaExpr::Project { input, .. } => {
                1 + input.operator_count()
            }
            RaExpr::Join { left, right, .. } | RaExpr::Union { left, right } => {
                1 + left.operator_count() + right.operator_count()
            }
        }
    }

    /// The output schema of this query against a table-schema lookup.
    pub fn schema_with(&self, lookup: &dyn Fn(&str) -> Option<Schema>) -> Result<Schema, RaError> {
        match self {
            RaExpr::Table(name) => lookup(name).ok_or_else(|| RaError::UnknownTable(name.clone())),
            RaExpr::Alias { input, name } => Ok(input.schema_with(lookup)?.with_qualifier(name)),
            RaExpr::Select { input, .. } => input.schema_with(lookup),
            RaExpr::Project { columns, .. } => Ok(Schema::new(
                columns.iter().map(|c| c.column.clone()).collect(),
            )),
            RaExpr::Join { left, right, .. } => Ok(left
                .schema_with(lookup)?
                .concat(&right.schema_with(lookup)?)),
            RaExpr::Union { left, right } => {
                let l = left.schema_with(lookup)?;
                let r = right.schema_with(lookup)?;
                l.check_union_compatible(&r)?;
                Ok(l)
            }
        }
    }

    /// The output schema of this query in `db`.
    pub fn schema_in<K: Semiring>(&self, db: &Database<K>) -> Result<Schema, RaError> {
        self.schema_with(&|name| db.get(name).map(|r| r.schema().clone()))
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Table(name) => write!(f, "{name}"),
            RaExpr::Alias { input, name } => write!(f, "ρ_{name}({input})"),
            RaExpr::Select { input, predicate } => write!(f, "σ[{predicate}]({input})"),
            RaExpr::Project { input, columns } => {
                write!(f, "π[")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}→{}", c.expr, c.column)?;
                }
                write!(f, "]({input})")
            }
            RaExpr::Join {
                left,
                right,
                predicate: Some(p),
            } => write!(f, "({left} ⋈[{p}] {right})"),
            RaExpr::Join {
                left,
                right,
                predicate: None,
            } => write!(f, "({left} × {right})"),
            RaExpr::Union { left, right } => write!(f, "({left} ∪ {right})"),
        }
    }
}

/// Errors raised while evaluating `RA⁺`.
#[derive(Clone, PartialEq, Debug)]
pub enum RaError {
    /// A scanned table does not exist.
    UnknownTable(String),
    /// Schema resolution failed.
    Schema(SchemaError),
    /// Expression binding or evaluation failed.
    Expr(ExprError),
}

impl fmt::Display for RaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RaError::Schema(e) => write!(f, "{e}"),
            RaError::Expr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RaError {}

impl From<SchemaError> for RaError {
    fn from(e: SchemaError) -> Self {
        RaError::Schema(e)
    }
}

impl From<ExprError> for RaError {
    fn from(e: ExprError) -> Self {
        RaError::Expr(e)
    }
}

/// Evaluate `query` over `db` with K-relational semantics.
pub fn eval<K: Semiring>(query: &RaExpr, db: &Database<K>) -> Result<Relation<K>, RaError> {
    match query {
        RaExpr::Table(name) => db
            .get(name)
            .cloned()
            .ok_or_else(|| RaError::UnknownTable(name.clone())),
        RaExpr::Alias { input, name } => {
            let rel = eval(input, db)?;
            let schema = rel.schema().with_qualifier(name);
            Ok(rel.with_schema(schema))
        }
        RaExpr::Select { input, predicate } => {
            let rel = eval(input, db)?;
            let bound = predicate.bind(rel.schema())?;
            let mut out = Relation::new(rel.schema().clone());
            for (t, k) in rel.iter() {
                // [σ_θ R](t) = R(t) ⊗ θ(t); θ(t) ∈ {0,1} so only keep matches.
                if bound.holds(t)? {
                    out.insert(t.clone(), k.clone());
                }
            }
            Ok(out)
        }
        RaExpr::Project { input, columns } => {
            let rel = eval(input, db)?;
            let bound: Vec<Expr> = columns
                .iter()
                .map(|c| c.expr.bind(rel.schema()))
                .collect::<Result<_, _>>()?;
            let schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
            let mut out = Relation::new(schema);
            for (t, k) in rel.iter() {
                let projected: Tuple = bound.iter().map(|e| e.eval(t)).collect::<Result<_, _>>()?;
                // [π_U R](t) = Σ R(t'): insert ⊕-accumulates.
                out.insert(projected, k.clone());
            }
            Ok(out)
        }
        RaExpr::Join {
            left,
            right,
            predicate,
        } => {
            let l = eval(left, db)?;
            let r = eval(right, db)?;
            eval_join(&l, &r, predicate.as_ref())
        }
        RaExpr::Union { left, right } => {
            let l = eval(left, db)?;
            let r = eval(right, db)?;
            l.schema().check_union_compatible(r.schema())?;
            let mut out = l.clone();
            for (t, k) in r.iter() {
                out.insert(t.clone(), k.clone());
            }
            Ok(out)
        }
    }
}

/// An equi-join key extracted from a predicate: expressions over the left and
/// right inputs whose values must be equal. `left` is bound against the left
/// schema, `right` against the right schema (already shifted).
pub struct EquiKey {
    /// Key expression over the left input.
    pub left: Expr,
    /// Key expression over the right input (column indices shifted).
    pub right: Expr,
}

/// Split a bound join predicate into hashable equi-key parts and a residual
/// (the conjuncts that are not simple left/right equalities). Shared by the
/// map-based evaluator here and the row-based executor in `ua-engine`.
pub fn extract_equi_keys(predicate: &Expr, left_arity: usize) -> (Vec<EquiKey>, Vec<Expr>) {
    let mut keys = Vec::new();
    let mut residual = Vec::new();
    for conjunct in predicate.split_conjuncts() {
        if let Expr::Cmp(CmpOp::Eq, a, b) = conjunct {
            let side = |e: &Expr| -> Option<bool> {
                let mut cols = Vec::new();
                e.referenced_columns(&mut cols);
                if cols.is_empty() {
                    return None; // constant: leave in the residual
                }
                if cols.iter().all(|&c| c < left_arity) {
                    Some(true)
                } else if cols.iter().all(|&c| c >= left_arity) {
                    Some(false)
                } else {
                    None
                }
            };
            let shift = |e: &Expr| shift_columns(e, left_arity);
            match (side(a), side(b)) {
                (Some(true), Some(false)) => {
                    keys.push(EquiKey {
                        left: (**a).clone(),
                        right: shift(b),
                    });
                    continue;
                }
                (Some(false), Some(true)) => {
                    keys.push(EquiKey {
                        left: (**b).clone(),
                        right: shift(a),
                    });
                    continue;
                }
                _ => {}
            }
        }
        residual.push(conjunct.clone());
    }
    (keys, residual)
}

/// Rewrite column references `c` to `c - delta` (to evaluate a
/// concatenated-schema expression against the right tuple alone).
pub fn shift_columns(e: &Expr, delta: usize) -> Expr {
    e.map_refs(&|n| Some(n.to_string()), &|i| i - delta)
        .expect("identity name mapping cannot fail")
}

fn eval_join<K: Semiring>(
    l: &Relation<K>,
    r: &Relation<K>,
    predicate: Option<&Expr>,
) -> Result<Relation<K>, RaError> {
    let schema = l.schema().concat(r.schema());
    let mut out = Relation::new(schema.clone());
    let bound = match predicate {
        Some(p) => Some(p.bind(&schema)?),
        None => None,
    };

    // Hash join when the predicate contains extractable equi-keys.
    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, l.schema().arity());
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            let mut table: FxHashMap<Tuple, Vec<(&Tuple, &K)>> = FxHashMap::default();
            for (rt, rk) in r.iter() {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.right.eval(rt).map(Value::join_key))
                    .collect::<Result<_, _>>()?;
                // NULL keys never satisfy an equality; labeled nulls match
                // themselves, so they stay (structural hash equality equals
                // their SQL equality).
                if key.has_null() {
                    continue;
                }
                table.entry(key).or_default().push((rt, rk));
            }
            for (lt, lk) in l.iter() {
                let key: Tuple = keys
                    .iter()
                    .map(|k| k.left.eval(lt).map(Value::join_key))
                    .collect::<Result<_, _>>()?;
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for (rt, rk) in matches {
                        let joined = lt.concat(rt);
                        if residual.holds(&joined)? {
                            out.insert(joined, lk.times(rk));
                        }
                    }
                }
            }
            return Ok(out);
        }
    }

    // Nested-loop fallback (θ-joins without equalities, cross products).
    for (lt, lk) in l.iter() {
        for (rt, rk) in r.iter() {
            let joined = lt.concat(rt);
            let keep = match &bound {
                Some(p) => p.holds(&joined)?,
                None => true,
            };
            if keep {
                out.insert(joined, lk.times(rk));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::bag_relation;
    use crate::tuple;
    use crate::value::Value;

    /// Paper Figure 7: the Address ⋈ Neighborhood example under ℕ.
    fn figure7_db() -> Database<u64> {
        let mut db = Database::new();
        db.insert(
            "address",
            bag_relation(
                "address",
                &["id", "address", "l"],
                vec![
                    vec![Value::Int(1), Value::str("51 Co."), Value::str("L1")],
                    vec![Value::Int(2), Value::str("Grant"), Value::str("L2")],
                    vec![Value::Int(3), Value::str("499 W."), Value::str("L4")],
                ],
            ),
        );
        db.insert(
            "neighborhood",
            bag_relation(
                "neighborhood",
                &["l", "locale", "state"],
                vec![
                    vec![Value::str("L1"), Value::str("L."), Value::str("NY")],
                    vec![Value::str("L2"), Value::str("T."), Value::str("AZ")],
                    vec![Value::str("L3"), Value::str("G."), Value::str("NY")],
                    vec![Value::str("L4"), Value::str("K."), Value::str("NY")],
                    vec![Value::str("L5"), Value::str("W."), Value::str("IL")],
                ],
            ),
        );
        db
    }

    #[test]
    fn figure7_qa_state_counts() {
        // Qa = π_state(Address ⋈ Neighborhood): NY ↦ 2, AZ ↦ 1, IL ↦ 0.
        let db = figure7_db();
        let q = RaExpr::table("address")
            .join(
                RaExpr::table("neighborhood"),
                Expr::named("address.l").eq(Expr::named("neighborhood.l")),
            )
            .project(["state"]);
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.annotation(&tuple!["NY"]), 2);
        assert_eq!(result.annotation(&tuple!["AZ"]), 1);
        assert_eq!(result.annotation(&tuple!["IL"]), 0);
    }

    #[test]
    fn selection_filters_and_preserves_annotations() {
        let db = figure7_db();
        let q = RaExpr::table("neighborhood")
            .select(Expr::named("state").eq(Expr::lit("NY")))
            .project(["locale"]);
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.support_size(), 3);
        assert_eq!(result.annotation(&tuple!["L."]), 1);
    }

    #[test]
    fn cross_product_multiplies() {
        let db = figure7_db();
        let q = RaExpr::table("address").cross(RaExpr::table("neighborhood"));
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.support_size(), 15);
        assert_eq!(result.schema().arity(), 6);
    }

    #[test]
    fn union_adds_annotations() {
        let db = figure7_db();
        let q = RaExpr::table("neighborhood")
            .project(["state"])
            .union(RaExpr::table("neighborhood").project(["state"]));
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.annotation(&tuple!["NY"]), 6);
        assert_eq!(result.annotation(&tuple!["AZ"]), 2);
    }

    #[test]
    fn theta_join_without_equality_uses_nested_loop() {
        let db = figure7_db();
        let q = RaExpr::table("address").join(
            RaExpr::table("neighborhood"),
            Expr::named("address.l").ne(Expr::named("neighborhood.l")),
        );
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.support_size(), 12);
    }

    #[test]
    fn hash_and_nested_loop_joins_agree() {
        let db = figure7_db();
        let equi = Expr::named("address.l").eq(Expr::named("neighborhood.l"));
        let hash = eval(
            &RaExpr::table("address").join(RaExpr::table("neighborhood"), equi),
            &db,
        )
        .unwrap();
        // Force nested loop by hiding the equality inside an OR.
        let disguised = Expr::named("address.l")
            .eq(Expr::named("neighborhood.l"))
            .or(Expr::lit(false));
        let nested = eval(
            &RaExpr::table("address").join(RaExpr::table("neighborhood"), disguised),
            &db,
        )
        .unwrap();
        assert!(hash.annotation_eq(&nested));
    }

    #[test]
    fn alias_requalifies() {
        let db = figure7_db();
        let q = RaExpr::table("neighborhood")
            .alias("n")
            .select(Expr::named("n.state").eq(Expr::lit("NY")));
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.support_size(), 3);
    }

    #[test]
    fn join_with_residual_predicate() {
        let db = figure7_db();
        let pred = Expr::named("address.l")
            .eq(Expr::named("neighborhood.l"))
            .and(Expr::named("state").ne(Expr::lit("AZ")));
        let q = RaExpr::table("address")
            .join(RaExpr::table("neighborhood"), pred)
            .project(["state"]);
        let result = eval(&q, &db).unwrap();
        assert_eq!(result.annotation(&tuple!["NY"]), 2);
        assert_eq!(result.annotation(&tuple!["AZ"]), 0);
    }

    #[test]
    fn unknown_table_error() {
        let db = figure7_db();
        assert!(matches!(
            eval(&RaExpr::table("nope"), &db),
            Err(RaError::UnknownTable(_))
        ));
    }

    #[test]
    fn union_arity_mismatch_error() {
        let db = figure7_db();
        let q = RaExpr::table("address")
            .union(RaExpr::table("neighborhood").project(["locale", "state"]));
        assert!(matches!(eval(&q, &db), Err(RaError::Schema(_))));
    }

    #[test]
    fn operator_count_and_base_tables() {
        let q = RaExpr::table("a")
            .join(RaExpr::table("b"), Expr::lit(true))
            .select(Expr::lit(true))
            .project(Vec::<String>::new());
        assert_eq!(q.operator_count(), 3);
        assert_eq!(q.base_tables(), vec!["a", "b"]);
    }

    #[test]
    fn set_semantics_via_bool() {
        let mut db: Database<bool> = Database::new();
        db.insert(
            "r",
            Relation::from_tuples(
                Schema::qualified("r", ["a"]),
                vec![tuple![1i64], tuple![1i64], tuple![2i64]],
            ),
        );
        let q = RaExpr::table("r").project(["a"]);
        let result = eval(&q, &db).unwrap();
        assert!(result.annotation(&tuple![1i64]));
        assert!(result.annotation(&tuple![2i64]));
        assert_eq!(result.support_size(), 2);
    }
}
