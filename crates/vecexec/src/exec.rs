//! The vectorized plan driver: morsel-driven, optionally parallel,
//! batch-at-a-time execution of [`Plan`]s.
//!
//! ## Pipelines and morsels
//!
//! The driver splits a plan into **pipelines**: maximal chains of per-batch
//! operators — filter, projection, re-qualification, hash-join *probe* —
//! over one source (a scan, a pipeline breaker like Sort/Aggregate, or a
//! nested-loop join). Each source batch is a *morsel*: it runs through the
//! whole bound stage chain independently, so morsels execute on a small
//! work-stealing thread pool (the offline `rayon` shim) with **no shared
//! mutable state** — hash-join build sides are built once, serially, and
//! probed read-only; UA label bitmaps AND per morsel inside the join
//! gather.
//!
//! ## Determinism contract
//!
//! Parallel output is **byte-identical** to serial output for every thread
//! count and batch size: per-morsel results are merged in source batch
//! index order (the pool's `map_in_order`), every stage is a pure function
//! of its input batch, and errors are reported from the lowest-indexed
//! failing morsel — exactly the batch the serial loop would have failed
//! on. The determinism property tests hammer this across thread counts.
//!
//! One scoping note on errors: when a query contains *several* distinct
//! failure sites (say a type error in a projection over batch 0 and a
//! division error in a filter over batch 1), which one surfaces depends on
//! evaluation order — the row engine finishes each operator over all rows
//! before the next, while this pipeline runs each morsel through the whole
//! chain. Both engines fail on exactly the same queries (the differential
//! harness asserts Err/Err agreement), and the vectorized engine's choice
//! is deterministic across thread counts and batch sizes, but the *choice
//! among multiple errors* is not part of the cross-engine contract.
//!
//! ## Fused kernels
//!
//! Adjacent `Filter→Map` and `Filter→HashJoin-probe` pairs fuse: the
//! filter's selection bitmap is evaluated and *consumed in the same pass*
//! ([`crate::kernels::project_selected`], [`ops::ProbeState::probe`]),
//! gathering each needed column once instead of materializing the filtered
//! batch first.
//!
//! Sort, Top-K and Limit are columnar-native ([`ops::sort`],
//! [`ops::top_k`], [`ops::limit`]) — nothing in this driver materializes
//! rows anymore.

use crate::columnar::{
    batches_from_encoded_table_pooled, batches_from_table_pooled, table_from_batches_pooled,
    BatchStream, ColumnBatch, DEFAULT_BATCH_ROWS,
};
use crate::kernels::{filter_selection, project_selected};
use crate::ops::{self, ProbeState};
use ua_core::{expr_mentions_marker, UA_LABEL_COLUMN};
use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;
use ua_data::schema::{Schema, SchemaError};
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};
use ua_engine::{EngineError, ExecOptions};

/// Execute `plan` against `catalog` with the vectorized engine using
/// default options (auto thread count), materializing the result table.
/// Drop-in replacement for [`ua_engine::execute`].
pub fn execute_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_vectorized_opts(plan, catalog, ExecOptions::default())
}

/// [`execute_vectorized`] with explicit [`ExecOptions`] (thread count /
/// batch size). This is the hook the engine's `ExecMode::Vectorized`
/// dispatch calls.
pub fn execute_vectorized_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<Table, EngineError> {
    let driver = Driver::new(catalog, opts, false);
    let stream = driver.stream(plan)?;
    Ok(table_from_batches_pooled(&stream, &driver.pool))
}

/// Execute `plan` into a batch stream with an explicit batch size, serially
/// (the differential tests sweep batch boundaries through this and use it
/// as the reference output for the parallel determinism property).
pub fn exec_stream(
    plan: &Plan,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    exec_stream_opts(
        plan,
        catalog,
        ExecOptions {
            threads: 1,
            batch_rows,
        },
    )
}

/// [`exec_stream`] with explicit [`ExecOptions`].
pub fn exec_stream_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<BatchStream, EngineError> {
    Driver::new(catalog, opts, false).stream(plan)
}

/// Resolve a requested thread count: `0` = the `UA_VEC_THREADS`
/// environment variable if set to a positive integer, else the machine's
/// available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Ok(v) = std::env::var("UA_VEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The marker is engine bookkeeping, not user schema: reject references so
/// both executors fail identically (mirrors `rewrite_ua`).
pub(crate) fn reject_marker_reference(expr: &Expr) -> Result<(), EngineError> {
    if expr_mentions_marker(expr) {
        Err(EngineError::Schema(SchemaError::AmbiguousColumn(
            UA_LABEL_COLUMN.to_string(),
        )))
    } else {
        Ok(())
    }
}

/// One query's execution context: catalog, batch size, thread pool, and
/// whether scans decode UA-encoded tables into label bitmaps (`ua`).
pub(crate) struct Driver<'a> {
    catalog: &'a Catalog,
    batch_rows: usize,
    ua: bool,
    pub(crate) pool: rayon::ThreadPool,
}

/// A pipelineable operator, collected top-down while walking the plan.
enum Spec<'p> {
    Filter(&'p Expr),
    Project(&'p [ProjColumn]),
    Requalify(&'p str),
    HashJoin {
        build_plan: &'p Plan,
        keys: &'p [(Expr, Expr)],
        residual: Option<&'p Expr>,
        build_left: bool,
    },
    Theta {
        right: &'p Plan,
        predicate: Option<&'p Expr>,
    },
}

/// A bound per-batch stage (expressions resolved against the stage's input
/// schema; join build sides materialized and indexed).
enum Stage {
    Filter(Expr),
    Project {
        exprs: Vec<Expr>,
        schema: Schema,
    },
    /// Fused σ→π: selection bitmap evaluated and consumed in one pass.
    FilterProject {
        pred: Expr,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    Requalify(Schema),
    Probe(ProbeState),
    /// Fused σ→probe: hash keys evaluate over filter survivors only and
    /// the join gathers straight from the original batch.
    FilterProbe {
        pred: Expr,
        probe: ProbeState,
    },
    NestedLoop {
        chunk: ColumnBatch,
        pred: Option<Expr>,
        schema: Schema,
    },
}

impl<'a> Driver<'a> {
    pub(crate) fn new(catalog: &'a Catalog, opts: ExecOptions, ua: bool) -> Driver<'a> {
        let batch_rows = if opts.batch_rows == 0 {
            DEFAULT_BATCH_ROWS
        } else {
            opts.batch_rows
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(resolve_threads(opts.threads))
            .build()
            .expect("shim pool construction is infallible");
        Driver {
            catalog,
            batch_rows,
            ua,
            pool,
        }
    }

    /// Execute `plan` to a batch stream.
    pub(crate) fn stream(&self, plan: &Plan) -> Result<BatchStream, EngineError> {
        let mut specs = Vec::new();
        let source_plan = self.collect_chain(plan, &mut specs)?;
        let source = self.source(source_plan)?;
        if specs.is_empty() {
            return Ok(source);
        }
        let (stages, out_schema) = self.bind_stages(specs, source.schema.clone())?;
        let results = self
            .pool
            .map_in_order(source.batches, |_, batch| run_chain(batch, &stages));
        let mut batches = Vec::new();
        for r in results {
            // `?` on the lowest-indexed error reproduces the serial loop's
            // failure; later morsels' speculative work is discarded.
            batches.extend(r?);
        }
        Ok(BatchStream {
            schema: out_schema,
            batches,
        })
    }

    /// Walk down the plan collecting pipelineable stages (top-down order);
    /// returns the pipeline's source node.
    fn collect_chain<'p>(
        &self,
        plan: &'p Plan,
        specs: &mut Vec<Spec<'p>>,
    ) -> Result<&'p Plan, EngineError> {
        let mut cur = plan;
        loop {
            match cur {
                Plan::Filter { input, predicate } => {
                    if self.ua {
                        reject_marker_reference(predicate)?;
                    }
                    specs.push(Spec::Filter(predicate));
                    cur = input;
                }
                Plan::Map { input, columns } => {
                    if self.ua {
                        // Mirror rewrite_ua: the marker is engine-managed;
                        // projecting or referencing it explicitly is
                        // rejected.
                        for c in columns {
                            if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                                return Err(EngineError::Schema(SchemaError::AmbiguousColumn(
                                    UA_LABEL_COLUMN.to_string(),
                                )));
                            }
                            reject_marker_reference(&c.expr)?;
                        }
                    }
                    specs.push(Spec::Project(columns));
                    cur = input;
                }
                Plan::Alias { input, name } => {
                    specs.push(Spec::Requalify(name));
                    cur = input;
                }
                Plan::HashJoin {
                    left,
                    right,
                    keys,
                    residual,
                    build_left,
                } => {
                    if self.ua {
                        for (kl, kr) in keys.iter() {
                            reject_marker_reference(kl)?;
                            reject_marker_reference(kr)?;
                        }
                        if let Some(res) = residual {
                            reject_marker_reference(res)?;
                        }
                    }
                    let (build_plan, probe_plan) = if *build_left {
                        (&**left, &**right)
                    } else {
                        (&**right, &**left)
                    };
                    specs.push(Spec::HashJoin {
                        build_plan,
                        keys,
                        residual: residual.as_ref(),
                        build_left: *build_left,
                    });
                    cur = probe_plan;
                }
                Plan::Join {
                    left,
                    right,
                    predicate,
                } => {
                    if self.ua {
                        if let Some(p) = predicate {
                            reject_marker_reference(p)?;
                        }
                    }
                    specs.push(Spec::Theta {
                        right,
                        predicate: predicate.as_ref(),
                    });
                    cur = left;
                }
                _ => return Ok(cur),
            }
        }
    }

    /// Bind the collected stages bottom-up against the evolving schema,
    /// executing join build sides, then fuse adjacent filter pairs.
    fn bind_stages(
        &self,
        specs: Vec<Spec<'_>>,
        source_schema: Schema,
    ) -> Result<(Vec<Stage>, Schema), EngineError> {
        let mut schema = source_schema;
        let mut stages: Vec<Stage> = Vec::with_capacity(specs.len());
        for spec in specs.into_iter().rev() {
            match spec {
                Spec::Filter(p) => {
                    let bound = p.bind(&schema).map_err(EngineError::Expr)?;
                    stages.push(Stage::Filter(bound));
                }
                Spec::Project(cols) => {
                    let exprs: Vec<Expr> = cols
                        .iter()
                        .map(|c| c.expr.bind(&schema))
                        .collect::<Result<_, _>>()
                        .map_err(EngineError::Expr)?;
                    let out = Schema::new(cols.iter().map(|c| c.column.clone()).collect());
                    schema = out.clone();
                    stages.push(Stage::Project { exprs, schema: out });
                }
                Spec::Requalify(name) => {
                    schema = schema.with_qualifier(name);
                    stages.push(Stage::Requalify(schema.clone()));
                }
                Spec::HashJoin {
                    build_plan,
                    keys,
                    residual,
                    build_left,
                } => {
                    let build = self.stream(build_plan)?;
                    let (left_schema, right_schema) = if build_left {
                        (build.schema.clone(), schema.clone())
                    } else {
                        (schema.clone(), build.schema.clone())
                    };
                    let state = ops::hash_join_probe_state(
                        build,
                        &left_schema,
                        &right_schema,
                        keys,
                        residual,
                        build_left,
                    )?;
                    schema = state.out_schema().clone();
                    stages.push(Stage::Probe(state));
                }
                Spec::Theta { right, predicate } => {
                    let right_stream = self.stream(right)?;
                    let out_schema = schema.concat(&right_stream.schema);
                    let bound = predicate
                        .map(|p| p.bind(&out_schema))
                        .transpose()
                        .map_err(EngineError::Expr)?;
                    // The strategy decision is ops::theta_strategy — the
                    // same single copy the standalone ops::join uses.
                    match ops::theta_strategy(
                        right_stream,
                        bound.as_ref(),
                        schema.arity(),
                        &out_schema,
                    )? {
                        ops::ThetaStrategy::Hash(state) => stages.push(Stage::Probe(state)),
                        ops::ThetaStrategy::NestedLoop(chunk) => {
                            stages.push(Stage::NestedLoop {
                                chunk,
                                pred: bound,
                                schema: out_schema.clone(),
                            });
                        }
                    }
                    schema = out_schema;
                }
            }
        }
        Ok((fuse_stages(stages), schema))
    }

    /// Execute a pipeline source / breaker node.
    fn source(&self, plan: &Plan) -> Result<BatchStream, EngineError> {
        match plan {
            Plan::Scan(name) => {
                let table = self
                    .catalog
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
                if self.ua {
                    batches_from_encoded_table_pooled(&table, name, self.batch_rows, &self.pool)
                } else {
                    Ok(batches_from_table_pooled(
                        &table,
                        self.batch_rows,
                        &self.pool,
                    ))
                }
            }
            Plan::UnionAll { left, right } => {
                let l = self.stream(left)?;
                let r = self.stream(right)?;
                ops::union_all(l, r)
            }
            Plan::Sort { input, keys } => {
                if self.ua {
                    for (k, _) in keys {
                        reject_marker_reference(k)?;
                    }
                }
                let stream = self.stream(input)?;
                ops::sort(stream, keys, self.batch_rows)
            }
            Plan::TopK { input, keys, limit } => {
                if self.ua {
                    for (k, _) in keys {
                        reject_marker_reference(k)?;
                    }
                }
                let stream = self.stream(input)?;
                ops::top_k(stream, keys, *limit, self.batch_rows)
            }
            Plan::Limit { input, limit } => {
                let stream = self.stream(input)?;
                Ok(ops::limit(stream, *limit))
            }
            Plan::Distinct { input } if !self.ua => {
                let stream = self.stream(input)?;
                Ok(ops::distinct(stream))
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } if !self.ua => {
                let stream = self.stream(input)?;
                ops::aggregate(stream, group_by, aggregates)
            }
            Plan::Distinct { .. } | Plan::Aggregate { .. } => Err(EngineError::Sql(
                "UA queries support the positive relational algebra \
                 (selection, projection, join, UNION ALL) plus trailing \
                 ORDER BY/LIMIT; DISTINCT and aggregation are not closed \
                 under UA semantics"
                    .into(),
            )),
            Plan::Filter { .. }
            | Plan::Map { .. }
            | Plan::Alias { .. }
            | Plan::Join { .. }
            | Plan::HashJoin { .. } => {
                unreachable!("pipelineable nodes are collected into the chain")
            }
        }
    }
}

/// Fuse adjacent `Filter→Project` / `Filter→Probe` stage pairs so the
/// selection bitmap is consumed in the same pass it is produced.
fn fuse_stages(stages: Vec<Stage>) -> Vec<Stage> {
    let mut out: Vec<Stage> = Vec::with_capacity(stages.len());
    for stage in stages {
        match (out.pop(), stage) {
            (Some(Stage::Filter(pred)), Stage::Project { exprs, schema }) => {
                out.push(Stage::FilterProject {
                    pred,
                    exprs,
                    schema,
                });
            }
            (Some(Stage::Filter(pred)), Stage::Probe(probe)) => {
                out.push(Stage::FilterProbe { pred, probe });
            }
            (prev, stage) => {
                if let Some(p) = prev {
                    out.push(p);
                }
                out.push(stage);
            }
        }
    }
    out
}

/// Run one morsel through the stage chain. Pure function of the input
/// batch — the parallel driver's determinism rests on this.
fn run_chain(batch: ColumnBatch, stages: &[Stage]) -> Result<Vec<ColumnBatch>, EngineError> {
    if batch.is_empty() {
        return Ok(Vec::new());
    }
    let mut cur = vec![batch];
    for stage in stages {
        let mut next = Vec::new();
        for b in cur {
            apply_stage(stage, b, &mut next)?;
        }
        if next.is_empty() {
            return Ok(next);
        }
        cur = next;
    }
    Ok(cur)
}

fn apply_stage(
    stage: &Stage,
    batch: ColumnBatch,
    out: &mut Vec<ColumnBatch>,
) -> Result<(), EngineError> {
    match stage {
        Stage::Filter(pred) => match filter_selection(pred, &batch)? {
            None => out.push(batch),
            Some(sel) if sel.is_empty() => {}
            Some(sel) => out.push(batch.gather(&sel)),
        },
        Stage::Project { exprs, schema } => {
            out.push(project_selected(&batch, None, exprs, schema)?);
        }
        Stage::FilterProject {
            pred,
            exprs,
            schema,
        } => match filter_selection(pred, &batch)? {
            None => out.push(project_selected(&batch, None, exprs, schema)?),
            Some(sel) if sel.is_empty() => {}
            Some(sel) => out.push(project_selected(&batch, Some(&sel), exprs, schema)?),
        },
        Stage::Requalify(schema) => out.push(batch.with_schema(schema.clone())),
        Stage::Probe(probe) => {
            if let Some(joined) = probe.probe(&batch, None)? {
                out.push(joined);
            }
        }
        Stage::FilterProbe { pred, probe } => match filter_selection(pred, &batch)? {
            None => {
                if let Some(joined) = probe.probe(&batch, None)? {
                    out.push(joined);
                }
            }
            Some(sel) if sel.is_empty() => {}
            Some(sel) => {
                if let Some(joined) = probe.probe(&batch, Some(&sel))? {
                    out.push(joined);
                }
            }
        },
        Stage::NestedLoop {
            chunk,
            pred,
            schema,
        } => ops::nested_loop_batch(&batch, chunk, pred.as_ref(), schema, out)?,
    }
    Ok(())
}
