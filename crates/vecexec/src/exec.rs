//! The vectorized plan driver: executes [`Plan`]s batch-at-a-time.
//!
//! Every operator the row executor supports runs here too. Sort still
//! materializes (it orders the whole result and reuses the row engine's
//! `sort_table` so tie-breaks agree exactly); Limit is columnar-native
//! ([`ops::limit`] truncates batches, label bitmaps and multiplicities in
//! place of materializing rows).

use crate::columnar::{batches_from_table, table_from_batches, BatchStream, DEFAULT_BATCH_ROWS};
use crate::ops;
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};
use ua_engine::EngineError;

/// Execute `plan` against `catalog` with the vectorized engine,
/// materializing the result table. Drop-in replacement for
/// [`ua_engine::execute`].
pub fn execute_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    let stream = exec_stream(plan, catalog, DEFAULT_BATCH_ROWS)?;
    Ok(table_from_batches(&stream))
}

/// Execute `plan` into a batch stream with an explicit batch size (the
/// differential tests sweep batch boundaries through this).
pub fn exec_stream(
    plan: &Plan,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    match plan {
        Plan::Scan(name) => {
            let table = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            Ok(batches_from_table(&table, batch_rows))
        }
        Plan::Alias { input, name } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            let schema = stream.schema.with_qualifier(name);
            Ok(stream.with_schema(schema))
        }
        Plan::Filter { input, predicate } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            ops::filter(stream, predicate)
        }
        Plan::Map { input, columns } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            ops::project(stream, columns)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            let l = exec_stream(left, catalog, batch_rows)?;
            let r = exec_stream(right, catalog, batch_rows)?;
            ops::join(l, r, predicate.as_ref())
        }
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => {
            let l = exec_stream(left, catalog, batch_rows)?;
            let r = exec_stream(right, catalog, batch_rows)?;
            ops::hash_join(l, r, keys, residual.as_ref(), *build_left)
        }
        Plan::UnionAll { left, right } => {
            let l = exec_stream(left, catalog, batch_rows)?;
            let r = exec_stream(right, catalog, batch_rows)?;
            ops::union_all(l, r)
        }
        Plan::Distinct { input } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            Ok(ops::distinct(stream))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
        } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            ops::aggregate(stream, group_by, aggregates)
        }
        Plan::Sort { input, keys } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            let table = table_from_batches(&stream);
            let sorted = ua_engine::sort_table(&table, keys)?;
            Ok(batches_from_table(&sorted, batch_rows))
        }
        Plan::Limit { input, limit } => {
            let stream = exec_stream(input, catalog, batch_rows)?;
            Ok(ops::limit(stream, *limit))
        }
    }
}
