//! The vectorized plan driver: morsel-driven, optionally parallel,
//! batch-at-a-time execution of [`Plan`]s.
//!
//! ## Pipelines and morsels
//!
//! The driver splits a plan into **pipelines**: maximal chains of per-batch
//! operators — filter, projection, re-qualification, hash-join *probe* —
//! over one source (a scan, a pipeline breaker like Sort/Aggregate, or a
//! nested-loop join). Each source batch is a *morsel*: it runs through the
//! whole bound stage chain independently, so morsels execute on a small
//! work-stealing thread pool (the offline `rayon` shim) with **no shared
//! mutable state** — hash-join build sides are built once (large builds
//! partition by key hash and index each partition on its own worker, see
//! [`ops`]) and probed read-only; UA label bitmaps AND per morsel inside
//! the join gather. Aggregation, the other pipeline breaker, folds
//! partition-parallel through [`ops::aggregate_pooled`].
//!
//! ## Determinism contract
//!
//! Parallel output is **byte-identical** to serial output for every thread
//! count and batch size: per-morsel results are merged in source batch
//! index order (the pool's `map_in_order`), every stage is a pure function
//! of its input batch, and errors are reported from the lowest-indexed
//! failing morsel — exactly the batch the serial loop would have failed
//! on. The determinism property tests hammer this across thread counts.
//!
//! One scoping note on errors: when a query contains *several* distinct
//! failure sites (say a type error in a projection over batch 0 and a
//! division error in a filter over batch 1), which one surfaces depends on
//! evaluation order — the row engine finishes each operator over all rows
//! before the next, while this pipeline runs each morsel through the whole
//! chain. Both engines fail on exactly the same queries (the differential
//! harness asserts Err/Err agreement), and the vectorized engine's choice
//! is deterministic across thread counts and batch sizes, but the *choice
//! among multiple errors* is not part of the cross-engine contract.
//!
//! ## Fused kernels
//!
//! Adjacent `Filter→Map` and `Filter→HashJoin-probe` pairs fuse: the
//! filter's selection bitmap is evaluated and *consumed in the same pass*
//! ([`crate::kernels::project_selected`], [`ops::ProbeState::probe`]),
//! gathering each needed column once instead of materializing the filtered
//! batch first.
//!
//! Sort, Top-K and Limit are columnar-native ([`ops::sort`],
//! [`ops::top_k`], [`ops::limit`]) — nothing in this driver materializes
//! rows anymore.

use crate::columnar::{
    batches_from_encoded_table_pooled, batches_from_table_pooled, table_from_batches_pooled,
    BatchStream, ColumnBatch, DEFAULT_BATCH_ROWS,
};
use crate::kernels::{filter_selection, project_selected};
use crate::ops::{self, ProbeState};
use ua_core::{expr_mentions_marker, UA_LABEL_COLUMN};
use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;
use ua_data::schema::{Schema, SchemaError};
use ua_engine::plan::Plan;
use ua_engine::stats::node_label;
use ua_engine::storage::{Catalog, Table};
use ua_engine::{estimate_rows, EngineError, ExecOptions};
use ua_obs::{OperatorStats, PoolStats, QueryStats, Stopwatch};

/// Execute `plan` against `catalog` with the vectorized engine using
/// default options (auto thread count), materializing the result table.
/// Drop-in replacement for [`ua_engine::execute`].
pub fn execute_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_vectorized_opts(plan, catalog, ExecOptions::default())
}

/// [`execute_vectorized`] with explicit [`ExecOptions`] (thread count /
/// batch size). This is the hook the engine's `ExecMode::Vectorized`
/// dispatch calls.
pub fn execute_vectorized_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<Table, EngineError> {
    if opts.collect_stats {
        ua_obs::mem_query_start();
    }
    let driver = Driver::new(catalog, opts, false);
    match driver.stream_traced(plan) {
        Ok((stream, stats)) => {
            let table = driver.phase("merge", || table_from_batches_pooled(&stream, &driver.pool));
            driver.deposit_stats(stats, "det");
            Ok(table)
        }
        Err(e) => {
            driver.deposit_error_stats(plan, "det");
            Err(e)
        }
    }
}

/// Execute `plan` into a batch stream with an explicit batch size, serially
/// (the differential tests sweep batch boundaries through this and use it
/// as the reference output for the parallel determinism property).
pub fn exec_stream(
    plan: &Plan,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    exec_stream_opts(
        plan,
        catalog,
        ExecOptions {
            threads: 1,
            batch_rows,
            collect_stats: false,
            collect_trace: false,
        },
    )
}

/// [`exec_stream`] with explicit [`ExecOptions`].
pub fn exec_stream_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<BatchStream, EngineError> {
    Driver::new(catalog, opts, false).stream(plan)
}

/// Resolve a requested thread count: `0` = the `UA_VEC_THREADS`
/// environment variable if set to a positive integer, else the machine's
/// available parallelism.
pub fn resolve_threads(threads: usize) -> usize {
    if threads != 0 {
        return threads;
    }
    if let Ok(v) = std::env::var("UA_VEC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The marker is engine bookkeeping, not user schema: reject references so
/// both executors fail identically (mirrors `rewrite_ua`).
pub(crate) fn reject_marker_reference(expr: &Expr) -> Result<(), EngineError> {
    if expr_mentions_marker(expr) {
        Err(EngineError::Schema(SchemaError::AmbiguousColumn(
            UA_LABEL_COLUMN.to_string(),
        )))
    } else {
        Ok(())
    }
}

/// One query's execution context: catalog, batch size, thread pool, and
/// whether scans decode UA-encoded tables into label bitmaps (`ua`).
pub(crate) struct Driver<'a> {
    catalog: &'a Catalog,
    batch_rows: usize,
    ua: bool,
    /// Collect per-stage [`OperatorStats`] (and morsel-pool metrics) next
    /// to the result. Results are byte-identical on or off.
    collect_stats: bool,
    /// Emit bind/execute/merge phase spans on the session thread's armed
    /// trace ring, and have the pool record per-morsel task spans for
    /// injection after the join. Results are byte-identical on or off.
    collect_trace: bool,
    /// Live [`ua_obs::MemTracker`]s for pipeline-breaker materializations
    /// (join build tables, sort/Top-K/aggregate outputs). Held until the
    /// driver drops, so states that coexist during execution stack in the
    /// query-wide memory high-water mark.
    mem: std::cell::RefCell<Vec<ua_obs::MemTracker>>,
    pub(crate) pool: rayon::ThreadPool,
}

/// A pipelineable operator, collected top-down while walking the plan.
enum Spec<'p> {
    Filter(&'p Expr),
    Project(&'p [ProjColumn]),
    Requalify(&'p str),
    HashJoin {
        build_plan: &'p Plan,
        keys: &'p [(Expr, Expr)],
        residual: Option<&'p Expr>,
        build_left: bool,
    },
    Theta {
        right: &'p Plan,
        predicate: Option<&'p Expr>,
    },
}

/// A bound per-batch stage (expressions resolved against the stage's input
/// schema; join build sides materialized and indexed).
enum Stage {
    Filter(Expr),
    Project {
        exprs: Vec<Expr>,
        schema: Schema,
    },
    /// Fused σ→π: selection bitmap evaluated and consumed in one pass.
    FilterProject {
        pred: Expr,
        exprs: Vec<Expr>,
        schema: Schema,
    },
    Requalify(Schema),
    Probe(ProbeState),
    /// Fused σ→probe: hash keys evaluate over filter survivors only and
    /// the join gathers straight from the original batch.
    FilterProbe {
        pred: Expr,
        probe: ProbeState,
    },
    NestedLoop {
        chunk: ColumnBatch,
        pred: Option<Expr>,
        schema: Schema,
    },
}

impl<'a> Driver<'a> {
    pub(crate) fn new(catalog: &'a Catalog, opts: ExecOptions, ua: bool) -> Driver<'a> {
        let batch_rows = if opts.batch_rows == 0 {
            DEFAULT_BATCH_ROWS
        } else {
            opts.batch_rows
        };
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(resolve_threads(opts.threads))
            .build()
            .expect("shim pool construction is infallible");
        pool.set_instrumented(opts.collect_stats || opts.collect_trace);
        pool.set_spans_recorded(opts.collect_trace);
        Driver {
            catalog,
            batch_rows,
            ua,
            collect_stats: opts.collect_stats,
            collect_trace: opts.collect_trace,
            mem: std::cell::RefCell::new(Vec::new()),
            pool,
        }
    }

    /// Bracket `f` in a query-phase trace span when tracing is on; a plain
    /// call otherwise. The span closes on the error path too, so exported
    /// traces stay balanced.
    pub(crate) fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        if self.collect_trace {
            ua_obs::trace_scope(name, "vecexec", f)
        } else {
            f()
        }
    }

    /// Charge a pipeline-breaker materialization against the query's
    /// memory accumulator, holding the tracker until the driver drops (the
    /// state really does live until then — probe states and breaker
    /// outputs are owned by the running query).
    fn track_mem(&self, bytes: u64) {
        let mut t = ua_obs::MemTracker::new();
        t.alloc(bytes);
        self.mem.borrow_mut().push(t);
    }

    /// Publish an instrumented run's stats through the thread-local
    /// handoff slot ([`ua_obs::set_last_query_stats`]) for the session to
    /// adopt — the hook signatures stay stats-agnostic.
    pub(crate) fn deposit_stats(&self, root: Option<OperatorStats>, semantics: &str) {
        deposit_query_stats(&self.pool, self.collect_trace, root, semantics);
    }

    /// Deposit a one-node error-marked stats tree for a query that failed
    /// mid-execution, so `last_query_stats()` still reports *something*
    /// (engine, semantics, the failing plan's root operator) instead of
    /// silently yielding the previous query's stats.
    pub(crate) fn deposit_error_stats(&self, plan: &Plan, semantics: &str) {
        let root = self.collect_stats.then(|| error_root(plan, self.catalog));
        self.deposit_stats(root, semantics);
    }

    /// Execute `plan` to a batch stream.
    pub(crate) fn stream(&self, plan: &Plan) -> Result<BatchStream, EngineError> {
        self.stream_traced(plan).map(|(s, _)| s)
    }

    /// Execute `plan` to a batch stream, returning the per-stage span tree
    /// when stats collection is on (`None` otherwise).
    ///
    /// Instrumentation is collected off the result path: every morsel's
    /// per-stage tallies ride next to its output batches through the same
    /// `map_in_order`, and both merge in deterministic batch-index order —
    /// tallies by summation, batches exactly as the untraced path would.
    pub(crate) fn stream_traced(
        &self,
        plan: &Plan,
    ) -> Result<(BatchStream, Option<OperatorStats>), EngineError> {
        let mut specs = Vec::new();
        let source_plan = self.collect_chain(plan, &mut specs)?;
        let (source, source_stats) = self.source_traced(source_plan)?;
        if specs.is_empty() {
            return Ok((source, source_stats));
        }
        let (stages, out_schema, metas) =
            self.phase("bind", || self.bind_stages(specs, source.schema.clone()))?;
        if !self.collect_stats {
            let results = self.phase("execute", || {
                self.pool
                    .map_in_order(source.batches, |_, batch| run_chain(batch, &stages))
            });
            let mut batches = Vec::new();
            for r in results {
                // `?` on the lowest-indexed error reproduces the serial
                // loop's failure; later morsels' speculative work is
                // discarded.
                batches.extend(r?);
            }
            return Ok((
                BatchStream {
                    schema: out_schema,
                    batches,
                },
                None,
            ));
        }
        let n_stages = stages.len();
        let results = self.phase("execute", || {
            self.pool
                .map_in_order(source.batches, |_, batch| run_chain_traced(batch, &stages))
        });
        let mut batches = Vec::new();
        let mut tallies = vec![StageTally::default(); n_stages];
        for r in results {
            let (bs, ts) = r?;
            batches.extend(bs);
            for (acc, t) in tallies.iter_mut().zip(ts) {
                acc.merge(&t);
            }
        }
        // Wrap the source span in one node per stage, innermost (first to
        // run) deepest — the tree mirrors the executed pipeline.
        let mut node = source_stats.expect("tracing yields source stats");
        let metas = metas.expect("tracing yields stage metas");
        for (meta, tally) in metas.into_iter().zip(tallies) {
            let mut n = OperatorStats::new(meta.name, meta.detail);
            n.est_rows = meta.est_rows;
            n.rows_out = tally.rows_out;
            n.batches_out = tally.batches_out;
            n.extra = meta.extra;
            if n.name == "HashJoin" || n.name == "Join" || n.name == "Cross" {
                n.push_extra("probe_rows", node.rows_out);
            }
            if self.ua {
                n.push_extra("certain_rows", tally.certain_rows);
            }
            let mut children = meta.children;
            children.push(node);
            n.wall_ns = tally.wall_ns + children.iter().map(|c| c.wall_ns).sum::<u64>();
            n.children = children;
            node = n;
        }
        Ok((
            BatchStream {
                schema: out_schema,
                batches,
            },
            Some(node),
        ))
    }

    /// Walk down the plan collecting pipelineable stages (top-down order),
    /// each paired with the plan node it came from (for stage labels and
    /// cardinality estimates when tracing); returns the pipeline's source
    /// node.
    fn collect_chain<'p>(
        &self,
        plan: &'p Plan,
        specs: &mut Vec<(Spec<'p>, &'p Plan)>,
    ) -> Result<&'p Plan, EngineError> {
        let mut cur = plan;
        loop {
            let node = cur;
            match cur {
                Plan::Filter { input, predicate } => {
                    if self.ua {
                        reject_marker_reference(predicate)?;
                    }
                    specs.push((Spec::Filter(predicate), node));
                    cur = input;
                }
                Plan::Map { input, columns } => {
                    if self.ua {
                        // Mirror rewrite_ua: the marker is engine-managed;
                        // projecting or referencing it explicitly is
                        // rejected.
                        for c in columns {
                            if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                                return Err(EngineError::Schema(SchemaError::AmbiguousColumn(
                                    UA_LABEL_COLUMN.to_string(),
                                )));
                            }
                            reject_marker_reference(&c.expr)?;
                        }
                    }
                    specs.push((Spec::Project(columns), node));
                    cur = input;
                }
                Plan::Alias { input, name } => {
                    specs.push((Spec::Requalify(name), node));
                    cur = input;
                }
                Plan::HashJoin {
                    left,
                    right,
                    keys,
                    residual,
                    build_left,
                } => {
                    if self.ua {
                        for (kl, kr) in keys.iter() {
                            reject_marker_reference(kl)?;
                            reject_marker_reference(kr)?;
                        }
                        if let Some(res) = residual {
                            reject_marker_reference(res)?;
                        }
                    }
                    let (build_plan, probe_plan) = if *build_left {
                        (&**left, &**right)
                    } else {
                        (&**right, &**left)
                    };
                    specs.push((
                        Spec::HashJoin {
                            build_plan,
                            keys,
                            residual: residual.as_ref(),
                            build_left: *build_left,
                        },
                        node,
                    ));
                    cur = probe_plan;
                }
                Plan::Join {
                    left,
                    right,
                    predicate,
                } => {
                    if self.ua {
                        if let Some(p) = predicate {
                            reject_marker_reference(p)?;
                        }
                    }
                    specs.push((
                        Spec::Theta {
                            right,
                            predicate: predicate.as_ref(),
                        },
                        node,
                    ));
                    cur = left;
                }
                _ => return Ok(cur),
            }
        }
    }

    /// Bind the collected stages bottom-up against the evolving schema,
    /// executing join build sides, then fuse adjacent filter pairs. When
    /// tracing, a [`StageMeta`] per bound stage rides along (labels,
    /// estimates, build-side span trees), fused in lockstep with the
    /// stages.
    fn bind_stages(
        &self,
        specs: Vec<(Spec<'_>, &Plan)>,
        source_schema: Schema,
    ) -> Result<BoundStages, EngineError> {
        let mut schema = source_schema;
        let mut stages: Vec<Stage> = Vec::with_capacity(specs.len());
        let mut metas: Option<Vec<StageMeta>> = self
            .collect_stats
            .then(|| Vec::with_capacity(stages.capacity()));
        for (spec, node_plan) in specs.into_iter().rev() {
            let mut meta = metas.as_ref().map(|_| {
                let (name, detail) = node_label(node_plan);
                StageMeta {
                    name,
                    detail,
                    est_rows: estimate_rows(node_plan, self.catalog),
                    extra: Vec::new(),
                    children: Vec::new(),
                }
            });
            match spec {
                Spec::Filter(p) => {
                    let bound = p.bind(&schema).map_err(EngineError::Expr)?;
                    stages.push(Stage::Filter(bound));
                }
                Spec::Project(cols) => {
                    let exprs: Vec<Expr> = cols
                        .iter()
                        .map(|c| c.expr.bind(&schema))
                        .collect::<Result<_, _>>()
                        .map_err(EngineError::Expr)?;
                    let out = Schema::new(cols.iter().map(|c| c.column.clone()).collect());
                    schema = out.clone();
                    stages.push(Stage::Project { exprs, schema: out });
                }
                Spec::Requalify(name) => {
                    schema = schema.with_qualifier(name);
                    stages.push(Stage::Requalify(schema.clone()));
                }
                Spec::HashJoin {
                    build_plan,
                    keys,
                    residual,
                    build_left,
                } => {
                    let build_timer = meta.as_ref().map(|_| Stopwatch::start());
                    let (build, build_stats) = self.stream_traced(build_plan)?;
                    if let (Some(m), Some(timer)) = (meta.as_mut(), build_timer) {
                        m.extra.push(("build_ns".into(), timer.elapsed_ns()));
                        m.extra.push((
                            "build_rows".into(),
                            build.batches.iter().map(|b| b.len() as u64).sum(),
                        ));
                        let bytes = stream_mem_bytes(&build);
                        self.track_mem(bytes);
                        m.extra.push(("mem_bytes".into(), bytes));
                        m.children.extend(build_stats);
                    }
                    let (left_schema, right_schema) = if build_left {
                        (build.schema.clone(), schema.clone())
                    } else {
                        (schema.clone(), build.schema.clone())
                    };
                    let state = ops::hash_join_probe_state(
                        build,
                        &left_schema,
                        &right_schema,
                        keys,
                        residual,
                        build_left,
                        Some(&self.pool),
                    )?;
                    schema = state.out_schema().clone();
                    stages.push(Stage::Probe(state));
                }
                Spec::Theta { right, predicate } => {
                    let build_timer = meta.as_ref().map(|_| Stopwatch::start());
                    let (right_stream, right_stats) = self.stream_traced(right)?;
                    if let (Some(m), Some(timer)) = (meta.as_mut(), build_timer) {
                        m.extra.push(("build_ns".into(), timer.elapsed_ns()));
                        m.extra.push((
                            "build_rows".into(),
                            right_stream.batches.iter().map(|b| b.len() as u64).sum(),
                        ));
                        let bytes = stream_mem_bytes(&right_stream);
                        self.track_mem(bytes);
                        m.extra.push(("mem_bytes".into(), bytes));
                        m.children.extend(right_stats);
                    }
                    let out_schema = schema.concat(&right_stream.schema);
                    let bound = predicate
                        .map(|p| p.bind(&out_schema))
                        .transpose()
                        .map_err(EngineError::Expr)?;
                    // The strategy decision is ops::theta_strategy — the
                    // same single copy the standalone ops::join uses.
                    match ops::theta_strategy(
                        right_stream,
                        bound.as_ref(),
                        schema.arity(),
                        &out_schema,
                        Some(&self.pool),
                    )? {
                        ops::ThetaStrategy::Hash(state) => stages.push(Stage::Probe(state)),
                        ops::ThetaStrategy::NestedLoop(chunk) => {
                            stages.push(Stage::NestedLoop {
                                chunk,
                                pred: bound,
                                schema: out_schema.clone(),
                            });
                        }
                    }
                    schema = out_schema;
                }
            }
            if let (Some(ms), Some(m)) = (metas.as_mut(), meta) {
                ms.push(m);
            }
        }
        let (stages, metas) = fuse_stages(stages, metas);
        Ok((stages, schema, metas))
    }

    /// Execute a pipeline source / breaker node, with its span when
    /// tracing.
    fn source_traced(
        &self,
        plan: &Plan,
    ) -> Result<(BatchStream, Option<OperatorStats>), EngineError> {
        let timer = self.collect_stats.then(Stopwatch::start);
        let (stream, children) = match plan {
            Plan::Scan(name) => {
                let table = self
                    .catalog
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
                let stream = if self.ua {
                    batches_from_encoded_table_pooled(&table, name, self.batch_rows, &self.pool)?
                } else {
                    batches_from_table_pooled(&table, self.batch_rows, &self.pool)
                };
                (stream, Vec::new())
            }
            Plan::UnionAll { left, right } => {
                let (l, ls) = self.stream_traced(left)?;
                let (r, rs) = self.stream_traced(right)?;
                let children = ls.into_iter().chain(rs).collect();
                (ops::union_all(l, r)?, children)
            }
            Plan::Except { left, right, all } => {
                let (l, ls) = self.stream_traced(left)?;
                let (r, rs) = self.stream_traced(right)?;
                let children = ls.into_iter().chain(rs).collect();
                (ops::except(l, r, *all)?, children)
            }
            Plan::OuterJoin {
                left,
                right,
                predicate,
                kind,
            } => {
                if self.ua {
                    if let Some(p) = predicate {
                        reject_marker_reference(p)?;
                    }
                }
                let (l, ls) = self.stream_traced(left)?;
                let (r, rs) = self.stream_traced(right)?;
                let children = ls.into_iter().chain(rs).collect();
                (
                    ops::outer_join(
                        l,
                        r,
                        predicate.as_ref(),
                        *kind == ua_engine::plan::OuterKind::Left,
                        Some(&self.pool),
                    )?,
                    children,
                )
            }
            Plan::Sort { input, keys } => {
                if self.ua {
                    for (k, _) in keys {
                        reject_marker_reference(k)?;
                    }
                }
                let (stream, child) = self.stream_traced(input)?;
                (
                    ops::sort(stream, keys, self.batch_rows)?,
                    child.into_iter().collect(),
                )
            }
            Plan::TopK { input, keys, limit } => {
                if self.ua {
                    for (k, _) in keys {
                        reject_marker_reference(k)?;
                    }
                }
                let (stream, child) = self.stream_traced(input)?;
                (
                    ops::top_k(stream, keys, *limit, self.batch_rows)?,
                    child.into_iter().collect(),
                )
            }
            Plan::Limit { input, limit } => {
                let (stream, child) = self.stream_traced(input)?;
                (ops::limit(stream, *limit), child.into_iter().collect())
            }
            Plan::Distinct { input } if !self.ua => {
                let (stream, child) = self.stream_traced(input)?;
                (ops::distinct(stream), child.into_iter().collect())
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } if !self.ua => {
                let (stream, child) = self.stream_traced(input)?;
                (
                    ops::aggregate_pooled(stream, group_by, aggregates, &self.pool)?,
                    child.into_iter().collect(),
                )
            }
            Plan::Distinct { .. } | Plan::Aggregate { .. } => {
                return Err(EngineError::Sql(ua_engine::UA_FRAGMENT_ERROR.into()))
            }
            Plan::Filter { .. }
            | Plan::Map { .. }
            | Plan::Alias { .. }
            | Plan::Join { .. }
            | Plan::HashJoin { .. } => {
                unreachable!("pipelineable nodes are collected into the chain")
            }
        };
        // Pipeline breakers hold their whole output (and their build
        // state) materialized at once — charge that against the query's
        // memory accumulator and surface it on the span. Scans charge
        // nothing: base-table batches share the catalog's storage.
        let breaker_bytes = (self.collect_stats
            && matches!(
                plan,
                Plan::Sort { .. }
                    | Plan::TopK { .. }
                    | Plan::Distinct { .. }
                    | Plan::Aggregate { .. }
                    | Plan::Except { .. }
                    | Plan::OuterJoin { .. }
            ))
        .then(|| stream_mem_bytes(&stream));
        if let Some(bytes) = breaker_bytes {
            self.track_mem(bytes);
        }
        let stats = timer.map(|timer| {
            // `timer` spans children too, so the elapsed time is already
            // cumulative — exactly the [`OperatorStats::wall_ns`] contract.
            let (name, detail) = node_label(plan);
            let mut node = OperatorStats::new(name, detail);
            node.est_rows = estimate_rows(plan, self.catalog);
            node.rows_out = stream.batches.iter().map(|b| b.len() as u64).sum();
            node.batches_out = stream.batches.len() as u64;
            node.wall_ns = timer.elapsed_ns();
            if let Some(bytes) = breaker_bytes {
                node.push_extra("mem_bytes", bytes);
            }
            if self.ua {
                node.push_extra(
                    "certain_rows",
                    stream
                        .batches
                        .iter()
                        .map(|b| b.labels().count_ones() as u64)
                        .sum::<u64>(),
                );
            }
            node.children = children;
            node
        });
        Ok((stream, stats))
    }
}

/// Deterministic logical size of one batch, matching the row engine's
/// [`ua_engine::stats::tuple_mem_bytes`] convention (8 bytes of row
/// header plus one 16-byte slot per value, plus string payload lengths):
/// the figure depends only on logical shape, never on allocator layout,
/// batch size or thread count, so `mem_bytes` columns are comparable
/// across both engines and stable under the determinism grid.
pub(crate) fn batch_mem_bytes(batch: &ColumnBatch) -> u64 {
    let mut bytes = 8 * batch.len() as u64;
    for c in 0..batch.schema().arity() {
        bytes += column_mem_bytes(batch.column(c));
    }
    bytes
}

/// One column's logical bytes under the same convention: one 16-byte
/// value slot per row plus string payload lengths.
pub(crate) fn column_mem_bytes(col: &crate::columnar::ColumnVec) -> u64 {
    use crate::columnar::ColumnVec;
    match col {
        ColumnVec::Int(v) => 16 * v.len() as u64,
        ColumnVec::Float(v) => 16 * v.len() as u64,
        ColumnVec::Bool(v) => 16 * v.len() as u64,
        ColumnVec::Str(v) => v.iter().map(|s| 16 + s.len() as u64).sum::<u64>(),
        ColumnVec::Mixed(v) => v.iter().map(ua_engine::stats::value_mem_bytes).sum::<u64>(),
    }
}

/// [`batch_mem_bytes`] summed over a stream — the logical footprint of a
/// fully materialized pipeline-breaker output or join build side.
pub(crate) fn stream_mem_bytes(stream: &BatchStream) -> u64 {
    stream.batches.iter().map(batch_mem_bytes).sum()
}

/// Replay the pool's recorded per-morsel task spans onto the session
/// thread's trace ring (`morsel N` / `build N`, category `pool`, tid
/// `1 + worker`), then drop them. No-op when no trace ring is armed.
pub(crate) fn inject_pool_spans(pool: &rayon::ThreadPool) {
    for s in pool.take_spans() {
        if let Some(ts) = ua_obs::trace_ns_of(s.start) {
            let dur = s.end.saturating_duration_since(s.start).as_nanos() as u64;
            let kind = if s.build { "build" } else { "morsel" };
            ua_obs::trace_span_at(
                &format!("{kind} {}", s.index),
                "pool",
                1 + s.worker as u64,
                ts,
                dur,
            );
        }
    }
}

/// Publish an instrumented run's stats through the thread-local handoff
/// slot, shared by the det/UA driver and the AU driver: replay morsel
/// spans *before* `take_metrics` drains the shared pool state, and disarm
/// the memory accumulator unconditionally so an uninstrumented (or
/// failed) follow-up query starts clean.
pub(crate) fn deposit_query_stats(
    pool: &rayon::ThreadPool,
    collect_trace: bool,
    root: Option<OperatorStats>,
    semantics: &str,
) {
    if collect_trace {
        inject_pool_spans(pool);
    }
    let peak_mem_bytes = ua_obs::mem_query_finish().unwrap_or(0);
    let Some(root) = root else { return };
    let m = pool.take_metrics();
    let pool_stats = PoolStats {
        workers: m.workers as u64,
        tasks: m.tasks,
        stolen: m.stolen,
        wall_ns: m.wall_ns,
        merge_ns: m.merge_ns,
        worker_busy_ns: m.worker_busy_ns,
        worker_tasks: m.worker_tasks,
        build_tasks: m.build_tasks,
        build_wall_ns: m.build_wall_ns,
        partition_merge_ns: m.partition_merge_ns,
    };
    ua_obs::set_last_query_stats(QueryStats {
        engine: "vectorized".into(),
        semantics: semantics.into(),
        root,
        pool: Some(pool_stats),
        peak_mem_bytes,
    });
}

/// A one-node stats tree for a failed query: the plan root's label with
/// an `error` marker, the shape [`crate::exec::Driver::deposit_error_stats`]
/// and the AU hook deposit so EXPLAIN ANALYZE can say *which* query died.
pub(crate) fn error_root(plan: &Plan, catalog: &Catalog) -> OperatorStats {
    let (name, detail) = node_label(plan);
    let mut node = OperatorStats::new(name, detail);
    node.est_rows = estimate_rows(plan, catalog);
    node.push_extra("error", 1);
    node
}

/// Bound pipeline stages, the schema they produce, and (when tracing)
/// their [`StageMeta`] companions.
type BoundStages = (Vec<Stage>, Schema, Option<Vec<StageMeta>>);

/// Labels, estimates and child spans for one bound pipeline stage,
/// assembled into [`OperatorStats`] after the morsel tallies merge.
struct StageMeta {
    name: String,
    detail: String,
    est_rows: Option<u64>,
    extra: Vec<(String, u64)>,
    children: Vec<OperatorStats>,
}

/// Per-stage output tallies for one morsel's run through the chain,
/// summed across morsels in batch-index order.
#[derive(Clone, Default)]
struct StageTally {
    rows_out: u64,
    batches_out: u64,
    wall_ns: u64,
    /// Output rows whose UA label bit is set (certain rows). Summation is
    /// order-independent, so the merged figure is deterministic across
    /// thread counts; only surfaced on UA runs (deterministic batches
    /// carry all-certain labels by construction).
    certain_rows: u64,
}

impl StageTally {
    fn merge(&mut self, other: &StageTally) {
        self.rows_out += other.rows_out;
        self.batches_out += other.batches_out;
        self.wall_ns += other.wall_ns;
        self.certain_rows += other.certain_rows;
    }
}

/// Fuse adjacent `Filter→Project` / `Filter→Probe` stage pairs so the
/// selection bitmap is consumed in the same pass it is produced. Stage
/// metas (when tracing) fuse in lockstep: the merged span keeps the
/// consumer's label with the filter's predicate folded into its detail,
/// so the tree mirrors the kernels that actually ran.
fn fuse_stages(
    stages: Vec<Stage>,
    metas: Option<Vec<StageMeta>>,
) -> (Vec<Stage>, Option<Vec<StageMeta>>) {
    let tracing = metas.is_some();
    let mut metas = metas.unwrap_or_default().into_iter();
    let mut out: Vec<Stage> = Vec::with_capacity(stages.len());
    let mut out_metas: Vec<StageMeta> = Vec::new();
    let fuse_meta = |out_metas: &mut Vec<StageMeta>, meta: Option<StageMeta>| {
        if let (Some(filter), Some(mut consumer)) = (out_metas.pop(), meta) {
            consumer.detail = if consumer.detail.is_empty() {
                format!("σ[{}]", filter.detail)
            } else {
                format!("{}; σ[{}]", consumer.detail, filter.detail)
            };
            consumer.extra.push(("fused_filter".into(), 1));
            out_metas.push(consumer);
        }
    };
    for stage in stages {
        let meta = if tracing { metas.next() } else { None };
        match (out.pop(), stage) {
            (Some(Stage::Filter(pred)), Stage::Project { exprs, schema }) => {
                out.push(Stage::FilterProject {
                    pred,
                    exprs,
                    schema,
                });
                fuse_meta(&mut out_metas, meta);
            }
            (Some(Stage::Filter(pred)), Stage::Probe(probe)) => {
                out.push(Stage::FilterProbe { pred, probe });
                fuse_meta(&mut out_metas, meta);
            }
            (prev, stage) => {
                if let Some(p) = prev {
                    out.push(p);
                }
                out.push(stage);
                if let Some(m) = meta {
                    out_metas.push(m);
                }
            }
        }
    }
    (out, tracing.then_some(out_metas))
}

/// Run one morsel through the stage chain. Pure function of the input
/// batch — the parallel driver's determinism rests on this.
fn run_chain(batch: ColumnBatch, stages: &[Stage]) -> Result<Vec<ColumnBatch>, EngineError> {
    if batch.is_empty() {
        return Ok(Vec::new());
    }
    let mut cur = vec![batch];
    for stage in stages {
        let mut next = Vec::new();
        for b in cur {
            apply_stage(stage, b, &mut next)?;
        }
        if next.is_empty() {
            return Ok(next);
        }
        cur = next;
    }
    Ok(cur)
}

/// [`run_chain`] plus a per-stage [`StageTally`] — the instrumented morsel
/// run. Stats ride *next to* the batches; the batches themselves are what
/// `run_chain` would produce, bit for bit.
fn run_chain_traced(
    batch: ColumnBatch,
    stages: &[Stage],
) -> Result<(Vec<ColumnBatch>, Vec<StageTally>), EngineError> {
    let mut tallies = vec![StageTally::default(); stages.len()];
    if batch.is_empty() {
        return Ok((Vec::new(), tallies));
    }
    let mut cur = vec![batch];
    for (i, stage) in stages.iter().enumerate() {
        let timer = Stopwatch::start();
        let mut next = Vec::new();
        for b in cur {
            apply_stage(stage, b, &mut next)?;
        }
        let t = &mut tallies[i];
        t.wall_ns += timer.elapsed_ns();
        t.rows_out += next.iter().map(|b| b.len() as u64).sum::<u64>();
        t.batches_out += next.len() as u64;
        t.certain_rows += next
            .iter()
            .map(|b| b.labels().count_ones() as u64)
            .sum::<u64>();
        if next.is_empty() {
            return Ok((next, tallies));
        }
        cur = next;
    }
    Ok((cur, tallies))
}

fn apply_stage(
    stage: &Stage,
    batch: ColumnBatch,
    out: &mut Vec<ColumnBatch>,
) -> Result<(), EngineError> {
    match stage {
        Stage::Filter(pred) => match filter_selection(pred, &batch)? {
            None => out.push(batch),
            Some(sel) if sel.is_empty() => {}
            Some(sel) => out.push(batch.gather(&sel)),
        },
        Stage::Project { exprs, schema } => {
            out.push(project_selected(&batch, None, exprs, schema)?);
        }
        Stage::FilterProject {
            pred,
            exprs,
            schema,
        } => match filter_selection(pred, &batch)? {
            None => out.push(project_selected(&batch, None, exprs, schema)?),
            Some(sel) if sel.is_empty() => {}
            Some(sel) => out.push(project_selected(&batch, Some(&sel), exprs, schema)?),
        },
        Stage::Requalify(schema) => out.push(batch.with_schema(schema.clone())),
        Stage::Probe(probe) => {
            if let Some(joined) = probe.probe(&batch, None)? {
                out.push(joined);
            }
        }
        Stage::FilterProbe { pred, probe } => match filter_selection(pred, &batch)? {
            None => {
                if let Some(joined) = probe.probe(&batch, None)? {
                    out.push(joined);
                }
            }
            Some(sel) if sel.is_empty() => {}
            Some(sel) => {
                if let Some(joined) = probe.probe(&batch, Some(&sel))? {
                    out.push(joined);
                }
            }
        },
        Stage::NestedLoop {
            chunk,
            pred,
            schema,
        } => ops::nested_loop_batch(&batch, chunk, pred.as_ref(), schema, out)?,
    }
    Ok(())
}
