//! The vectorized AU path: attribute-level bounds as range column triples.
//!
//! An AU batch is an ordinary [`ColumnBatch`] over the *flattened* AU
//! schema (`ua_ranges::flattened_schema`): the selected-guess columns in
//! user order, then one lower- and one upper-bound column per attribute
//! (`NULL` = `∓∞`), then the three multiplicity-bound columns. Typed
//! column vectors apply unchanged — a certain `Int` attribute stays three
//! dense `Int` columns.
//!
//! Operator coverage:
//!
//! * **σ** — the selected-guess mask evaluates with the existing typed
//!   [`crate::kernels::truth_masks`] over the bg columns; the
//!   certainly/possibly-true analysis runs `ua_ranges::truth_range` per
//!   row over ranges assembled from the triple columns; multiplicity
//!   columns are refined per the `⟦σ⟧_AU` rule.
//! * **π** — bg output columns evaluate with the typed expression kernels
//!   (including the typed arithmetic kernels); bound columns are `O(1)`
//!   column clones for plain references, broadcasts for literals, and
//!   per-row interval evaluation for computed expressions.
//! * **Scan / Alias** — native (decode-normalize once, re-qualify).
//! * **Everything else** (joins, union, distinct, aggregation, sort,
//!   limit) — per-operator fallback to the *shared* `ua_ranges::ops`
//!   implementations via [`ua_engine::au_unary`]/[`ua_engine::au_binary`]:
//!   the stream materializes to an [`AuRelation`], the single shared
//!   operator runs, and the result re-batches. One implementation of the
//!   bound combination exists in the workspace, so the engines cannot
//!   disagree — the differential tests assert byte-identical encoded
//!   results.

use crate::columnar::{batches_from_table, ColumnBatch, ColumnVec};
use crate::kernels::{eval_expr, truth_masks};
use std::sync::Arc;
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::plan::Plan;
use ua_engine::stats::node_label;
use ua_engine::storage::{Catalog, Table};
use ua_engine::{estimate_rows, EngineError, ExecOptions};
use ua_obs::{OperatorStats, QueryStats, Stopwatch};
use ua_ranges::{
    au_base_schema, decode_rows, flattened_schema, range_from_parts, range_parts, truth_range,
    AuRelation, RangeValue,
};

/// A stream of AU batches: the user schema plus batches over its
/// flattened form.
struct AuStream {
    user: Schema,
    flat: Schema,
    batches: Vec<ColumnBatch>,
}

impl AuStream {
    fn from_relation(rel: &AuRelation, batch_rows: usize) -> AuStream {
        let table = ua_engine::au_table(rel);
        let stream = batches_from_table(&table, batch_rows);
        AuStream {
            user: rel.schema().clone(),
            flat: stream.schema,
            batches: stream.batches,
        }
    }

    fn to_relation(&self) -> Result<AuRelation, EngineError> {
        let mut rows: Vec<Tuple> = Vec::new();
        for b in &self.batches {
            for i in 0..b.len() {
                rows.push(b.row(i));
            }
        }
        decode_rows(&self.flat, &rows).map_err(EngineError::Sql)
    }
}

/// The batch's selected-guess view: the first `n` columns under the user
/// schema (cheap `Arc` clones), so the deterministic kernels evaluate bg
/// expressions directly.
fn bg_view(batch: &ColumnBatch, user: &Schema) -> ColumnBatch {
    let n = user.arity();
    ColumnBatch::new(
        user.clone(),
        batch.columns()[..n].to_vec(),
        batch.labels().clone(),
        Arc::new(batch.mults().to_vec()),
    )
}

/// Assemble row `i`'s attribute ranges from the triple columns.
fn row_ranges(batch: &ColumnBatch, n: usize, i: usize) -> Vec<RangeValue> {
    (0..n)
        .map(|c| {
            range_from_parts(
                batch.column(n + c).value(i),
                batch.column(c).value(i),
                batch.column(2 * n + c).value(i),
            )
        })
        .collect()
}

fn mult_at(batch: &ColumnBatch, n: usize, component: usize, i: usize) -> i64 {
    match batch.column(3 * n + component).value(i) {
        Value::Int(m) => m,
        _ => 0,
    }
}

struct AuDriver<'a> {
    catalog: &'a Catalog,
    batch_rows: usize,
    /// Collect per-operator [`OperatorStats`] next to the result (results
    /// are identical on or off).
    collect_stats: bool,
}

/// The metric-name suffix of `au.vec.fallback.<kind>` — the global
/// counters auditing which operators the AU vectorized path hands to the
/// shared scalar `ua_ranges::ops` implementations instead of running
/// batch-native. Bumped on every fallback, instrumented or not (an atomic
/// add), so the audit is always live.
fn fallback_kind(plan: &Plan) -> Option<&'static str> {
    match plan {
        Plan::Join { .. } => Some("join"),
        Plan::HashJoin { .. } => Some("hash_join"),
        Plan::UnionAll { .. } => Some("union_all"),
        Plan::Distinct { .. } => Some("distinct"),
        Plan::Aggregate { .. } => Some("aggregate"),
        Plan::Sort { .. } => Some("sort"),
        Plan::Limit { .. } => Some("limit"),
        Plan::TopK { .. } => Some("top_k"),
        Plan::Scan(..) | Plan::Alias { .. } | Plan::Filter { .. } | Plan::Map { .. } => None,
    }
}

impl<'a> AuDriver<'a> {
    fn stream_traced(&self, plan: &Plan) -> Result<(AuStream, Option<OperatorStats>), EngineError> {
        let timer = self.collect_stats.then(Stopwatch::start);
        let fallback = fallback_kind(plan);
        if let Some(kind) = fallback {
            ua_obs::global()
                .counter(&format!("au.vec.fallback.{kind}"))
                .inc();
        }
        let (stream, children) = match plan {
            Plan::Scan(name) => {
                let table = self
                    .catalog
                    .get(name)
                    .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
                // Decode once — validating and *normalizing* exactly like
                // the row engine's scan — then re-batch the canonical form.
                let rel = decode_rows(table.schema(), table.rows()).map_err(EngineError::Sql)?;
                (AuStream::from_relation(&rel, self.batch_rows), Vec::new())
            }
            Plan::Alias { input, name } => {
                let (stream, child) = self.stream_traced(input)?;
                let user = stream.user.with_qualifier(name);
                let flat = flattened_schema(&user);
                (
                    AuStream {
                        batches: stream
                            .batches
                            .iter()
                            .map(|b| b.with_schema(flat.clone()))
                            .collect(),
                        user,
                        flat,
                    },
                    child.into_iter().collect(),
                )
            }
            Plan::Filter { input, predicate } => {
                let (stream, child) = self.stream_traced(input)?;
                (self.filter(stream, predicate)?, child.into_iter().collect())
            }
            Plan::Map { input, columns } => {
                let (stream, child) = self.stream_traced(input)?;
                (self.map(stream, columns)?, child.into_iter().collect())
            }
            // Pipeline breakers and joins: evaluate children, run the
            // shared AU operator, re-batch.
            Plan::Join { left, right, .. }
            | Plan::HashJoin { left, right, .. }
            | Plan::UnionAll { left, right } => {
                let (ls, lstat) = self.stream_traced(left)?;
                let (rs, rstat) = self.stream_traced(right)?;
                let out = ua_engine::au_binary(plan, &ls.to_relation()?, &rs.to_relation()?)?;
                (
                    AuStream::from_relation(&out, self.batch_rows),
                    lstat.into_iter().chain(rstat).collect(),
                )
            }
            Plan::Distinct { input }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopK { input, .. } => {
                let (stream, child) = self.stream_traced(input)?;
                let out = ua_engine::au_unary(plan, &stream.to_relation()?)?;
                (
                    AuStream::from_relation(&out, self.batch_rows),
                    child.into_iter().collect(),
                )
            }
        };
        let stats = timer.map(|timer| {
            let (name, detail) = node_label(plan);
            let mut node = OperatorStats::new(name, detail);
            node.est_rows = estimate_rows(plan, self.catalog);
            node.rows_out = stream.batches.iter().map(|b| b.len() as u64).sum();
            node.batches_out = stream.batches.len() as u64;
            // The timer spans the recursive children, so this is already
            // the cumulative wall time `OperatorStats` documents.
            node.wall_ns = timer.elapsed_ns();
            if fallback.is_some() {
                node.push_extra("fallback", 1);
            }
            node.children = children;
            node
        });
        Ok((stream, stats))
    }

    /// `⟦σ_θ⟧_AU`, batch-native: possibly-true rows survive; per row the
    /// multiplicity lower bound is kept only under a certainly-true
    /// predicate and the selected-guess multiplicity only when θ holds
    /// over the bg columns (the vectorized typed mask).
    fn filter(&self, stream: AuStream, predicate: &Expr) -> Result<AuStream, EngineError> {
        let bound = predicate.bind(&stream.user).map_err(EngineError::Expr)?;
        let n = stream.user.arity();
        let mut batches = Vec::with_capacity(stream.batches.len());
        for batch in &stream.batches {
            if batch.is_empty() {
                continue;
            }
            let bgv = bg_view(batch, &stream.user);
            let (bg_true, _) = truth_masks(&bound, &bgv)?;
            let mut keep: Vec<u32> = Vec::new();
            let mut new_lb: Vec<Value> = Vec::new();
            let mut new_bg: Vec<Value> = Vec::new();
            for i in 0..batch.len() {
                let ranges = row_ranges(batch, n, i);
                let rt = truth_range(&bound, &ranges);
                if !rt.possibly_true() {
                    continue;
                }
                keep.push(i as u32);
                new_lb.push(Value::Int(if rt.certainly_true() {
                    mult_at(batch, n, 0, i)
                } else {
                    0
                }));
                new_bg.push(Value::Int(if bg_true.get(i) {
                    mult_at(batch, n, 1, i)
                } else {
                    0
                }));
            }
            if keep.is_empty() {
                continue;
            }
            let gathered = batch.gather(&keep);
            let mut columns = gathered.columns().to_vec();
            columns[3 * n] = ColumnVec::from_values(new_lb.iter());
            columns[3 * n + 1] = ColumnVec::from_values(new_bg.iter());
            batches.push(ColumnBatch::new(
                stream.flat.clone(),
                columns,
                gathered.labels().clone(),
                Arc::new(gathered.mults().to_vec()),
            ));
        }
        Ok(AuStream {
            user: stream.user,
            flat: stream.flat,
            batches,
        })
    }

    /// `⟦π⟧_AU`, batch-native: bg output columns through the typed
    /// expression kernels; bound columns cloned for plain references,
    /// broadcast for literals, interval-evaluated per row otherwise.
    fn map(
        &self,
        stream: AuStream,
        columns: &[ua_data::algebra::ProjColumn],
    ) -> Result<AuStream, EngineError> {
        let bound: Vec<Expr> = columns
            .iter()
            .map(|c| c.expr.bind(&stream.user))
            .collect::<Result<_, _>>()
            .map_err(EngineError::Expr)?;
        let user = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
        let flat = flattened_schema(&user);
        let n_in = stream.user.arity();
        let n_out = user.arity();
        let mut batches = Vec::with_capacity(stream.batches.len());
        for batch in &stream.batches {
            let len = batch.len();
            let bgv = bg_view(batch, &stream.user);
            let bg_cols: Vec<ColumnVec> = bound
                .iter()
                .map(|e| Ok(eval_expr(e, &bgv)?.into_column(len)))
                .collect::<Result<_, EngineError>>()?;
            // Per-row range assembly is shared across computed expressions.
            let mut memo: Option<Vec<Vec<RangeValue>>> = None;
            let mut lb_cols: Vec<ColumnVec> = Vec::with_capacity(n_out);
            let mut ub_cols: Vec<ColumnVec> = Vec::with_capacity(n_out);
            for (k, e) in bound.iter().enumerate() {
                match e {
                    Expr::Col(i) => {
                        lb_cols.push(batch.column(n_in + i).clone());
                        ub_cols.push(batch.column(2 * n_in + i).clone());
                    }
                    Expr::Lit(v) => {
                        let (lb, _, ub) = range_parts(&RangeValue::point(v.clone()));
                        lb_cols.push(ColumnVec::broadcast(&lb, len));
                        ub_cols.push(ColumnVec::broadcast(&ub, len));
                    }
                    other => {
                        let rows = memo.get_or_insert_with(|| {
                            (0..len).map(|i| row_ranges(batch, n_in, i)).collect()
                        });
                        let mut lbs: Vec<Value> = Vec::with_capacity(len);
                        let mut ubs: Vec<Value> = Vec::with_capacity(len);
                        for (i, ranges) in rows.iter().enumerate() {
                            let approx = ua_ranges::approx_range(other, ranges);
                            // Re-normalize against the exact bg — the same
                            // `RangeValue::new` step `eval_range` performs.
                            let r = RangeValue::new(
                                approx.lb().clone(),
                                bg_cols[k].value(i),
                                approx.ub().clone(),
                            );
                            let (lb, _, ub) = range_parts(&r);
                            lbs.push(lb);
                            ubs.push(ub);
                        }
                        lb_cols.push(ColumnVec::from_values(lbs.iter()));
                        ub_cols.push(ColumnVec::from_values(ubs.iter()));
                    }
                }
            }
            let mut out_cols: Vec<ColumnVec> = Vec::with_capacity(3 * n_out + 3);
            out_cols.extend(bg_cols);
            out_cols.extend(lb_cols);
            out_cols.extend(ub_cols);
            out_cols.push(batch.column(3 * n_in).clone());
            out_cols.push(batch.column(3 * n_in + 1).clone());
            out_cols.push(batch.column(3 * n_in + 2).clone());
            batches.push(ColumnBatch::new(
                flat.clone(),
                out_cols,
                batch.labels().clone(),
                Arc::new(batch.mults().to_vec()),
            ));
        }
        Ok(AuStream {
            user,
            flat,
            batches,
        })
    }
}

/// Execute an AU plan with the vectorized engine, returning the flattened
/// encoded result table — the hook `ua_engine`'s `ExecMode::Vectorized`
/// AU dispatch calls. `opts.batch_rows` sizes the morsels; the AU path
/// currently runs each batch serially (its pipeline breakers dominate),
/// so `opts.threads` is accepted but unused.
pub fn execute_au_vectorized_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<Table, EngineError> {
    let batch_rows = if opts.batch_rows == 0 {
        crate::columnar::DEFAULT_BATCH_ROWS
    } else {
        opts.batch_rows
    };
    let driver = AuDriver {
        catalog,
        batch_rows,
        collect_stats: opts.collect_stats,
    };
    let (stream, stats) = driver.stream_traced(plan)?;
    let mut rows: Vec<Tuple> = Vec::new();
    for b in &stream.batches {
        for i in 0..b.len() {
            rows.push(b.row(i));
        }
    }
    if let Some(root) = stats {
        ua_obs::set_last_query_stats(QueryStats {
            engine: "vectorized".into(),
            semantics: "au".into(),
            root,
            pool: None,
        });
    }
    Ok(Table::from_rows(stream.flat, rows))
}

/// [`execute_au_vectorized_opts`] with default options.
pub fn execute_au_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_au_vectorized_opts(plan, catalog, ExecOptions::default())
}

/// Whether a table in the catalog is AU-encoded (flattened layout).
pub fn is_au_table(table: &Table) -> bool {
    au_base_schema(table.schema()).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;
    use ua_engine::UaSession;

    #[test]
    fn vectorized_au_matches_row_au() {
        crate::install();
        let session = UaSession::new();
        session.register_table(
            "t",
            Table::from_rows(
                Schema::qualified("t", ["g", "v", "p"]),
                vec![
                    tuple![1i64, 10i64, 1.0],
                    tuple![1i64, 20i64, 0.7],
                    tuple![2i64, 30i64, 0.4],
                    tuple![2i64, 40i64, 1.0],
                ],
            ),
        );
        for sql in [
            "SELECT g, v FROM t IS TI WITH PROBABILITY (p) x WHERE x.v >= 15",
            "SELECT g, count(*) AS n, sum(v) AS s FROM t IS TI WITH PROBABILITY (p) x GROUP BY g",
            "SELECT DISTINCT g FROM t IS TI WITH PROBABILITY (p) x",
            "SELECT g, v + 1 AS w FROM t IS TI WITH PROBABILITY (p) x ORDER BY w DESC LIMIT 2",
        ] {
            let row = {
                session.set_exec_mode(ua_engine::ExecMode::Row);
                session
                    .query_au(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
            };
            let vec = {
                session.set_exec_mode(ua_engine::ExecMode::Vectorized);
                session
                    .query_au(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
            };
            assert_eq!(row.table.schema(), vec.table.schema(), "{sql}");
            assert_eq!(row.table.rows(), vec.table.rows(), "{sql}");
        }
    }
}
