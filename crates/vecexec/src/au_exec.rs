//! The vectorized AU path: attribute-level bounds as range column triples.
//!
//! An AU batch is an ordinary [`ColumnBatch`] over the *flattened* AU
//! schema (`ua_ranges::flattened_schema`): the selected-guess columns in
//! user order, then one lower- and one upper-bound column per attribute
//! (`NULL` = `∓∞`), then the three multiplicity-bound columns. Typed
//! column vectors apply unchanged — a certain `Int` attribute stays three
//! dense `Int` columns.
//!
//! Operator coverage:
//!
//! * **Scan** — batches the encoded table directly, chunk-parallel on the
//!   morsel pool. Each chunk validates with a typed columnar fast path
//!   (same-type `lb ≤ bg ≤ ub` triples under the domain order, well-formed
//!   positive multiplicities); only chunks that fail it pay the row-wise
//!   `decode_row`/`encode_row` normalization — pay-as-you-go, and the
//!   first malformed row reports exactly like the row engine's scan.
//! * **σ** — the selected-guess mask evaluates with the existing typed
//!   [`crate::kernels::truth_masks`] over the bg columns; the
//!   certainly/possibly-true analysis runs `ua_ranges::truth_range` per
//!   row over ranges assembled from the triple columns; multiplicity
//!   columns are refined per the `⟦σ⟧_AU` rule. Batches filter in
//!   parallel, merged in deterministic batch order.
//! * **π** — bg output columns evaluate with the typed expression kernels
//!   (including the typed arithmetic kernels); bound columns are `O(1)`
//!   column clones for plain references, broadcasts for literals, and
//!   per-row interval evaluation re-anchored via `ua_ranges::reanchor` for
//!   computed expressions (preserving definite NULLs, exactly like the row
//!   engine's `eval_range`).
//! * **γ** — aggregation prepares its inputs *columnar*: group keys and
//!   aggregate arguments assemble per column (stored triples for plain
//!   references, typed-kernel selected guesses re-anchoring interval
//!   evaluation for computed expressions) into an [`AggInput`], then the
//!   single shared bound combination `ua_ranges::ops::aggregate_prepared`
//!   (with its integer-key fast path) folds the groups. No row tuples, no
//!   decode round trip.
//! * **Sort / Top-K / Limit / ∪** — run the deterministic columnar
//!   operators over the flat stream directly: the full flattened row is
//!   the AU sort tie-break order by construction, so [`crate::ops::sort`]
//!   and [`crate::ops::top_k`] reproduce `ua_ranges::ops::sort_by_bg` +
//!   `limit` byte for byte. Union validates the *user* schemas (the row
//!   engine's error) and concatenates batches.
//! * **⋈ (nested-loop and hash)** — the stream's columns convert straight
//!   into range rows (no tuple encoding, no re-validation — the stream is
//!   canonical by construction) and feed the shared
//!   `ua_ranges::ops::join`/`hash_join`, which prune candidate pairs with
//!   the selected-guess key index. One implementation of the pair
//!   refinement exists in the workspace, so the engines cannot disagree.
//! * **δ (distinct)** — rows merge by selected-guess tuple straight off
//!   the bg columns in first-seen scan order, hulling attribute ranges
//!   and combining multiplicities exactly as `ua_ranges::ops::distinct`.
//!
//! No operator falls back to the row engine's materialize-and-dispatch
//! path any more: every `au.vec.fallback.*` counter stays pinned at zero
//! (regression-tested here and in the engine's observability suite).

use crate::bitmap::Bitmap;
use crate::columnar::{chunk_ranges, BatchStream, ColumnBatch, ColumnVec};
use crate::kernels::{eval_expr, truth_masks};
use std::sync::Arc;
use ua_data::algebra::ProjColumn;
use ua_data::expr::Expr;
use ua_data::schema::{Column, Schema};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_engine::plan::{AggExpr, Plan};
use ua_engine::stats::node_label;
use ua_engine::storage::{Catalog, Table};
use ua_engine::{estimate_rows, EngineError, ExecOptions};
use ua_obs::{OperatorStats, Stopwatch};
use ua_ranges::{
    au_base_schema, decode_row, encode_row, flattened_schema, range_from_parts, range_parts,
    reanchor, truth_range, AggCols, AggKind, AuRelation, MultBound, RangeValue, TripleCol,
};

/// A stream of AU batches: the user schema plus batches over its
/// flattened form.
struct AuStream {
    user: Schema,
    flat: Schema,
    batches: Vec<ColumnBatch>,
}

impl AuStream {
    /// Re-batch a shared-operator result (already canonical — operator
    /// outputs normalize through `RangeValue`/`MultBound` constructors).
    fn from_relation(rel: &AuRelation, batch_rows: usize) -> AuStream {
        let user = rel.schema().clone();
        let flat = flattened_schema(&user);
        let rows: Vec<Tuple> = rel.rows().iter().map(encode_row).collect();
        let batches = chunk_ranges(rows.len(), batch_rows)
            .into_iter()
            .map(|(s, e)| encoded_chunk(&flat, &rows[s..e]))
            .collect();
        AuStream {
            user,
            flat,
            batches,
        }
    }

    /// Convert the columns straight into range rows. Infallible: every
    /// stream is canonical by construction (scans normalize, operators
    /// preserve normal form), so no validation round trip is paid.
    fn to_relation(&self) -> AuRelation {
        let n = self.user.arity();
        let mut rel = AuRelation::new(self.user.clone());
        for b in &self.batches {
            for i in 0..b.len() {
                rel.push(ua_ranges::relation::AuTuple {
                    values: row_ranges(b, n, i),
                    mult: mult_bound_at(b, n, i),
                });
            }
        }
        rel
    }
}

/// Build one batch from already-canonical encoded rows (labels certain,
/// multiplicity 1 — AU multiplicities live in the `ua_m_*` data columns).
fn encoded_chunk(flat: &Schema, chunk: &[Tuple]) -> ColumnBatch {
    let columns: Vec<ColumnVec> = (0..flat.arity())
        .map(|c| {
            ColumnVec::from_values(chunk.iter().map(move |r| r.get(c).expect("arity checked")))
        })
        .collect();
    ColumnBatch::new(
        flat.clone(),
        columns,
        Bitmap::filled(chunk.len(), true),
        Arc::new(vec![1u64; chunk.len()]),
    )
}

/// The batch's selected-guess view: the first `n` columns under the user
/// schema (cheap `Arc` clones), so the deterministic kernels evaluate bg
/// expressions directly.
fn bg_view(batch: &ColumnBatch, user: &Schema) -> ColumnBatch {
    let n = user.arity();
    ColumnBatch::new(
        user.clone(),
        batch.columns()[..n].to_vec(),
        batch.labels().clone(),
        Arc::new(batch.mults().to_vec()),
    )
}

/// Assemble row `i`'s attribute ranges from the triple columns.
fn row_ranges(batch: &ColumnBatch, n: usize, i: usize) -> Vec<RangeValue> {
    (0..n)
        .map(|c| {
            range_from_parts(
                batch.column(n + c).value(i),
                batch.column(c).value(i),
                batch.column(2 * n + c).value(i),
            )
        })
        .collect()
}

fn mult_at(batch: &ColumnBatch, n: usize, component: usize, i: usize) -> i64 {
    match batch.column(3 * n + component).value(i) {
        Value::Int(m) => m,
        _ => 0,
    }
}

/// Row `i`'s multiplicity triple from the `ua_m_*` columns.
fn mult_bound_at(batch: &ColumnBatch, n: usize, i: usize) -> MultBound {
    let at = |c: usize| mult_at(batch, n, c, i).max(0) as u64;
    MultBound::new(at(0), at(1), at(2))
}

/// Whether a decoded chunk is already in canonical encoded form, checked
/// columnar: each attribute triple is same-typed with `lb ≤ bg ≤ ub` under
/// the domain order ([`ua_ranges::range_cmp`], which same-type typed
/// comparisons reproduce exactly), and each multiplicity triple is a
/// well-formed positive `Int` bound. Canonical rows decode and re-encode
/// to themselves, so the whole chunk skips the row-wise normalization.
fn chunk_is_canonical(columns: &[ColumnVec], n: usize) -> bool {
    let (ColumnVec::Int(ml), ColumnVec::Int(mb), ColumnVec::Int(mu)) =
        (&columns[3 * n], &columns[3 * n + 1], &columns[3 * n + 2])
    else {
        return false;
    };
    let mults_ok = ml
        .iter()
        .zip(mb.iter())
        .zip(mu.iter())
        .all(|((&l, &b), &u)| 0 <= l && l <= b && b <= u && u >= 1);
    mults_ok
        && (0..n).all(|c| triple_is_canonical(&columns[n + c], &columns[c], &columns[2 * n + c]))
}

/// One attribute triple's canonical check (see [`chunk_is_canonical`]).
/// Mixed or untyped columns (SQL `NULL` = `∓∞`, definite-NULL sentinels,
/// labeled nulls) conservatively report non-canonical; the row-wise slow
/// path normalizes them.
fn triple_is_canonical(lb: &ColumnVec, bg: &ColumnVec, ub: &ColumnVec) -> bool {
    fn ordered<T: Ord>(l: &[T], b: &[T], u: &[T]) -> bool {
        l.iter()
            .zip(b.iter())
            .zip(u.iter())
            .all(|((l, b), u)| l <= b && b <= u)
    }
    match (lb, bg, ub) {
        (ColumnVec::Int(l), ColumnVec::Int(b), ColumnVec::Int(u)) => ordered(l, b, u),
        // `F64`'s total order is exactly `sql_cmp` (and so `range_cmp`)
        // for float/float comparisons, NaNs included.
        (ColumnVec::Float(l), ColumnVec::Float(b), ColumnVec::Float(u)) => ordered(l, b, u),
        (ColumnVec::Bool(l), ColumnVec::Bool(b), ColumnVec::Bool(u)) => ordered(l, b, u),
        (ColumnVec::Str(l), ColumnVec::Str(b), ColumnVec::Str(u)) => l
            .iter()
            .zip(b.iter())
            .zip(u.iter())
            .all(|((l, b), u)| l.as_ref() <= b.as_ref() && b.as_ref() <= u.as_ref()),
        _ => false,
    }
}

/// Convert one encoded-table chunk into a batch: the typed columnar
/// canonical check first, the row-wise `decode_row`/`encode_row`
/// normalization (dropping `ub = 0` rows, erroring on the first malformed
/// multiplicity — identical to the row engine's scan) only when it fails.
fn scan_chunk(flat: &Schema, n: usize, chunk: &[Tuple]) -> Result<ColumnBatch, EngineError> {
    let columns: Vec<ColumnVec> = (0..flat.arity())
        .map(|c| {
            ColumnVec::from_values(chunk.iter().map(move |r| r.get(c).expect("arity checked")))
        })
        .collect();
    if chunk_is_canonical(&columns, n) {
        return Ok(ColumnBatch::new(
            flat.clone(),
            columns,
            Bitmap::filled(chunk.len(), true),
            Arc::new(vec![1u64; chunk.len()]),
        ));
    }
    let mut rows: Vec<Tuple> = Vec::with_capacity(chunk.len());
    for row in chunk {
        if let Some(t) = decode_row(n, row).map_err(EngineError::Sql)? {
            rows.push(encode_row(&t));
        }
    }
    Ok(encoded_chunk(flat, &rows))
}

/// Evaluate one bound expression's per-row attribute ranges over a batch,
/// columnar where possible: plain references assemble from the stored
/// triples, literals broadcast, and computed expressions re-anchor an
/// interval evaluation on the typed-kernel selected guess — per row
/// exactly `ua_ranges::eval_range` (which is `reanchor(approx_range(e),
/// e.eval(bg))`).
fn expr_ranges(
    batch: &ColumnBatch,
    n: usize,
    expr: &Expr,
    bgv: &ColumnBatch,
    memo: &mut Option<Vec<Vec<RangeValue>>>,
) -> Result<Vec<RangeValue>, EngineError> {
    let len = batch.len();
    match expr {
        Expr::Col(i) => Ok((0..len)
            .map(|r| {
                range_from_parts(
                    batch.column(n + i).value(r),
                    batch.column(*i).value(r),
                    batch.column(2 * n + i).value(r),
                )
            })
            .collect()),
        Expr::Lit(v) => {
            let rv = reanchor(&RangeValue::point(v.clone()), v.clone());
            Ok(vec![rv; len])
        }
        other => {
            let bg = eval_expr(other, bgv)?.into_column(len);
            let rows =
                memo.get_or_insert_with(|| (0..len).map(|i| row_ranges(batch, n, i)).collect());
            Ok(rows
                .iter()
                .enumerate()
                .map(|(i, ranges)| reanchor(&ua_ranges::approx_range(other, ranges), bg.value(i)))
                .collect())
        }
    }
}

struct AuDriver<'a> {
    catalog: &'a Catalog,
    batch_rows: usize,
    /// Collect per-operator [`OperatorStats`] next to the result (results
    /// are identical on or off).
    collect_stats: bool,
    /// Emit execute/merge phase spans and per-morsel pool task spans on
    /// the session thread's armed trace ring (results identical on or
    /// off, like stats).
    collect_trace: bool,
    /// The morsel pool: per-batch stages (scan chunking, σ, π) map in
    /// deterministic batch order, so parallel output is byte-identical to
    /// serial.
    pool: rayon::ThreadPool,
}

impl<'a> AuDriver<'a> {
    /// Bracket `f` in a query-phase trace span when tracing is on; a
    /// plain call otherwise (closes on the error path too, so exported
    /// traces stay balanced).
    fn phase<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        if self.collect_trace {
            ua_obs::trace_scope(name, "vecexec", f)
        } else {
            f()
        }
    }

    fn stream_traced(&self, plan: &Plan) -> Result<(AuStream, Option<OperatorStats>), EngineError> {
        let timer = self.collect_stats.then(Stopwatch::start);
        let (stream, children) = match plan {
            Plan::Scan(name) => (self.scan(name)?, Vec::new()),
            Plan::Alias { input, name } => {
                let (stream, child) = self.stream_traced(input)?;
                let user = stream.user.with_qualifier(name);
                let flat = flattened_schema(&user);
                (
                    AuStream {
                        batches: stream
                            .batches
                            .iter()
                            .map(|b| b.with_schema(flat.clone()))
                            .collect(),
                        user,
                        flat,
                    },
                    child.into_iter().collect(),
                )
            }
            Plan::Filter { input, predicate } => {
                let (stream, child) = self.stream_traced(input)?;
                (self.filter(stream, predicate)?, child.into_iter().collect())
            }
            Plan::Map { input, columns } => {
                let (stream, child) = self.stream_traced(input)?;
                (self.map(stream, columns)?, child.into_iter().collect())
            }
            Plan::Aggregate {
                input,
                group_by,
                aggregates,
            } => {
                let (stream, child) = self.stream_traced(input)?;
                (
                    self.aggregate(stream, group_by, aggregates)?,
                    child.into_iter().collect(),
                )
            }
            Plan::Sort { input, keys } => {
                let (stream, child) = self.stream_traced(input)?;
                let sorted = crate::ops::sort(flat_stream(&stream), keys, self.batch_rows)?;
                (
                    AuStream {
                        user: stream.user,
                        flat: stream.flat,
                        batches: sorted.batches,
                    },
                    child.into_iter().collect(),
                )
            }
            Plan::TopK { input, keys, limit } => {
                let (stream, child) = self.stream_traced(input)?;
                let top = crate::ops::top_k(flat_stream(&stream), keys, *limit, self.batch_rows)?;
                (
                    AuStream {
                        user: stream.user,
                        flat: stream.flat,
                        batches: top.batches,
                    },
                    child.into_iter().collect(),
                )
            }
            Plan::Limit { input, limit } => {
                let (stream, child) = self.stream_traced(input)?;
                let limited = crate::ops::limit(flat_stream(&stream), *limit);
                (
                    AuStream {
                        user: stream.user,
                        flat: stream.flat,
                        batches: limited.batches,
                    },
                    child.into_iter().collect(),
                )
            }
            Plan::UnionAll { left, right } => {
                let (ls, lstat) = self.stream_traced(left)?;
                let (rs, rstat) = self.stream_traced(right)?;
                // Validate the *user* schemas — the row engine's check and
                // error; the left schema wins for the output.
                ls.user
                    .check_union_compatible(&rs.user)
                    .map_err(EngineError::Schema)?;
                let mut batches = ls.batches;
                batches.extend(
                    rs.batches
                        .into_iter()
                        .map(|b| b.with_schema(ls.flat.clone())),
                );
                (
                    AuStream {
                        user: ls.user,
                        flat: ls.flat,
                        batches,
                    },
                    lstat.into_iter().chain(rstat).collect(),
                )
            }
            // Keyless / non-equi joins: block-nested-loop — each left
            // chunk converts to range rows and joins against the full
            // right relation on its own worker, blocks concatenating in
            // chunk order (byte-identical to one monolithic left-major
            // nested loop).
            Plan::Join { left, right, .. } => {
                let (ls, lstat) = self.stream_traced(left)?;
                let (rs, rstat) = self.stream_traced(right)?;
                (
                    self.block_join(plan, &ls, &rs)?,
                    lstat.into_iter().chain(rstat).collect(),
                )
            }
            // Hash joins: columns convert straight into range rows (no
            // encode, no re-validation) and feed the shared selected-guess
            // hash join.
            Plan::HashJoin { left, right, .. } => {
                let (ls, lstat) = self.stream_traced(left)?;
                let (rs, rstat) = self.stream_traced(right)?;
                let out = ua_engine::au_binary(plan, &ls.to_relation(), &rs.to_relation())?;
                (
                    AuStream::from_relation(&out, self.batch_rows),
                    lstat.into_iter().chain(rstat).collect(),
                )
            }
            Plan::Distinct { input } => {
                let (stream, child) = self.stream_traced(input)?;
                (self.distinct(stream), child.into_iter().collect())
            }
            // Difference / outer join: both sides convert to range
            // relations and route through the shared AU bound-combination
            // operators in `ua_ranges::ops` (the same single copy the row
            // interpreter dispatches through `au_binary`), so the two
            // engines cannot diverge on the `[lb, bg, ub]` arithmetic.
            Plan::Except { left, right, .. } | Plan::OuterJoin { left, right, .. } => {
                let (ls, lstat) = self.stream_traced(left)?;
                let (rs, rstat) = self.stream_traced(right)?;
                let out = ua_engine::au_binary(plan, &ls.to_relation(), &rs.to_relation())?;
                (
                    AuStream::from_relation(&out, self.batch_rows),
                    lstat.into_iter().chain(rstat).collect(),
                )
            }
        };
        let stats = timer.map(|timer| {
            let (name, detail) = node_label(plan);
            let mut node = OperatorStats::new(name, detail);
            node.est_rows = estimate_rows(plan, self.catalog);
            node.rows_out = stream.batches.iter().map(|b| b.len() as u64).sum();
            node.batches_out = stream.batches.len() as u64;
            // The timer spans the recursive children, so this is already
            // the cumulative wall time `OperatorStats` documents.
            node.wall_ns = timer.elapsed_ns();
            au_span_extras(&stream, &mut node);
            node.children = children;
            node
        });
        Ok((stream, stats))
    }

    /// Scan an AU-encoded table into batches, chunk-parallel. Validation
    /// is columnar per chunk ([`chunk_is_canonical`]); the first malformed
    /// row errors exactly like the row engine's decode (chunks merge in
    /// table order).
    fn scan(&self, name: &str) -> Result<AuStream, EngineError> {
        let table = self
            .catalog
            .get(name)
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        let user = au_base_schema(table.schema()).ok_or_else(|| {
            EngineError::Sql(format!(
                "schema {} is not AU-encoded (ua_lb_*/ua_ub_*/ua_m_* layout)",
                table.schema()
            ))
        })?;
        let flat = flattened_schema(&user);
        let n = user.arity();
        let rows = table.rows();
        let ranges = chunk_ranges(rows.len(), self.batch_rows);
        let batches: Vec<ColumnBatch> = self
            .pool
            .map_in_order(ranges, |_, (s, e)| scan_chunk(&flat, n, &rows[s..e]))
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .filter(|b| !b.is_empty())
            .collect();
        Ok(AuStream {
            user,
            flat,
            batches,
        })
    }

    /// `⟦σ_θ⟧_AU`, batch-native: possibly-true rows survive; per row the
    /// multiplicity lower bound is kept only under a certainly-true
    /// predicate and the selected-guess multiplicity only when θ holds
    /// over the bg columns (the vectorized typed mask). Batches filter in
    /// parallel on the morsel pool.
    fn filter(&self, stream: AuStream, predicate: &Expr) -> Result<AuStream, EngineError> {
        let bound = predicate.bind(&stream.user).map_err(EngineError::Expr)?;
        let n = stream.user.arity();
        let batches: Vec<ColumnBatch> = self
            .pool
            .map_in_order(stream.batches.iter().collect::<Vec<_>>(), |_, batch| {
                filter_batch(batch, &bound, &stream.user, &stream.flat, n)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .flatten()
            .collect();
        Ok(AuStream {
            user: stream.user,
            flat: stream.flat,
            batches,
        })
    }

    /// `⟦π⟧_AU`, batch-native: bg output columns through the typed
    /// expression kernels; bound columns cloned for plain references,
    /// broadcast for literals, interval-evaluated and re-anchored
    /// ([`ua_ranges::reanchor`] — definite NULLs stay definite) per row
    /// otherwise. Batches project in parallel on the morsel pool.
    fn map(&self, stream: AuStream, columns: &[ProjColumn]) -> Result<AuStream, EngineError> {
        let bound: Vec<Expr> = columns
            .iter()
            .map(|c| c.expr.bind(&stream.user))
            .collect::<Result<_, _>>()
            .map_err(EngineError::Expr)?;
        let user = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
        let flat = flattened_schema(&user);
        let n_in = stream.user.arity();
        let batches: Vec<ColumnBatch> = self
            .pool
            .map_in_order(stream.batches.iter().collect::<Vec<_>>(), |_, batch| {
                map_batch(batch, &bound, &stream.user, &flat, n_in)
            })
            .into_iter()
            .collect::<Result<_, _>>()?;
        Ok(AuStream {
            user,
            flat,
            batches,
        })
    }

    /// `⟦γ⟧_AU`, triple-column-native: group keys, aggregate arguments
    /// and multiplicity triples assemble columnar into the shared
    /// [`AggCols`] — plain references over dense same-typed triples copy
    /// the `lb/bg/ub` slices straight off the canonical chunks (no
    /// per-row [`RangeValue`] gathering), everything else evaluates per
    /// row via [`expr_ranges`] — and the single workspace bound
    /// combination (`ua_ranges::ops::aggregate_cols`, typed kernels over
    /// the dense triples, integer-key fast path included) folds the
    /// groups. Keys evaluate before arguments, like the row engine.
    fn aggregate(
        &self,
        stream: AuStream,
        group_by: &[ProjColumn],
        aggregates: &[AggExpr],
    ) -> Result<AuStream, EngineError> {
        let bound_keys: Vec<Expr> = group_by
            .iter()
            .map(|g| g.expr.bind(&stream.user))
            .collect::<Result<_, _>>()
            .map_err(EngineError::Expr)?;
        let bound_args: Vec<Option<Expr>> = aggregates
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.bind(&stream.user)).transpose())
            .collect::<Result<_, _>>()
            .map_err(EngineError::Expr)?;
        let n = stream.user.arity();
        let n_rows: usize = stream.batches.iter().map(|b| b.len()).sum();
        let mut input = AggCols {
            keys: bound_keys
                .iter()
                .map(|e| empty_triple(&stream.batches, n, e, n_rows))
                .collect(),
            args: bound_args
                .iter()
                .map(|e| {
                    e.as_ref()
                        .map(|e| empty_triple(&stream.batches, n, e, n_rows))
                })
                .collect(),
            mults: Vec::with_capacity(n_rows),
        };
        for batch in &stream.batches {
            if batch.is_empty() {
                continue;
            }
            let bgv = bg_view(batch, &stream.user);
            let mut memo: Option<Vec<Vec<RangeValue>>> = None;
            for (e, col) in bound_keys.iter().zip(&mut input.keys) {
                fill_triple(batch, n, e, &bgv, &mut memo, col)?;
            }
            for (e, col) in bound_args.iter().zip(&mut input.args) {
                if let (Some(e), Some(col)) = (e.as_ref(), col.as_mut()) {
                    fill_triple(batch, n, e, &bgv, &mut memo, col)?;
                }
            }
            for i in 0..batch.len() {
                input.mults.push(mult_bound_at(batch, n, i));
            }
        }
        let kinds: Vec<AggKind> = aggregates
            .iter()
            .map(|a| ua_engine::agg_kind(a.func))
            .collect();
        let mut columns: Vec<Column> = group_by.iter().map(|g| g.column.clone()).collect();
        columns.extend(aggregates.iter().map(|a| Column::unqualified(&a.name)));
        let rel = ua_ranges::ops::aggregate_cols(&input, &kinds, Schema::new(columns));
        Ok(AuStream::from_relation(&rel, self.batch_rows))
    }

    /// `⟦⋈⟧_AU` for keyless / non-equi joins (`Plan::Join`), block
    /// nested-loop: each left chunk converts straight into range rows
    /// (reusing the stream↔relation conversion) and joins against the
    /// full right relation on its own worker through the shared
    /// [`ua_engine::au_binary`] → `ua_ranges::ops::join` refinement.
    /// `join` is left-row-major over the whole right side, so blocks
    /// concatenated in chunk order are byte-identical to one monolithic
    /// call, and errors surface from the lowest-indexed failing chunk —
    /// the row engine's left-scan order.
    fn block_join(
        &self,
        plan: &Plan,
        ls: &AuStream,
        rs: &AuStream,
    ) -> Result<AuStream, EngineError> {
        let right = rs.to_relation();
        let n = ls.user.arity();
        let chunk_rel = |batch: &ColumnBatch| {
            let mut chunk = AuRelation::new(ls.user.clone());
            for i in 0..batch.len() {
                chunk.push(ua_ranges::relation::AuTuple {
                    values: row_ranges(batch, n, i),
                    mult: mult_bound_at(batch, n, i),
                });
            }
            chunk
        };
        let parts: Vec<AuRelation> = if ls.batches.is_empty() {
            // Empty left side: one empty block still produces the joined
            // schema (and any predicate binding error) like the row path.
            vec![ua_engine::au_binary(
                plan,
                &AuRelation::new(ls.user.clone()),
                &right,
            )?]
        } else {
            self.pool
                .map_in_order(ls.batches.iter().collect::<Vec<_>>(), |_, batch| {
                    ua_engine::au_binary(plan, &chunk_rel(batch), &right)
                })
                .into_iter()
                .collect::<Result<_, _>>()?
        };
        let mut parts = parts.into_iter();
        let mut out = parts.next().expect("at least one block");
        for part in parts {
            for row in part.rows() {
                out.push(row.clone());
            }
        }
        Ok(AuStream::from_relation(&out, self.batch_rows))
    }

    /// `⟦δ⟧_AU`, batch-native: rows merge by selected-guess tuple over the
    /// canonical chunks in first-seen scan order. The stream's first `n`
    /// columns *are* the SG tuple, so the merge key reads straight off the
    /// bg columns; merged rows hull their attribute ranges and combine
    /// multiplicities exactly as `ua_ranges::ops::distinct` (`lb`/`bg` cap
    /// at 1, `ub` sums — each copy may ground to a distinct surviving
    /// value), so the output is byte-identical to the row engine's δ.
    fn distinct(&self, stream: AuStream) -> AuStream {
        let n = stream.user.arity();
        let mut index: FxHashMap<Tuple, usize> = FxHashMap::default();
        let mut merged: Vec<ua_ranges::relation::AuTuple> = Vec::new();
        for batch in &stream.batches {
            for i in 0..batch.len() {
                let key: Tuple = (0..n).map(|c| batch.column(c).value(i)).collect();
                let mult = mult_bound_at(batch, n, i);
                match index.get(&key) {
                    Some(&slot) => {
                        let acc = &mut merged[slot];
                        for (a, r) in acc.values.iter_mut().zip(row_ranges(batch, n, i)) {
                            *a = a.hull(&r);
                        }
                        acc.mult = MultBound::new(
                            acc.mult.lb.max(u64::from(mult.lb >= 1)),
                            acc.mult.bg.max(u64::from(mult.bg >= 1)),
                            acc.mult.ub.saturating_add(mult.ub),
                        );
                    }
                    None => {
                        index.insert(key, merged.len());
                        merged.push(ua_ranges::relation::AuTuple {
                            values: row_ranges(batch, n, i),
                            mult: MultBound::new(
                                u64::from(mult.lb >= 1),
                                u64::from(mult.bg >= 1),
                                mult.ub,
                            ),
                        });
                    }
                }
            }
        }
        let mut rel = AuRelation::new(stream.user.clone());
        for row in merged {
            rel.push(row);
        }
        AuStream::from_relation(&rel, self.batch_rows)
    }
}

/// Pick the densest [`TripleCol`] an aggregation column can use: a plain
/// reference whose `lb/bg/ub` columns are dense `Int` (resp. `Float`)
/// vectors in *every* batch gets a typed triple — the stream invariant
/// (canonical chunks) guarantees element-wise `lb ≤ bg ≤ ub`, the dense
/// invariant [`aggregate_cols`](ua_ranges::ops::aggregate_cols) requires.
/// Anything else (computed expressions, literals, mixed/nullable columns)
/// falls back to per-row ranges.
fn empty_triple(batches: &[ColumnBatch], n: usize, expr: &Expr, n_rows: usize) -> TripleCol {
    if let Expr::Col(c) = expr {
        let triple_is = |dense: fn(&ColumnVec) -> bool| {
            batches.iter().all(|b| {
                dense(b.column(*c)) && dense(b.column(n + c)) && dense(b.column(2 * n + c))
            })
        };
        if triple_is(|v| matches!(v, ColumnVec::Int(_))) {
            return TripleCol::Int {
                lb: Vec::with_capacity(n_rows),
                bg: Vec::with_capacity(n_rows),
                ub: Vec::with_capacity(n_rows),
            };
        }
        if triple_is(|v| matches!(v, ColumnVec::Float(_))) {
            return TripleCol::Float {
                lb: Vec::with_capacity(n_rows),
                bg: Vec::with_capacity(n_rows),
                ub: Vec::with_capacity(n_rows),
            };
        }
    }
    TripleCol::Rows(Vec::with_capacity(n_rows))
}

/// Append one batch's rows of one aggregation column: dense triples copy
/// the typed `lb/bg/ub` slices straight off the canonical chunk (the
/// layout puts `bg` at `c`, `lb` at `n + c`, `ub` at `2n + c`); row-backed
/// columns evaluate per row via [`expr_ranges`].
fn fill_triple(
    batch: &ColumnBatch,
    n: usize,
    expr: &Expr,
    bgv: &ColumnBatch,
    memo: &mut Option<Vec<Vec<RangeValue>>>,
    col: &mut TripleCol,
) -> Result<(), EngineError> {
    match col {
        TripleCol::Int { lb, bg, ub } => {
            let Expr::Col(c) = expr else {
                unreachable!("dense mode implies a plain reference")
            };
            let (ColumnVec::Int(b), ColumnVec::Int(l), ColumnVec::Int(u)) = (
                batch.column(*c),
                batch.column(n + c),
                batch.column(2 * n + c),
            ) else {
                unreachable!("dense mode checked every batch")
            };
            bg.extend_from_slice(b);
            lb.extend_from_slice(l);
            ub.extend_from_slice(u);
        }
        TripleCol::Float { lb, bg, ub } => {
            let Expr::Col(c) = expr else {
                unreachable!("dense mode implies a plain reference")
            };
            let (ColumnVec::Float(b), ColumnVec::Float(l), ColumnVec::Float(u)) = (
                batch.column(*c),
                batch.column(n + c),
                batch.column(2 * n + c),
            ) else {
                unreachable!("dense mode checked every batch")
            };
            bg.extend_from_slice(b);
            lb.extend_from_slice(l);
            ub.extend_from_slice(u);
        }
        TripleCol::Rows(rows) => rows.extend(expr_ranges(batch, n, expr, bgv, memo)?),
    }
    Ok(())
}

/// View an AU stream as a plain [`BatchStream`] over the flat schema —
/// what lets the deterministic columnar Sort/Top-K/Limit run unchanged:
/// batch-level labels are uniformly certain and multiplicities uniformly
/// 1 (the AU triples are data columns), and the flattened row layout *is*
/// the AU tie-break order.
fn flat_stream(stream: &AuStream) -> BatchStream {
    BatchStream {
        schema: stream.flat.clone(),
        batches: stream.batches.clone(),
    }
}

/// One batch of [`AuDriver::filter`] (pure per-batch function, safe to
/// run on the pool): `None` when no row survives.
fn filter_batch(
    batch: &ColumnBatch,
    bound: &Expr,
    user: &Schema,
    flat: &Schema,
    n: usize,
) -> Result<Option<ColumnBatch>, EngineError> {
    if batch.is_empty() {
        return Ok(None);
    }
    let bgv = bg_view(batch, user);
    let (bg_true, _) = truth_masks(bound, &bgv)?;
    let mut keep: Vec<u32> = Vec::new();
    let mut new_lb: Vec<Value> = Vec::new();
    let mut new_bg: Vec<Value> = Vec::new();
    for i in 0..batch.len() {
        let ranges = row_ranges(batch, n, i);
        let rt = truth_range(bound, &ranges);
        if !rt.possibly_true() {
            continue;
        }
        keep.push(i as u32);
        new_lb.push(Value::Int(if rt.certainly_true() {
            mult_at(batch, n, 0, i)
        } else {
            0
        }));
        new_bg.push(Value::Int(if bg_true.get(i) {
            mult_at(batch, n, 1, i)
        } else {
            0
        }));
    }
    if keep.is_empty() {
        return Ok(None);
    }
    let gathered = batch.gather(&keep);
    let mut columns = gathered.columns().to_vec();
    columns[3 * n] = ColumnVec::from_values(new_lb.iter());
    columns[3 * n + 1] = ColumnVec::from_values(new_bg.iter());
    Ok(Some(ColumnBatch::new(
        flat.clone(),
        columns,
        gathered.labels().clone(),
        Arc::new(gathered.mults().to_vec()),
    )))
}

/// One batch of [`AuDriver::map`] (pure per-batch function, safe to run
/// on the pool).
fn map_batch(
    batch: &ColumnBatch,
    bound: &[Expr],
    user: &Schema,
    out_flat: &Schema,
    n_in: usize,
) -> Result<ColumnBatch, EngineError> {
    let len = batch.len();
    let n_out = bound.len();
    let bgv = bg_view(batch, user);
    let bg_cols: Vec<ColumnVec> = bound
        .iter()
        .map(|e| Ok(eval_expr(e, &bgv)?.into_column(len)))
        .collect::<Result<_, EngineError>>()?;
    // Per-row range assembly is shared across computed expressions.
    let mut memo: Option<Vec<Vec<RangeValue>>> = None;
    let mut lb_cols: Vec<ColumnVec> = Vec::with_capacity(n_out);
    let mut ub_cols: Vec<ColumnVec> = Vec::with_capacity(n_out);
    for (k, e) in bound.iter().enumerate() {
        match e {
            Expr::Col(i) => {
                lb_cols.push(batch.column(n_in + i).clone());
                ub_cols.push(batch.column(2 * n_in + i).clone());
            }
            Expr::Lit(v) => {
                let (lb, _, ub) = range_parts(&RangeValue::point(v.clone()));
                lb_cols.push(ColumnVec::broadcast(&lb, len));
                ub_cols.push(ColumnVec::broadcast(&ub, len));
            }
            other => {
                let rows = memo
                    .get_or_insert_with(|| (0..len).map(|i| row_ranges(batch, n_in, i)).collect());
                let mut lbs: Vec<Value> = Vec::with_capacity(len);
                let mut ubs: Vec<Value> = Vec::with_capacity(len);
                for (i, ranges) in rows.iter().enumerate() {
                    let approx = ua_ranges::approx_range(other, ranges);
                    // Re-anchor on the exact bg — the same `reanchor` step
                    // `eval_range` performs, so a definite NULL projected
                    // through a computed expression stays definite.
                    let r = reanchor(&approx, bg_cols[k].value(i));
                    let (lb, _, ub) = range_parts(&r);
                    lbs.push(lb);
                    ubs.push(ub);
                }
                lb_cols.push(ColumnVec::from_values(lbs.iter()));
                ub_cols.push(ColumnVec::from_values(ubs.iter()));
            }
        }
    }
    let mut out_cols: Vec<ColumnVec> = Vec::with_capacity(3 * n_out + 3);
    out_cols.extend(bg_cols);
    out_cols.extend(lb_cols);
    out_cols.extend(ub_cols);
    out_cols.push(batch.column(3 * n_in).clone());
    out_cols.push(batch.column(3 * n_in + 1).clone());
    out_cols.push(batch.column(3 * n_in + 2).clone());
    Ok(ColumnBatch::new(
        out_flat.clone(),
        out_cols,
        batch.labels().clone(),
        Arc::new(batch.mults().to_vec()),
    ))
}

/// The AU telemetry extras for a finished operator span — the same
/// bound-precision profile the row interpreter records
/// ([`ua_ranges::WidthSummary`]: which operator widened bounds toward ⊤,
/// and by how much) plus the materialized stream's logical bytes, charged
/// against the query memory accumulator. Every AU operator materializes
/// its whole output, so the profile observes exactly the operator result.
fn au_span_extras(stream: &AuStream, node: &mut OperatorStats) {
    let n = stream.user.arity();
    let mut ws = ua_ranges::WidthSummary::new();
    for b in &stream.batches {
        for i in 0..b.len() {
            ws.observe(&ua_ranges::relation::AuTuple {
                values: row_ranges(b, n, i),
                mult: mult_bound_at(b, n, i),
            });
        }
    }
    node.push_extra("certain_rows", ws.certain_rows);
    node.push_extra("top_attrs_permille", ws.top_attr_permille());
    node.push_extra("rel_width_permille", ws.mean_rel_width_permille());
    node.push_extra("mult_spread", ws.mult_spread);
    let bytes = au_stream_mem_bytes(stream);
    let mut mem = ua_obs::MemTracker::new();
    mem.alloc(bytes);
    node.push_extra("mem_bytes", bytes);
}

/// Logical bytes of a materialized AU stream — the columnar counterpart
/// of the row engine's `au_relation_mem_bytes` convention: 24 bytes per
/// multiplicity triple plus the attribute triple columns (bg, lb, ub —
/// one 16-byte slot per cell plus string payloads). Shape-derived and
/// batch-size-independent, so the figure matches across thread counts.
fn au_stream_mem_bytes(stream: &AuStream) -> u64 {
    let n = stream.user.arity();
    stream
        .batches
        .iter()
        .map(|b| {
            24 * b.len() as u64
                + (0..3 * n)
                    .map(|c| crate::exec::column_mem_bytes(b.column(c)))
                    .sum::<u64>()
        })
        .sum()
}

/// Execute an AU plan with the vectorized engine, returning the flattened
/// encoded result table — the hook `ua_engine`'s `ExecMode::Vectorized`
/// AU dispatch calls. `opts.batch_rows` sizes the morsels; `opts.threads`
/// sizes the morsel pool the per-batch stages (scan chunking, σ, π, final
/// materialization) map on — batch order is deterministic, so results are
/// byte-identical across thread counts.
pub fn execute_au_vectorized_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<Table, EngineError> {
    let batch_rows = if opts.batch_rows == 0 {
        crate::columnar::DEFAULT_BATCH_ROWS
    } else {
        opts.batch_rows
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(crate::exec::resolve_threads(opts.threads))
        .build()
        .expect("shim pool construction is infallible");
    pool.set_instrumented(opts.collect_stats || opts.collect_trace);
    pool.set_spans_recorded(opts.collect_trace);
    if opts.collect_stats {
        ua_obs::mem_query_start();
    }
    let driver = AuDriver {
        catalog,
        batch_rows,
        collect_stats: opts.collect_stats,
        collect_trace: opts.collect_trace,
        pool,
    };
    let (stream, stats) = match driver.phase("execute", || driver.stream_traced(plan)) {
        Ok(ok) => ok,
        Err(e) => {
            crate::exec::deposit_query_stats(
                &driver.pool,
                driver.collect_trace,
                driver
                    .collect_stats
                    .then(|| crate::exec::error_root(plan, catalog)),
                "au",
            );
            return Err(e);
        }
    };
    let rows = driver.phase("merge", || {
        let parts: Vec<Vec<Tuple>> = driver
            .pool
            .map_in_order(stream.batches.iter().collect::<Vec<_>>(), |_, b| {
                (0..b.len()).map(|i| b.row(i)).collect()
            });
        let mut rows: Vec<Tuple> = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for p in parts {
            rows.extend(p);
        }
        rows
    });
    crate::exec::deposit_query_stats(&driver.pool, driver.collect_trace, stats, "au");
    Ok(Table::from_rows(stream.flat, rows))
}

/// [`execute_au_vectorized_opts`] with default options.
pub fn execute_au_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_au_vectorized_opts(plan, catalog, ExecOptions::default())
}

/// Whether a table in the catalog is AU-encoded (flattened layout).
pub fn is_au_table(table: &Table) -> bool {
    au_base_schema(table.schema()).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;
    use ua_engine::UaSession;

    #[test]
    fn vectorized_au_matches_row_au() {
        crate::install();
        let session = UaSession::new();
        session.register_table(
            "t",
            Table::from_rows(
                Schema::qualified("t", ["g", "v", "p"]),
                vec![
                    tuple![1i64, 10i64, 1.0],
                    tuple![1i64, 20i64, 0.7],
                    tuple![2i64, 30i64, 0.4],
                    tuple![2i64, 40i64, 1.0],
                ],
            ),
        );
        for sql in [
            "SELECT g, v FROM t IS TI WITH PROBABILITY (p) x WHERE x.v >= 15",
            "SELECT g, count(*) AS n, sum(v) AS s FROM t IS TI WITH PROBABILITY (p) x GROUP BY g",
            "SELECT DISTINCT g FROM t IS TI WITH PROBABILITY (p) x",
            "SELECT g, v + 1 AS w FROM t IS TI WITH PROBABILITY (p) x ORDER BY w DESC LIMIT 2",
            "SELECT g, min(v) AS lo, max(v) AS hi, avg(v) AS m FROM t IS TI WITH PROBABILITY (p) x GROUP BY g",
            // Non-equi and keyless joins exercise the block-nested-loop
            // against the row engine's monolithic `au_binary` nested loop.
            "SELECT x.v, y.v FROM t IS TI WITH PROBABILITY (p) x, \
             t IS TI WITH PROBABILITY (p) y WHERE x.v < y.v",
            "SELECT x.g, y.g FROM t IS TI WITH PROBABILITY (p) x, \
             t IS TI WITH PROBABILITY (p) y",
        ] {
            let row = {
                session.set_exec_mode(ua_engine::ExecMode::Row);
                session
                    .query_au(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
            };
            let vec = {
                session.set_exec_mode(ua_engine::ExecMode::Vectorized);
                session
                    .query_au(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
            };
            assert_eq!(row.table.schema(), vec.table.schema(), "{sql}");
            assert_eq!(row.table.rows(), vec.table.rows(), "{sql}");
        }
    }

    #[test]
    fn au_batch_native_ops_do_not_bump_fallback_counters() {
        crate::install();
        let session = UaSession::new();
        session.register_table(
            "s",
            Table::from_rows(
                Schema::qualified("s", ["k", "v", "p"]),
                vec![
                    tuple![1i64, 5i64, 0.9],
                    tuple![2i64, 6i64, 1.0],
                    tuple![2i64, 7i64, 0.5],
                ],
            ),
        );
        session.register_table(
            "d",
            Table::from_rows(
                Schema::qualified("d", ["k", "name", "q"]),
                vec![tuple![1i64, "one", 1.0], tuple![2i64, "two", 0.8]],
            ),
        );
        session.set_exec_mode(ua_engine::ExecMode::Vectorized);
        let counters = [
            "au.vec.fallback.join",
            "au.vec.fallback.hash_join",
            "au.vec.fallback.aggregate",
            "au.vec.fallback.sort",
            "au.vec.fallback.limit",
            "au.vec.fallback.top_k",
            "au.vec.fallback.union_all",
            "au.vec.fallback.distinct",
        ];
        let before: Vec<u64> = counters
            .iter()
            .map(|c| ua_obs::global().counter(c).get())
            .collect();
        for sql in [
            "SELECT x.k, sum(x.v) AS s FROM s IS TI WITH PROBABILITY (p) x GROUP BY x.k",
            "SELECT x.v, y.name FROM s IS TI WITH PROBABILITY (p) x, \
             d IS TI WITH PROBABILITY (q) y WHERE x.k = y.k",
            "SELECT x.v FROM s IS TI WITH PROBABILITY (p) x ORDER BY x.v DESC LIMIT 2",
            "SELECT x.k FROM s IS TI WITH PROBABILITY (p) x WHERE x.v < 6 \
             UNION ALL SELECT x.k FROM s IS TI WITH PROBABILITY (p) x WHERE x.v >= 6",
            "SELECT DISTINCT x.k FROM s IS TI WITH PROBABILITY (p) x",
        ] {
            session
                .query_au(sql)
                .unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
        let after: Vec<u64> = counters
            .iter()
            .map(|c| ua_obs::global().counter(c).get())
            .collect();
        assert_eq!(
            before, after,
            "batch-native AU operators must not fall back"
        );
    }
}
