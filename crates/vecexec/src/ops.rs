//! Vectorized relational operators over [`BatchStream`]s.
//!
//! Operators are order-preserving replicas of the row executor's operators
//! (same hash-join strategy choice, same first-seen orders), so the two
//! engines produce identical tables — rows, labels *and* row order — which
//! the differential tests assert. UA labels flow through as bitmaps:
//! filters/projections gather them, joins AND them (`min(C₁, C₂)` over
//! `{0,1}` markers), unions concatenate them.

use crate::bitmap::Bitmap;
use crate::columnar::{BatchStream, ColumnBatch, ColumnVec};
use crate::kernels::{eval_expr, eval_selected, truth_masks, Evaluated};
use rayon::ThreadPool;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;
use ua_data::algebra::{extract_equi_keys, ProjColumn};
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, F64};
use ua_data::{FxHashMap, FxHashSet, FxHasher};
use ua_engine::plan::{AggExpr, SortOrder};
use ua_engine::{AggState, EngineError};

/// The deterministic partitioning hash for parallel pipeline breakers.
/// Partition choice must agree between a hash-join build and its probes
/// (and nothing else), so any fixed function works; Fx keeps it cheap.
fn partition_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// Builds below this row count stay single-partition: the scatter +
/// per-partition map setup costs more than it saves. Output bytes are
/// unaffected either way — partitioning only changes *where* a key's
/// entry list lives, never its contents or order.
const PARALLEL_BUILD_MIN_ROWS: usize = 4096;

/// σ — keep rows whose (bound) predicate is certainly true. Delegates to
/// the same selection kernel the morsel pipeline's filter stage consumes,
/// so standalone and pipelined filtering cannot diverge.
pub fn filter(input: BatchStream, predicate: &Expr) -> Result<BatchStream, EngineError> {
    let bound = predicate.bind(&input.schema).map_err(EngineError::Expr)?;
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in input.batches {
        if batch.is_empty() {
            continue;
        }
        match crate::kernels::filter_selection(&bound, &batch)? {
            None => batches.push(batch),
            Some(sel) if sel.is_empty() => {}
            Some(sel) => batches.push(batch.gather(&sel)),
        }
    }
    Ok(BatchStream {
        schema: input.schema,
        batches,
    })
}

/// π — evaluate output expressions per batch; labels and multiplicities are
/// carried through unchanged (the `⟦·⟧_UA` projection rule keeps each row
/// copy's own marker). Delegates to the pipeline's projection kernel.
pub fn project(input: BatchStream, columns: &[ProjColumn]) -> Result<BatchStream, EngineError> {
    let bound: Vec<Expr> = columns
        .iter()
        .map(|c| c.expr.bind(&input.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let out_schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
    let batches = input
        .batches
        .iter()
        .map(|batch| crate::kernels::project_selected(batch, None, &bound, &out_schema))
        .collect::<Result<_, _>>()?;
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// Bag union — batches concatenate (annotations add by rows standing next
/// to each other; the left schema wins, as in the row engine).
pub fn union_all(left: BatchStream, right: BatchStream) -> Result<BatchStream, EngineError> {
    left.schema
        .check_union_compatible(&right.schema)
        .map_err(EngineError::Schema)?;
    let mut batches = left.batches;
    // Right-side batches adopt the left schema so downstream binding matches
    // the row engine (which keeps the left schema for the union output).
    for b in right.batches {
        batches.push(b.with_schema(left.schema.clone()));
    }
    Ok(BatchStream {
        schema: left.schema,
        batches,
    })
}

/// Bag difference, columnar: right-side multiplicities accumulate into a
/// per-key budget, then left batches stream through it in order. Matching
/// follows `ua_engine::except_table` exactly — IS-NOT-DISTINCT keys
/// ([`Value::join_key`] over every column, NULL matches NULL), earliest-
/// first removal for `all`, first unmatched occurrence for distinct — so
/// the two engines emit byte-identical rows in the same order.
///
/// `⟦·⟧_UA` difference: a UA encoding carries no upper bound on the right
/// side, so no output row's presence can be certified — every output copy
/// is labeled uncertain (label `0`). Deterministic runs drop labels at
/// materialization, so the rule costs nothing there.
pub fn except(
    left: BatchStream,
    right: BatchStream,
    all: bool,
) -> Result<BatchStream, EngineError> {
    left.schema
        .check_union_compatible(&right.schema)
        .map_err(EngineError::Schema)?;
    let arity = left.schema.arity();
    let key_at = |b: &ColumnBatch, i: usize| -> Tuple {
        (0..arity)
            .map(|c| b.column(c).value(i).join_key())
            .collect()
    };
    let mut budget: FxHashMap<Tuple, u64> = FxHashMap::default();
    for b in &right.batches {
        for i in 0..b.len() {
            let m = b.mults()[i];
            // Zero-multiplicity rows expand to no copies — they are not
            // occurrences and must not cancel (or match) anything.
            if m > 0 {
                *budget.entry(key_at(b, i)).or_insert(0) += m;
            }
        }
    }
    let mut seen: FxHashSet<Tuple> = FxHashSet::default();
    let mut batches = Vec::new();
    for b in &left.batches {
        let mut keep: Vec<u32> = Vec::new();
        let mut mults: Vec<u64> = Vec::new();
        for i in 0..b.len() {
            let m = b.mults()[i];
            if m == 0 {
                continue;
            }
            let key = key_at(b, i);
            if all {
                let out = match budget.get_mut(&key) {
                    Some(n) => {
                        let take = (*n).min(m);
                        *n -= take;
                        m - take
                    }
                    None => m,
                };
                if out > 0 {
                    keep.push(i as u32);
                    mults.push(out);
                }
            } else {
                if budget.contains_key(&key) {
                    continue;
                }
                if seen.insert(key) {
                    keep.push(i as u32);
                    mults.push(1);
                }
            }
        }
        if keep.is_empty() {
            continue;
        }
        let g = b.gather(&keep);
        batches.push(ColumnBatch::new(
            g.schema().clone(),
            g.columns().to_vec(),
            Bitmap::filled(keep.len(), false),
            Arc::new(mults),
        ));
    }
    Ok(BatchStream {
        schema: left.schema,
        batches,
    })
}

/// Left/right outer θ-join, columnar: the preserved side streams as the
/// probe, the other side builds the same partitioned [`JoinIndex`] an
/// inner hash join uses (SQL join equality — NULL keys never enter the
/// index or match out of it), and probe misses pad with NULLs by routing
/// them at an extra all-NULL row appended to the build chunk — one gather
/// assembles matches and pads in preserved-major order. Output columns are
/// always `left ++ right`; row order, padding and residual treatment are
/// byte-for-byte `ua_engine::outer_join_stream`'s.
///
/// UA labels: matched rows AND their sides' labels (the `⟦·⟧_UA` join
/// rule); pad rows are never certain — the pad row's label bit is `0`, so
/// the AND yields `0` without a special case.
pub fn outer_join(
    left: BatchStream,
    right: BatchStream,
    predicate: Option<&Expr>,
    left_kind: bool,
    pool: Option<&ThreadPool>,
) -> Result<BatchStream, EngineError> {
    let out_schema = left.schema.concat(&right.schema);
    let left_arity = left.schema.arity();
    let bound = predicate
        .map(|p| p.bind(&out_schema))
        .transpose()
        .map_err(EngineError::Expr)?;
    let (outer, inner) = if left_kind {
        (left, right)
    } else {
        (right, left)
    };
    let chunk = inner.into_single_chunk();
    let pad_idx = chunk.len() as u32;
    // The build chunk plus one all-NULL pad row (label 0, multiplicity 1):
    // gathering a probe miss at `pad_idx` produces exactly the row engine's
    // NULL-padded output — values NULL, label uncertain, the preserved
    // row's multiplicity.
    let ext = {
        let null_col = ColumnVec::broadcast(&Value::Null, 1);
        let columns: Vec<ColumnVec> = chunk
            .columns()
            .iter()
            .map(|c| ColumnVec::concat(&[c, &null_col]))
            .collect();
        let mut labels = chunk.labels().clone();
        labels.push(false);
        let mut mults = chunk.mults().to_vec();
        mults.push(1);
        ColumnBatch::new(chunk.schema().clone(), columns, labels, Arc::new(mults))
    };

    // Strategy split mirrors `outer_join_stream`: equi-keys index the
    // non-preserved side (residual on matches), anything else nested-loops.
    let mut index: Option<JoinIndex> = None;
    let mut probe_exprs: Vec<Expr> = Vec::new();
    let mut pair_pred: Option<&Expr> = None;
    let mut key_residual: Option<Expr> = None;
    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, left_arity);
        if keys.is_empty() {
            pair_pred = Some(pred);
        } else {
            let (build_keys, probes): (Vec<Expr>, Vec<Expr>) = if left_kind {
                (
                    keys.iter().map(|k| k.right.clone()).collect(),
                    keys.iter().map(|k| k.left.clone()).collect(),
                )
            } else {
                (
                    keys.iter().map(|k| k.left.clone()).collect(),
                    keys.iter().map(|k| k.right.clone()).collect(),
                )
            };
            let key_cols: Vec<Evaluated> = build_keys
                .iter()
                .map(|e| eval_expr(e, &chunk))
                .collect::<Result<_, _>>()?;
            index = Some(build_index(&key_cols, chunk.len(), pool));
            probe_exprs = probes;
            if !residual.is_empty() {
                key_residual = Some(Expr::conjunction(residual));
            }
        }
    }
    let pair_pred = pair_pred.or(key_residual.as_ref());

    let mut batches = Vec::new();
    for obatch in &outer.batches {
        if obatch.is_empty() {
            continue;
        }
        // The nested path materializes candidate cross products in bounded
        // pieces (whole probe rows per piece, so pad grouping stays local);
        // the indexed path's candidates are bounded by actual key matches.
        const MAX_PAIRS_PER_PIECE: usize = 1 << 16;
        let piece_rows = match &index {
            Some(_) => obatch.len(),
            None => (MAX_PAIRS_PER_PIECE / chunk.len().max(1)).max(1),
        };
        let mut start = 0u32;
        while (start as usize) < obatch.len() {
            let end = ((start as usize + piece_rows).min(obatch.len())) as u32;
            // Candidate pairs in probe-major order (build-scan order within
            // one probe row) — index lookups or the piece's cross product.
            let (pidx, bidx) = match &index {
                Some(index) => {
                    let probe_cols: Vec<Evaluated> = probe_exprs
                        .iter()
                        .map(|e| eval_expr(e, obatch))
                        .collect::<Result<_, _>>()?;
                    probe_index(index, &probe_cols, obatch.len())
                }
                None => {
                    let cap = (end - start) as usize * chunk.len();
                    let mut pidx = Vec::with_capacity(cap);
                    let mut bidx = Vec::with_capacity(cap);
                    for i in start..end {
                        for j in 0..chunk.len() as u32 {
                            pidx.push(i);
                            bidx.push(j);
                        }
                    }
                    (pidx, bidx)
                }
            };
            // Which candidate pairs survive the (residual) predicate.
            // Failing matches count as no-match: a probe row whose every
            // candidate fails still pads.
            let survivors: Option<Bitmap> = match pair_pred {
                Some(pred) if !pidx.is_empty() => {
                    let cand = if left_kind {
                        join_gather(obatch, &chunk, &pidx, &bidx, &out_schema)
                    } else {
                        join_gather(&chunk, obatch, &bidx, &pidx, &out_schema)
                    };
                    let (t, _f) = truth_masks(pred, &cand)?;
                    Some(t)
                }
                _ => None,
            };
            let mut oidx: Vec<u32> = Vec::new();
            let mut iidx: Vec<u32> = Vec::new();
            let mut p = 0usize;
            for i in start..end {
                let mut matched = false;
                while p < pidx.len() && pidx[p] < i {
                    p += 1;
                }
                while p < pidx.len() && pidx[p] == i {
                    if survivors.as_ref().is_none_or(|t| t.get(p)) {
                        matched = true;
                        oidx.push(i);
                        iidx.push(bidx[p]);
                    }
                    p += 1;
                }
                if !matched {
                    oidx.push(i);
                    iidx.push(pad_idx);
                }
            }
            let joined = if left_kind {
                join_gather(obatch, &ext, &oidx, &iidx, &out_schema)
            } else {
                join_gather(&ext, obatch, &iidx, &oidx, &out_schema)
            };
            if !joined.is_empty() {
                batches.push(joined);
            }
            start = end;
        }
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// The hash-join build index, partitioned by key hash. Each key lives in
/// exactly the partition `partition_hash(key) % parts` — every one of its
/// build-row ids in that partition's map, in build-scan order — so a
/// lookup routed by the same hash sees exactly the entry list a
/// single-partition build would hold. Partition count therefore never
/// affects probe results; it only decides how the build parallelizes.
enum JoinIndex {
    /// Single integer equi-key: dense i64 hash tables.
    Int(Vec<FxHashMap<i64, Vec<u32>>>),
    /// General composite key.
    Tuple(Vec<FxHashMap<Tuple, Vec<u32>>>),
}

/// Route a key's hash to its owning partition map.
fn owning_part<K>(
    parts: &[FxHashMap<K, Vec<u32>>],
    hash: impl FnOnce() -> u64,
) -> &FxHashMap<K, Vec<u32>> {
    if parts.len() == 1 {
        &parts[0]
    } else {
        &parts[(hash() % parts.len() as u64) as usize]
    }
}

/// Prepared state of a streaming hash-join probe: the materialized build
/// side, its hash index, and the bound probe-key/residual expressions. The
/// morsel pipeline builds this once (serial) and then probes batch by
/// batch — probing is read-only, so morsels probe in parallel — optionally
/// consuming a filter's selection vector in the same pass (the fused
/// σ→probe kernel: key expressions evaluate over filter survivors only,
/// and the join gathers straight from the *original* batch through the
/// mapped-back selection, one gather instead of two).
pub struct ProbeState {
    chunk: ColumnBatch,
    index: JoinIndex,
    probe_keys: Vec<Expr>,
    residual: Option<Expr>,
    build_left: bool,
    out_schema: Schema,
}

impl ProbeState {
    /// Assemble probe state from a fully-executed build stream. All
    /// expressions arrive bound: `build_keys` against the build chunk,
    /// `probe_keys` against the probe-side schema, `residual` against
    /// `out_schema` (always `left ++ right` in plan order, regardless of
    /// which side builds).
    pub fn new(
        build: BatchStream,
        build_keys: &[Expr],
        probe_keys: Vec<Expr>,
        residual: Option<Expr>,
        build_left: bool,
        out_schema: Schema,
        pool: Option<&ThreadPool>,
    ) -> Result<ProbeState, EngineError> {
        let chunk = build.into_single_chunk();
        let key_cols: Vec<Evaluated> = build_keys
            .iter()
            .map(|e| eval_expr(e, &chunk))
            .collect::<Result<_, _>>()?;
        let index = build_index(&key_cols, chunk.len(), pool);
        Ok(ProbeState {
            chunk,
            index,
            probe_keys,
            residual,
            build_left,
            out_schema,
        })
    }

    /// The joined output schema (`left ++ right`).
    pub fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Probe one batch, restricted to the rows at `sel` when given (`None`
    /// = every row). Output row order is probe-scan order with build-scan
    /// order within one probe row — the row engine's contract — and `sel`
    /// vectors are ascending, so fused probing emits exactly the order a
    /// separate filter-then-probe would.
    pub fn probe(
        &self,
        batch: &ColumnBatch,
        sel: Option<&[u32]>,
    ) -> Result<Option<ColumnBatch>, EngineError> {
        let mut gathered: Option<ColumnBatch> = None;
        let probe_cols: Vec<Evaluated> = self
            .probe_keys
            .iter()
            .map(|e| eval_selected(e, batch, sel, &mut gathered))
            .collect::<Result<_, _>>()?;
        let rows = sel.map_or(batch.len(), <[u32]>::len);
        let (mut pidx, bidx) = probe_index(&self.index, &probe_cols, rows);
        if pidx.is_empty() {
            return Ok(None);
        }
        if let Some(sel) = sel {
            // Map selection-local probe positions back to the original
            // batch so the join gathers source rows directly.
            for p in &mut pidx {
                *p = sel[*p as usize];
            }
        }
        let (lsrc, rsrc, lidx, ridx): (&ColumnBatch, &ColumnBatch, &[u32], &[u32]) =
            if self.build_left {
                (&self.chunk, batch, &bidx, &pidx)
            } else {
                (batch, &self.chunk, &pidx, &bidx)
            };
        let joined = join_gather(lsrc, rsrc, lidx, ridx, &self.out_schema);
        let joined = match &self.residual {
            Some(pred) => apply_residual(joined, pred)?,
            None => joined,
        };
        Ok((!joined.is_empty()).then_some(joined))
    }
}

/// The θ-join strategy decision — THE single copy of it: the pipeline
/// driver's `Theta` stage and the standalone [`join`] operator both route
/// through here, so the two paths can never make different choices. With
/// extractable equi-keys in the bound predicate, the right side builds a
/// [`ProbeState`] (residual kept); otherwise the right side chunks for
/// nested loops.
pub(crate) enum ThetaStrategy {
    /// Hash-probe the left side against the indexed right side.
    Hash(ProbeState),
    /// No equi-keys: nested loops against the right chunk.
    NestedLoop(ColumnBatch),
}

/// Decide the strategy for a θ-join of a streamed left side against
/// `right`. `bound` is the predicate bound against `out_schema`
/// (`left ++ right`), as [`extract_equi_keys`] expects.
pub(crate) fn theta_strategy(
    right: BatchStream,
    bound: Option<&Expr>,
    left_arity: usize,
    out_schema: &Schema,
    pool: Option<&ThreadPool>,
) -> Result<ThetaStrategy, EngineError> {
    if let Some(pred) = bound {
        let (keys, residual) = extract_equi_keys(pred, left_arity);
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            let build_keys: Vec<Expr> = keys.iter().map(|k| k.right.clone()).collect();
            let probe_keys: Vec<Expr> = keys.iter().map(|k| k.left.clone()).collect();
            return Ok(ThetaStrategy::Hash(ProbeState::new(
                right,
                &build_keys,
                probe_keys,
                Some(residual),
                false,
                out_schema.clone(),
                pool,
            )?));
        }
    }
    Ok(ThetaStrategy::NestedLoop(right.into_single_chunk()))
}

/// Nested-loop pieces of one left batch against the whole right chunk: the
/// cross product materializes in bounded pieces (a few left rows at a
/// time) so a large θ-join never holds the full product in memory; slicing
/// on the left preserves the row engine's output order. The full predicate
/// filters each piece (matching the row engine's nested-loop path).
pub(crate) fn nested_loop_batch(
    lbatch: &ColumnBatch,
    right_chunk: &ColumnBatch,
    bound: Option<&Expr>,
    out_schema: &Schema,
    out: &mut Vec<ColumnBatch>,
) -> Result<(), EngineError> {
    const MAX_PAIRS_PER_PIECE: usize = 1 << 16;
    if lbatch.is_empty() || right_chunk.is_empty() {
        return Ok(());
    }
    let rows_per_piece = (MAX_PAIRS_PER_PIECE / right_chunk.len()).max(1);
    let mut start = 0u32;
    while (start as usize) < lbatch.len() {
        let end = ((start as usize + rows_per_piece).min(lbatch.len())) as u32;
        let mut lidx: Vec<u32> = Vec::new();
        let mut ridx: Vec<u32> = Vec::new();
        for i in start..end {
            for j in 0..right_chunk.len() as u32 {
                lidx.push(i);
                ridx.push(j);
            }
        }
        let joined = join_gather(lbatch, right_chunk, &lidx, &ridx, out_schema);
        let joined = match bound {
            Some(pred) => apply_residual(joined, pred)?,
            None => joined,
        };
        if !joined.is_empty() {
            out.push(joined);
        }
        start = end;
    }
    Ok(())
}

/// θ-join. Strategy mirrors the row executor exactly: extract equi-keys
/// from the bound predicate, hash-join on them with the residual applied to
/// matches; fall back to nested loops otherwise. The probe side streams
/// left batches in order and the build side keeps per-key row ids in scan
/// order, so the output row order equals the row engine's.
pub fn join(
    left: BatchStream,
    right: BatchStream,
    predicate: Option<&Expr>,
) -> Result<BatchStream, EngineError> {
    let out_schema = left.schema.concat(&right.schema);
    let left_arity = left.schema.arity();
    let bound = match predicate {
        Some(p) => Some(p.bind(&out_schema).map_err(EngineError::Expr)?),
        None => None,
    };
    let mut batches = Vec::with_capacity(left.batches.len());
    match theta_strategy(right, bound.as_ref(), left_arity, &out_schema, None)? {
        ThetaStrategy::Hash(state) => {
            for lbatch in &left.batches {
                if let Some(joined) = state.probe(lbatch, None)? {
                    batches.push(joined);
                }
            }
        }
        ThetaStrategy::NestedLoop(right_chunk) => {
            for lbatch in &left.batches {
                nested_loop_batch(
                    lbatch,
                    &right_chunk,
                    bound.as_ref(),
                    &out_schema,
                    &mut batches,
                )?;
            }
        }
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// Optimizer-planned hash join ([`ua_engine::plan::Plan::HashJoin`]).
///
/// Key expressions are per-side (left against the left schema, right
/// against the right schema); `build_left` picks the hash-table side. Row
/// order replicates the row executor exactly: probe-side scan order, with
/// build-side scan order within one probe row. Output columns are always
/// `left ++ right` regardless of build side; labels AND, multiplicities
/// multiply (via [`join_gather`]).
pub fn hash_join(
    left: BatchStream,
    right: BatchStream,
    keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    build_left: bool,
) -> Result<BatchStream, EngineError> {
    let left_schema = left.schema.clone();
    let right_schema = right.schema.clone();
    let out_schema = left_schema.concat(&right_schema);
    let (build_stream, probe_stream) = if build_left {
        (left, right)
    } else {
        (right, left)
    };
    let state = hash_join_probe_state(
        build_stream,
        &left_schema,
        &right_schema,
        keys,
        residual,
        build_left,
        None,
    )?;
    let mut batches = Vec::with_capacity(probe_stream.batches.len());
    for pbatch in &probe_stream.batches {
        if let Some(joined) = state.probe(pbatch, None)? {
            batches.push(joined);
        }
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// Bind a [`ua_engine::plan::Plan::HashJoin`]'s per-side expressions and
/// build its [`ProbeState`] from the already-executed build stream
/// (`build` is the plan's left input when `build_left`, its right input
/// otherwise; the probe side stays streamed).
pub fn hash_join_probe_state(
    build: BatchStream,
    left_schema: &Schema,
    right_schema: &Schema,
    keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    build_left: bool,
    pool: Option<&ThreadPool>,
) -> Result<ProbeState, EngineError> {
    let out_schema = left_schema.concat(right_schema);
    let lkeys: Vec<Expr> = keys
        .iter()
        .map(|(e, _)| e.bind(left_schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let rkeys: Vec<Expr> = keys
        .iter()
        .map(|(_, e)| e.bind(right_schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let residual = residual
        .map(|e| e.bind(&out_schema))
        .transpose()
        .map_err(EngineError::Expr)?;
    let (build_keys, probe_keys) = if build_left {
        (lkeys, rkeys)
    } else {
        (rkeys, lkeys)
    };
    ProbeState::new(
        build,
        &build_keys,
        probe_keys,
        residual,
        build_left,
        out_schema,
        pool,
    )
}

/// How many build partitions a pool (if any) warrants for `rows` rows.
fn build_partitions(rows: usize, pool: Option<&ThreadPool>) -> usize {
    match pool {
        Some(p) if rows >= PARALLEL_BUILD_MIN_ROWS => p.current_num_threads().max(1),
        _ => 1,
    }
}

/// Scatter row ranges into per-partition `(row, key)` lists, then build
/// each partition's map on its own worker. Rows scatter in scan order and
/// ranges concatenate in order, so every per-key row-id list comes out
/// ascending — exactly the single-partition build's list for that key.
fn build_partitioned<K: Hash + Eq + Send>(
    rows: usize,
    parts: usize,
    pool: &ThreadPool,
    key_of: impl Fn(usize) -> Option<K> + Sync,
) -> Vec<FxHashMap<K, Vec<u32>>> {
    let chunk = rows.div_ceil(parts).max(1);
    let ranges: Vec<std::ops::Range<usize>> = (0..rows)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(rows))
        .collect();
    let scattered: Vec<Vec<Vec<(u32, K)>>> = pool.map_build(ranges, |_, range| {
        let mut lists: Vec<Vec<(u32, K)>> = (0..parts).map(|_| Vec::new()).collect();
        for j in range {
            if let Some(key) = key_of(j) {
                let p = (partition_hash(&key) % parts as u64) as usize;
                lists[p].push((j as u32, key));
            }
        }
        lists
    });
    let mut per_part: Vec<Vec<(u32, K)>> = (0..parts).map(|_| Vec::new()).collect();
    for range_lists in scattered {
        for (acc, mut list) in per_part.iter_mut().zip(range_lists) {
            acc.append(&mut list);
        }
    }
    pool.map_build(per_part, |_, entries| {
        let mut map: FxHashMap<K, Vec<u32>> = FxHashMap::default();
        for (j, key) in entries {
            map.entry(key).or_default().push(j);
        }
        map
    })
}

fn build_index(key_cols: &[Evaluated], rows: usize, pool: Option<&ThreadPool>) -> JoinIndex {
    let parts = build_partitions(rows, pool);
    // Fast path: one integer key column.
    if let [Evaluated::Col(ColumnVec::Int(vals))] = key_cols {
        if parts > 1 {
            let pool = pool.expect("parts > 1 implies a pool");
            return JoinIndex::Int(build_partitioned(rows, parts, pool, |j| Some(vals[j])));
        }
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for (j, &v) in vals.iter().enumerate() {
            map.entry(v).or_default().push(j as u32);
        }
        return JoinIndex::Int(vec![map]);
    }
    let key_at = |j: usize| -> Option<Tuple> {
        let key: Tuple = key_cols.iter().map(|c| c.value_at(j).join_key()).collect();
        // SQL NULL keys never join; labeled nulls join themselves.
        if key.has_null() {
            None
        } else {
            Some(key)
        }
    };
    if parts > 1 {
        let pool = pool.expect("parts > 1 implies a pool");
        return JoinIndex::Tuple(build_partitioned(rows, parts, pool, key_at));
    }
    let mut map: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
    for j in 0..rows {
        if let Some(key) = key_at(j) {
            map.entry(key).or_default().push(j as u32);
        }
    }
    JoinIndex::Tuple(vec![map])
}

fn probe_index(index: &JoinIndex, probe_cols: &[Evaluated], rows: usize) -> (Vec<u32>, Vec<u32>) {
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    match index {
        JoinIndex::Int(parts) => {
            if let [Evaluated::Col(ColumnVec::Int(vals))] = probe_cols {
                for (i, v) in vals.iter().enumerate() {
                    if let Some(matches) = owning_part(parts, || partition_hash(v)).get(v) {
                        for &j in matches {
                            lidx.push(i as u32);
                            ridx.push(j);
                        }
                    }
                }
                return (lidx, ridx);
            }
            // Probe side is not a clean Int column: compare through Values.
            for i in 0..rows {
                let key: Tuple = probe_cols
                    .iter()
                    .map(|c| c.value_at(i).join_key())
                    .collect();
                if key.has_null() {
                    continue;
                }
                if let Some(Value::Int(v)) = key.get(0) {
                    if let Some(matches) = owning_part(parts, || partition_hash(v)).get(v) {
                        for &j in matches {
                            lidx.push(i as u32);
                            ridx.push(j);
                        }
                    }
                }
            }
        }
        JoinIndex::Tuple(parts) => {
            for i in 0..rows {
                let key: Tuple = probe_cols
                    .iter()
                    .map(|c| c.value_at(i).join_key())
                    .collect();
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = owning_part(parts, || partition_hash(&key)).get(&key) {
                    for &j in matches {
                        lidx.push(i as u32);
                        ridx.push(j);
                    }
                }
            }
        }
    }
    (lidx, ridx)
}

/// Assemble the joined batch: gathered left columns ++ gathered right
/// columns; labels AND bitwise; multiplicities multiply (ℕ is saturating).
fn join_gather(
    lbatch: &ColumnBatch,
    rchunk: &ColumnBatch,
    lidx: &[u32],
    ridx: &[u32],
    out_schema: &Schema,
) -> ColumnBatch {
    let mut columns = Vec::with_capacity(out_schema.arity());
    for c in lbatch.columns() {
        columns.push(c.gather(lidx));
    }
    for c in rchunk.columns() {
        columns.push(c.gather(ridx));
    }
    let mut labels = lbatch.labels().gather(lidx);
    labels.and_assign(&rchunk.labels().gather(ridx));
    let mults: Vec<u64> = lidx
        .iter()
        .zip(ridx)
        .map(|(&i, &j)| lbatch.mults()[i as usize].saturating_mul(rchunk.mults()[j as usize]))
        .collect();
    ColumnBatch::new(out_schema.clone(), columns, labels, Arc::new(mults))
}

fn apply_residual(batch: ColumnBatch, residual: &Expr) -> Result<ColumnBatch, EngineError> {
    let bound = residual.bind(batch.schema()).map_err(EngineError::Expr)?;
    let (t, _f) = truth_masks(&bound, &batch)?;
    if t.all_ones() {
        Ok(batch)
    } else {
        Ok(batch.gather(&t.ones()))
    }
}

/// Row-count limit, columnar-native: batches pass through untouched until
/// the running row-copy count (multiplicities included, matching the row
/// engine's limit over expanded rows) reaches `limit`; the boundary batch
/// is truncated by gathering its prefix — columns, label bitmap and
/// multiplicity column together — and the boundary *row*'s multiplicity is
/// clipped when the limit lands inside its copies. No row materialization
/// happens.
pub fn limit(input: BatchStream, limit: usize) -> BatchStream {
    let mut remaining = limit as u64;
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in input.batches {
        if remaining == 0 {
            break;
        }
        let total: u64 = batch.mults().iter().sum();
        if total <= remaining {
            remaining -= total;
            batches.push(batch);
            continue;
        }
        let mut keep: Vec<u32> = Vec::new();
        let mut mults: Vec<u64> = Vec::new();
        for i in 0..batch.len() {
            if remaining == 0 {
                break;
            }
            let m = batch.mults()[i];
            if m == 0 {
                // Zero-multiplicity rows expand to nothing; dropping them
                // here matches the row engine's view of the stream.
                continue;
            }
            let take = m.min(remaining);
            keep.push(i as u32);
            mults.push(take);
            remaining -= take;
        }
        let gathered = batch.gather(&keep);
        batches.push(ColumnBatch::new(
            gathered.schema().clone(),
            gathered.columns().to_vec(),
            gathered.labels().clone(),
            Arc::new(mults),
        ));
    }
    BatchStream {
        schema: input.schema,
        batches,
    }
}

/// The shared sort comparator contract, applied to columnar rows: sort
/// keys (outermost first, `Value`'s total order, per-key direction), then
/// the full base row, then the UA label (uncertain before certain).
///
/// This is byte-for-byte `ua_engine::sort_table`'s ordering: in the row
/// engine's UA path the sort runs over the *encoded* table, whose
/// deterministic full-row tie-break ends on the trailing `ua_c` marker
/// (`0` for uncertain, `1` for certain) — here the marker lives in the
/// label bitmap, so the label becomes the final tie-break key (`false <
/// true` matches `0 < 1`). Deterministic semantics are unaffected: labels
/// are uniformly certain there.
fn sort_cmp(
    bound: &[(Expr, SortOrder)],
    keys_a: impl Fn(usize) -> Value,
    keys_b: impl Fn(usize) -> Value,
    row_a: (&ColumnBatch, usize),
    row_b: (&ColumnBatch, usize),
) -> Ordering {
    for (i, (_, order)) in bound.iter().enumerate() {
        let ord = keys_a(i).cmp(&keys_b(i));
        let ord = match order {
            SortOrder::Asc => ord,
            SortOrder::Desc => ord.reverse(),
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    let (ba, ia) = row_a;
    let (bb, ib) = row_b;
    for (ca, cb) in ba.columns().iter().zip(bb.columns()) {
        let ord = ca.value(ia).cmp(&cb.value(ib));
        if !ord.is_eq() {
            return ord;
        }
    }
    ba.labels().get(ia).cmp(&bb.labels().get(ib))
}

/// A single-chunk comparison accessor: typed dense columns compare on
/// their raw slices, skipping the per-comparison `Value` materialization
/// (and the `Arc<str>` clone `ColumnVec::value` pays for strings).
///
/// Within one typed variant the raw order *is* `Value`'s total order —
/// `Int` is `i64`'s, `Float` is [`F64`]'s total order (the same order
/// `Value::Float` derives), `Bool` is `bool`'s, `Str` is byte-wise `str`
/// order — and a per-batch constant compares equal everywhere, exactly as
/// cloning the same `Value` twice would. So a comparator chained from
/// these accessors yields the permutation [`sort_cmp`] defines,
/// byte-identically; [`sort`] uses them for both the key columns and the
/// full-row tie-break, and the differential test pins the ordering
/// against `ua_engine::sort_table`.
enum ColCmp<'a> {
    Int(&'a [i64]),
    Float(&'a [F64]),
    Bool(&'a [bool]),
    Str(&'a [Arc<str>]),
    Mixed(&'a [Value]),
    Const,
}

impl<'a> ColCmp<'a> {
    fn for_col(col: &'a ColumnVec) -> ColCmp<'a> {
        match col {
            ColumnVec::Int(v) => ColCmp::Int(v),
            ColumnVec::Float(v) => ColCmp::Float(v),
            ColumnVec::Bool(v) => ColCmp::Bool(v),
            ColumnVec::Str(v) => ColCmp::Str(v),
            ColumnVec::Mixed(v) => ColCmp::Mixed(v),
        }
    }

    fn for_eval(ev: &'a Evaluated) -> ColCmp<'a> {
        match ev {
            Evaluated::Col(c) => ColCmp::for_col(c),
            Evaluated::Const(_) => ColCmp::Const,
        }
    }

    fn cmp(&self, a: usize, b: usize) -> Ordering {
        match self {
            ColCmp::Int(v) => v[a].cmp(&v[b]),
            ColCmp::Float(v) => v[a].cmp(&v[b]),
            ColCmp::Bool(v) => v[a].cmp(&v[b]),
            ColCmp::Str(v) => v[a].as_ref().cmp(v[b].as_ref()),
            ColCmp::Mixed(v) => v[a].cmp(&v[b]),
            ColCmp::Const => Ordering::Equal,
        }
    }
}

/// Bind sort keys against a stream schema.
fn bind_sort_keys(
    keys: &[(Expr, SortOrder)],
    schema: &Schema,
) -> Result<Vec<(Expr, SortOrder)>, EngineError> {
    keys.iter()
        .map(|(e, o)| Ok((e.bind(schema).map_err(EngineError::Expr)?, *o)))
        .collect()
}

/// Columnar multi-key sort: concatenates the input into one chunk,
/// evaluates the key expressions once per column, sorts a row-index
/// permutation under [`sort_cmp`]'s ordering, and gathers the output in
/// `batch_rows`-sized slices — no row materialization anywhere. Order
/// (null placement, direction handling, tie-breaks) is identical to
/// `ua_engine::sort_table` over the materialized (encoded) table, which
/// the differential tests assert.
pub fn sort(
    input: BatchStream,
    keys: &[(Expr, SortOrder)],
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    let schema = input.schema.clone();
    let bound = bind_sort_keys(keys, &schema)?;
    if input.num_rows() == 0 {
        return Ok(BatchStream {
            schema,
            batches: Vec::new(),
        });
    }
    let chunk = input.into_single_chunk();
    let key_cols: Vec<Evaluated> = bound
        .iter()
        .map(|(e, _)| eval_expr(e, &chunk))
        .collect::<Result<_, _>>()?;
    let mut idx: Vec<u32> = (0..chunk.len() as u32).collect();
    // The typed comparator chain: [`sort_cmp`]'s order without the
    // per-comparison `Value` round trip.
    let key_cmp: Vec<(ColCmp, SortOrder)> = bound
        .iter()
        .zip(&key_cols)
        .map(|((_, order), ev)| (ColCmp::for_eval(ev), *order))
        .collect();
    let row_cmp: Vec<ColCmp> = chunk.columns().iter().map(ColCmp::for_col).collect();
    let labels = chunk.labels();
    idx.sort_by(|&a, &b| {
        let (a, b) = (a as usize, b as usize);
        for (col, order) in &key_cmp {
            let ord = match order {
                SortOrder::Asc => col.cmp(a, b),
                SortOrder::Desc => col.cmp(a, b).reverse(),
            };
            if !ord.is_eq() {
                return ord;
            }
        }
        for col in &row_cmp {
            let ord = col.cmp(a, b);
            if !ord.is_eq() {
                return ord;
            }
        }
        labels.get(a).cmp(&labels.get(b))
    });
    let batches = idx
        .chunks(batch_rows.max(1))
        .map(|slice| chunk.gather(slice))
        .collect();
    Ok(BatchStream { schema, batches })
}

/// Fused Sort+Limit (Top-K): a bounded buffer of the `k` smallest rows
/// under [`sort_cmp`]'s ordering — the full input is never sorted, let
/// alone materialized. Row copies count like the row engine's
/// `Limit(Sort(..))` over expanded rows: an entry with multiplicity `m`
/// stands for `m` adjacent copies, the buffer keeps just enough entries to
/// cover `k` copies, and the boundary entry's multiplicity is clipped on
/// emit (exactly like [`limit`]).
pub fn top_k(
    input: BatchStream,
    keys: &[(Expr, SortOrder)],
    k: usize,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    let schema = input.schema.clone();
    let bound = bind_sort_keys(keys, &schema)?;
    struct Entry {
        key: Vec<Value>,
        bi: u32,
        ri: u32,
        mult: u64,
    }
    let mut top: Vec<Entry> = Vec::new();
    let mut total: u64 = 0;
    let k64 = k as u64;
    for (bi, batch) in input.batches.iter().enumerate() {
        // Keys evaluate for every input row — even rows Top-K rejects and
        // even when k = 0 — matching the row engine, which decorates the
        // whole input before sorting (expression errors must not depend on
        // the limit).
        let key_cols: Vec<Evaluated> = bound
            .iter()
            .map(|(e, _)| eval_expr(e, batch))
            .collect::<Result<_, _>>()?;
        for ri in 0..batch.len() {
            let mult = batch.mults()[ri];
            if k == 0 || mult == 0 {
                continue;
            }
            let cmp_entry_to_cand = |e: &Entry| -> Ordering {
                sort_cmp(
                    &bound,
                    |i| e.key[i].clone(),
                    |i| key_cols[i].value_at(ri),
                    (&input.batches[e.bi as usize], e.ri as usize),
                    (batch, ri),
                )
            };
            if total >= k64 {
                if let Some(worst) = top.last() {
                    // Not strictly better than the current k-th copy's row:
                    // every copy of the candidate would rank past k.
                    if cmp_entry_to_cand(worst) != Ordering::Greater {
                        continue;
                    }
                }
            }
            let pos = top
                .binary_search_by(cmp_entry_to_cand)
                .unwrap_or_else(|p| p);
            let key: Vec<Value> = key_cols.iter().map(|c| c.value_at(ri)).collect();
            top.insert(
                pos,
                Entry {
                    key,
                    bi: bi as u32,
                    ri: ri as u32,
                    mult,
                },
            );
            total += mult;
            while let Some(worst) = top.last() {
                if total - worst.mult >= k64 {
                    total -= worst.mult;
                    top.pop();
                } else {
                    break;
                }
            }
        }
    }
    // Emit the surviving entries in order, clipping the boundary entry's
    // multiplicity so the copy count is exactly min(k, input copies).
    let mut batches = Vec::new();
    let mut remaining = k64;
    for slice in top.chunks(batch_rows.max(1)) {
        let mut mults: Vec<u64> = Vec::with_capacity(slice.len());
        for e in slice {
            if remaining == 0 {
                break;
            }
            let take = e.mult.min(remaining);
            remaining -= take;
            mults.push(take);
        }
        if mults.is_empty() {
            break;
        }
        let slice = &slice[..mults.len()];
        let mut labels = Bitmap::filled(slice.len(), false);
        for (i, e) in slice.iter().enumerate() {
            if input.batches[e.bi as usize].labels().get(e.ri as usize) {
                labels.set(i, true);
            }
        }
        let columns: Vec<ColumnVec> = (0..schema.arity())
            .map(|c| {
                let values: Vec<Value> = slice
                    .iter()
                    .map(|e| input.batches[e.bi as usize].column(c).value(e.ri as usize))
                    .collect();
                ColumnVec::from_values(values.iter())
            })
            .collect();
        batches.push(ColumnBatch::new(
            schema.clone(),
            columns,
            labels,
            Arc::new(mults),
        ));
    }
    Ok(BatchStream { schema, batches })
}

/// Duplicate elimination: first occurrence of each distinct row survives
/// with multiplicity 1 (set semantics over the bag's row copies).
///
/// The UA label participates in the key: in the row engine's encoded
/// representation the marker is a real column, so `(t, certain)` and
/// `(t, uncertain)` are distinct rows there — labeled batches must dedupe
/// the same way or a certain copy could vanish behind an uncertain one.
pub fn distinct(input: BatchStream) -> BatchStream {
    let mut seen: ua_data::FxHashSet<(Tuple, bool)> = ua_data::FxHashSet::default();
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in &input.batches {
        let mut keep: Vec<u32> = Vec::new();
        for i in 0..batch.len() {
            if batch.mults()[i] == 0 {
                continue;
            }
            if seen.insert((batch.row(i), batch.labels().get(i))) {
                keep.push(i as u32);
            }
        }
        if !keep.is_empty() {
            let gathered = batch.gather(&keep);
            // Normalize multiplicities to 1.
            batches.push(ColumnBatch::new(
                gathered.schema().clone(),
                gathered.columns().to_vec(),
                gathered.labels().clone(),
                Arc::new(vec![1u64; gathered.len()]),
            ));
        }
    }
    BatchStream {
        schema: input.schema,
        batches,
    }
}

/// How a single-key aggregation reads its group key per row: the typed
/// path avoids the per-row `Tuple` allocation + structural hash that
/// dominates grouped aggregation over dense integer keys.
enum IntKey<'a> {
    Col(&'a [i64]),
    Const(i64),
}

impl IntKey<'_> {
    fn of<'a>(e: &'a Evaluated) -> Option<IntKey<'a>> {
        match e {
            Evaluated::Col(ColumnVec::Int(v)) => Some(IntKey::Col(v)),
            Evaluated::Const(Value::Int(c)) => Some(IntKey::Const(*c)),
            _ => None,
        }
    }

    fn at(&self, i: usize) -> i64 {
        match self {
            IntKey::Col(v) => v[i],
            IntKey::Const(c) => *c,
        }
    }
}

/// One evaluated source batch of an aggregation: the batch plus its
/// group-key and aggregate-argument columns.
type BatchEval<'a> = (&'a ColumnBatch, Vec<Evaluated>, Vec<Option<Evaluated>>);

/// Parallel partitioned fold over evaluated batches: phase 1 scatters each
/// batch's live rows into `parts` per-partition lists by group-key hash
/// (batch-parallel); phase 2 folds each partition's groups on its own
/// worker, consuming entries batch-major so every group's [`AggState`]s
/// see exactly the serial scan's subsequence for that group, in the same
/// order (a group lives in exactly one partition); phase 3 merges
/// partitions in fixed order and re-sorts groups by global first-seen
/// position. Per-group fold order and output order are both independent
/// of `parts`, so the result is byte-identical to the serial fold for
/// every thread count.
/// One partition's folded output: each group's global first-seen
/// `(batch, row)` position, its key, and its accumulated states.
type FoldedGroups<K> = Vec<((u32, u32), K, Vec<AggState>)>;

fn fold_partitioned<K: Hash + Eq + Clone + Send + Sync>(
    evaluated: &[BatchEval],
    aggregates: &[AggExpr],
    pool: &ThreadPool,
    key_of: impl Fn(&BatchEval, usize) -> K + Sync,
) -> Vec<(K, Vec<AggState>)> {
    let parts = pool.current_num_threads().max(1);
    let scattered: Vec<Vec<Vec<(u32, K)>>> =
        pool.map_build((0..evaluated.len()).collect(), |_, b: usize| {
            let be = &evaluated[b];
            let mut lists: Vec<Vec<(u32, K)>> = (0..parts).map(|_| Vec::new()).collect();
            for i in 0..be.0.len() {
                if be.0.mults()[i] == 0 {
                    continue;
                }
                let key = key_of(be, i);
                let p = (partition_hash(&key) % parts as u64) as usize;
                lists[p].push((i as u32, key));
            }
            lists
        });
    // Batch-major transpose keeps each partition's entries in the scan
    // order (batch index, then row index) the serial fold uses.
    let mut per_part: Vec<Vec<(u32, u32, K)>> = (0..parts).map(|_| Vec::new()).collect();
    for (b, lists) in scattered.into_iter().enumerate() {
        for (acc, list) in per_part.iter_mut().zip(lists) {
            acc.extend(list.into_iter().map(|(i, k)| (b as u32, i, k)));
        }
    }
    let folded: Vec<FoldedGroups<K>> = pool.map_build(per_part, |_, entries| {
        let mut slots: FxHashMap<K, usize> = FxHashMap::default();
        let mut out: FoldedGroups<K> = Vec::new();
        for (b, i, key) in entries {
            let (batch, _, acols) = &evaluated[b as usize];
            let i = i as usize;
            let mult = batch.mults()[i];
            let slot = match slots.get(&key) {
                Some(&s) => s,
                None => {
                    let s = out.len();
                    slots.insert(key.clone(), s);
                    out.push((
                        (b, i as u32),
                        key,
                        aggregates.iter().map(|a| AggState::new(a.func)).collect(),
                    ));
                    s
                }
            };
            for (state, arg) in out[slot].2.iter_mut().zip(acols) {
                match arg {
                    Some(col) => state.update(Some(&col.value_at(i)), mult),
                    None => state.update(None, mult),
                }
            }
        }
        out
    });
    // First-seen positions are unique across partitions, so this sort is a
    // fixed permutation — the global first-seen group order — no matter
    // how many partitions the groups were spread over.
    let merge_start = pool.instrumented().then(Instant::now);
    let mut merged: Vec<((u32, u32), K, Vec<AggState>)> = folded.into_iter().flatten().collect();
    merged.sort_unstable_by_key(|(first, _, _)| *first);
    if let Some(start) = merge_start {
        pool.note_partition_merge(start.elapsed().as_nanos() as u64);
    }
    merged.into_iter().map(|(_, k, s)| (k, s)).collect()
}

/// Grouping + aggregation (first-seen group order, like the row engine).
///
/// A typed fast path handles the common shape — a single group key whose
/// evaluated column is dense `Int` in every batch — with an `i64`-keyed
/// hash table; the shared [`AggState`]s still fold every value, so the
/// output is bit-identical to the general path (and the row engine).
pub fn aggregate(
    input: BatchStream,
    group_by: &[ProjColumn],
    aggregates: &[AggExpr],
) -> Result<BatchStream, EngineError> {
    aggregate_impl(input, group_by, aggregates, None)
}

/// [`aggregate`] with a thread pool: with more than one worker and more
/// than one input batch, evaluation runs batch-parallel and the group fold
/// runs through [`fold_partitioned`] — byte-identical output, every
/// thread count.
pub fn aggregate_pooled(
    input: BatchStream,
    group_by: &[ProjColumn],
    aggregates: &[AggExpr],
    pool: &ThreadPool,
) -> Result<BatchStream, EngineError> {
    aggregate_impl(input, group_by, aggregates, Some(pool))
}

fn aggregate_impl(
    input: BatchStream,
    group_by: &[ProjColumn],
    aggregates: &[AggExpr],
    pool: Option<&ThreadPool>,
) -> Result<BatchStream, EngineError> {
    let bound_groups: Vec<Expr> = group_by
        .iter()
        .map(|g| g.expr.bind(&input.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let bound_aggs: Vec<Option<Expr>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.bind(&input.schema)).transpose())
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let parallel = pool
        .map(|p| p.current_num_threads() > 1 && input.batches.len() > 1)
        .unwrap_or(false);

    // Evaluate every batch's key/argument columns up front (cheap `Arc`
    // handles), so the typed-key decision sees the whole input.
    let eval_batch =
        |batch: &'_ ColumnBatch| -> Result<(Vec<Evaluated>, Vec<Option<Evaluated>>), EngineError> {
            let group_cols: Vec<Evaluated> = bound_groups
                .iter()
                .map(|e| eval_expr(e, batch))
                .collect::<Result<_, _>>()?;
            let agg_cols: Vec<Option<Evaluated>> = bound_aggs
                .iter()
                .map(|e| e.as_ref().map(|e| eval_expr(e, batch)).transpose())
                .collect::<Result<_, _>>()?;
            Ok((group_cols, agg_cols))
        };
    let mut evaluated: Vec<BatchEval> = Vec::with_capacity(input.batches.len());
    if parallel {
        let pool = pool.expect("parallel implies a pool");
        let results = pool
            .map_in_order(input.batches.iter().collect(), |_, batch: &ColumnBatch| {
                eval_batch(batch).map(|(g, a)| (batch, g, a))
            });
        for r in results {
            // `?` on the lowest-indexed error reproduces the serial loop's
            // failure order.
            evaluated.push(r?);
        }
    } else {
        for batch in &input.batches {
            let (group_cols, agg_cols) = eval_batch(batch)?;
            evaluated.push((batch, group_cols, agg_cols));
        }
    }

    let int_keyed = bound_groups.len() == 1
        && evaluated
            .iter()
            .all(|(_, gcols, _)| IntKey::of(&gcols[0]).is_some());
    // The fold produces groups as `(key, states)` in first-seen order —
    // serially below, or partition-parallel with the same bytes.
    let mut grouped: Vec<(Tuple, Vec<AggState>)> = if parallel {
        let pool = pool.expect("parallel implies a pool");
        if int_keyed {
            fold_partitioned(&evaluated, aggregates, pool, |be, i| {
                IntKey::of(&be.1[0]).expect("checked above").at(i)
            })
            .into_iter()
            .map(|(k, s)| (Tuple::new(vec![Value::Int(k)]), s))
            .collect()
        } else {
            fold_partitioned(&evaluated, aggregates, pool, |be, i| {
                be.1.iter().map(|c| c.value_at(i)).collect::<Tuple>()
            })
        }
    } else if int_keyed {
        let mut int_groups: FxHashMap<i64, Vec<AggState>> = FxHashMap::default();
        let mut int_order: Vec<i64> = Vec::new();
        for (batch, gcols, acols) in &evaluated {
            let key_col = IntKey::of(&gcols[0]).expect("checked above");
            for i in 0..batch.len() {
                let mult = batch.mults()[i];
                if mult == 0 {
                    continue;
                }
                let k = key_col.at(i);
                let states = match int_groups.get_mut(&k) {
                    Some(s) => s,
                    None => {
                        int_order.push(k);
                        int_groups.entry(k).or_insert_with(|| {
                            aggregates.iter().map(|a| AggState::new(a.func)).collect()
                        })
                    }
                };
                for (state, arg) in states.iter_mut().zip(acols) {
                    match arg {
                        Some(col) => state.update(Some(&col.value_at(i)), mult),
                        None => state.update(None, mult),
                    }
                }
            }
        }
        int_order
            .into_iter()
            .map(|k| {
                let states = int_groups.remove(&k).expect("recorded");
                (Tuple::new(vec![Value::Int(k)]), states)
            })
            .collect()
    } else {
        let mut groups: FxHashMap<Tuple, Vec<AggState>> = FxHashMap::default();
        let mut order: Vec<Tuple> = Vec::new();
        for (batch, group_cols, agg_cols) in &evaluated {
            for i in 0..batch.len() {
                let mult = batch.mults()[i];
                if mult == 0 {
                    continue;
                }
                let key: Tuple = group_cols.iter().map(|c| c.value_at(i)).collect();
                let states = match groups.get_mut(&key) {
                    Some(s) => s,
                    None => {
                        order.push(key.clone());
                        groups.entry(key).or_insert_with(|| {
                            aggregates.iter().map(|a| AggState::new(a.func)).collect()
                        })
                    }
                };
                for (state, arg) in states.iter_mut().zip(agg_cols) {
                    match arg {
                        Some(col) => state.update(Some(&col.value_at(i)), mult),
                        None => state.update(None, mult),
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|key| {
                let states = groups.remove(&key).expect("group recorded");
                (key, states)
            })
            .collect()
    };

    // Global aggregation over an empty input still yields one row.
    if bound_groups.is_empty() && grouped.is_empty() {
        grouped.push((
            Tuple::empty(),
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        ));
    }

    let mut columns: Vec<ua_data::schema::Column> =
        group_by.iter().map(|g| g.column.clone()).collect();
    for a in aggregates {
        columns.push(ua_data::schema::Column::unqualified(&a.name));
    }
    let out_schema = Schema::new(columns);
    let mut rows: Vec<Tuple> = Vec::with_capacity(grouped.len());
    for (key, states) in grouped {
        let mut values: Vec<Value> = key.values().to_vec();
        for s in states {
            values.push(s.finish());
        }
        rows.push(Tuple::new(values));
    }
    let arity = out_schema.arity();
    let cols: Vec<ColumnVec> = (0..arity)
        .map(|c| ColumnVec::from_values(rows.iter().map(move |r| r.get(c).expect("arity"))))
        .collect();
    let len = rows.len();
    let batch = ColumnBatch::new(
        out_schema.clone(),
        cols,
        Bitmap::filled(len, true),
        Arc::new(vec![1u64; len]),
    );
    Ok(BatchStream {
        schema: out_schema,
        batches: if len == 0 { Vec::new() } else { vec![batch] },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::batches_from_encoded_table;
    use ua_data::tuple;
    use ua_engine::Table;

    #[test]
    fn distinct_keeps_differently_labeled_copies_apart() {
        // Same tuple twice with different labels: both must survive, like
        // the row engine's Distinct over the encoded (ua_c-bearing) rows.
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]).with_column(ua_core::UA_LABEL_COLUMN),
            vec![
                tuple![1i64, 0i64],
                tuple![1i64, 1i64],
                tuple![1i64, 0i64],
                tuple![2i64, 1i64],
            ],
        );
        let stream = batches_from_encoded_table(&t, "r", 2).unwrap();
        let out = distinct(stream);
        let rows: Vec<(Tuple, bool)> = out
            .batches
            .iter()
            .flat_map(|b| (0..b.len()).map(move |i| (b.row(i), b.labels().get(i))))
            .collect();
        assert_eq!(
            rows,
            vec![
                (tuple![1i64], false),
                (tuple![1i64], true),
                (tuple![2i64], true),
            ]
        );
    }

    #[test]
    fn typed_sort_keys_match_sort_table() {
        use crate::columnar::{batches_from_table, table_from_batches};
        // Every comparator arm gets exercised: dense Int/Float/Str key
        // columns (with duplicate keys so the full-row tie-break decides),
        // a float column holding NaN (F64's total order), a Mixed column
        // holding NULLs, and a constant (literal) key.
        let t = Table::from_rows(
            Schema::qualified("r", ["i", "f", "s", "m"]),
            vec![
                tuple![3i64, 1.5, "bb", Value::Null],
                tuple![1i64, f64::NAN, "aa", 7i64],
                tuple![3i64, -0.0, "aa", Value::Null],
                tuple![1i64, 1.5, "cc", 2i64],
                tuple![2i64, f64::NAN, "bb", Value::Null],
                tuple![1i64, 1.5, "aa", 5i64],
                tuple![3i64, 1.5, "bb", 1i64],
            ],
        );
        let key_sets: Vec<Vec<(Expr, SortOrder)>> = vec![
            vec![(Expr::col(0), SortOrder::Asc)],
            vec![
                (Expr::col(1), SortOrder::Desc),
                (Expr::col(2), SortOrder::Asc),
            ],
            vec![(Expr::col(2), SortOrder::Desc)],
            vec![
                (Expr::col(3), SortOrder::Asc),
                (Expr::col(0), SortOrder::Desc),
            ],
            vec![
                (Expr::lit(1i64), SortOrder::Asc),
                (Expr::col(1), SortOrder::Asc),
            ],
        ];
        for keys in &key_sets {
            let expect = ua_engine::sort_table(&t, keys).unwrap();
            for batch_rows in [1, 3, 1024] {
                let sorted = sort(batches_from_table(&t, batch_rows), keys, batch_rows).unwrap();
                let got = table_from_batches(&sorted);
                assert_eq!(got.rows(), expect.rows(), "keys {keys:?} × {batch_rows}");
            }
        }
    }

    /// The partition-merge-order contract: [`fold_partitioned`] (via
    /// [`aggregate_pooled`]) must reproduce the serial fold byte for byte
    /// at every worker count — group output order is the global
    /// first-seen order, and each group's float accumulation sees the
    /// serial scan's exact subsequence. Mixed-magnitude floats make any
    /// reordering visible: `(1e16 + 1.0) - 1e16 = 0`, but
    /// `(1e16 - 1e16) + 1.0 = 1`.
    #[test]
    fn partitioned_aggregation_merges_in_first_seen_order() {
        use crate::columnar::{batches_from_table, table_from_batches};
        use ua_engine::plan::AggFunc;
        // 24 groups, first seen in descending order, interleaved across
        // batches; per-group values alternate huge/tiny so fold order is
        // observable in the Sum/Avg bytes.
        let rows: Vec<Tuple> = (0..3000i64)
            .map(|i| {
                let g = 23 - (i % 24);
                let x = match i % 4 {
                    0 => 1e16,
                    1 => 1.0,
                    2 => -1e16,
                    _ => 0.25,
                };
                tuple![g, x]
            })
            .collect();
        let t = Table::from_rows(Schema::qualified("f", ["g", "x"]), rows);
        let group_by = vec![ProjColumn::named("g")];
        let aggregates = vec![
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::named("x")),
                name: "s".into(),
            },
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(Expr::named("x")),
                name: "m".into(),
            },
        ];
        for batch_rows in [1usize, 7, 256] {
            let serial =
                aggregate(batches_from_table(&t, batch_rows), &group_by, &aggregates).unwrap();
            let expect = table_from_batches(&serial);
            // Output order is the global first-seen order (descending g).
            let first_keys: Vec<Value> = expect
                .rows()
                .iter()
                .map(|r| r.values()[0].clone())
                .collect();
            assert_eq!(
                first_keys,
                (0..24i64).map(|g| Value::Int(23 - g)).collect::<Vec<_>>(),
                "first-seen group order (batch_rows={batch_rows})"
            );
            for workers in [2usize, 3, 8] {
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers)
                    .build()
                    .unwrap();
                let got = table_from_batches(
                    &aggregate_pooled(
                        batches_from_table(&t, batch_rows),
                        &group_by,
                        &aggregates,
                        &pool,
                    )
                    .unwrap(),
                );
                assert_eq!(
                    got.rows(),
                    expect.rows(),
                    "partitioned fold must be byte-identical \
                     (batch_rows={batch_rows}, workers={workers})"
                );
            }
        }
    }
}
