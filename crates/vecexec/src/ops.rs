//! Vectorized relational operators over [`BatchStream`]s.
//!
//! Operators are order-preserving replicas of the row executor's operators
//! (same hash-join strategy choice, same first-seen orders), so the two
//! engines produce identical tables — rows, labels *and* row order — which
//! the differential tests assert. UA labels flow through as bitmaps:
//! filters/projections gather them, joins AND them (`min(C₁, C₂)` over
//! `{0,1}` markers), unions concatenate them.

use crate::bitmap::Bitmap;
use crate::columnar::{BatchStream, ColumnBatch, ColumnVec};
use crate::kernels::{eval_expr, truth_masks, Evaluated};
use std::sync::Arc;
use ua_data::algebra::{extract_equi_keys, ProjColumn};
use ua_data::expr::Expr;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashMap;
use ua_engine::plan::AggExpr;
use ua_engine::{AggState, EngineError};

/// σ — keep rows whose (bound) predicate is certainly true.
pub fn filter(input: BatchStream, predicate: &Expr) -> Result<BatchStream, EngineError> {
    let bound = predicate.bind(&input.schema).map_err(EngineError::Expr)?;
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in input.batches {
        if batch.is_empty() {
            continue;
        }
        let (t, _f) = truth_masks(&bound, &batch)?;
        if t.all_ones() {
            batches.push(batch);
        } else if t.count_ones() > 0 {
            batches.push(batch.gather(&t.ones()));
        }
    }
    Ok(BatchStream {
        schema: input.schema,
        batches,
    })
}

/// π — evaluate output expressions per batch; labels and multiplicities are
/// carried through unchanged (the `⟦·⟧_UA` projection rule keeps each row
/// copy's own marker).
pub fn project(input: BatchStream, columns: &[ProjColumn]) -> Result<BatchStream, EngineError> {
    let bound: Vec<Expr> = columns
        .iter()
        .map(|c| c.expr.bind(&input.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let out_schema = Schema::new(columns.iter().map(|c| c.column.clone()).collect());
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in &input.batches {
        let cols: Vec<ColumnVec> = bound
            .iter()
            .map(|e| Ok(eval_expr(e, batch)?.into_column(batch.len())))
            .collect::<Result<_, EngineError>>()?;
        batches.push(ColumnBatch::new(
            out_schema.clone(),
            cols,
            batch.labels().clone(),
            Arc::new(batch.mults().to_vec()),
        ));
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// Bag union — batches concatenate (annotations add by rows standing next
/// to each other; the left schema wins, as in the row engine).
pub fn union_all(left: BatchStream, right: BatchStream) -> Result<BatchStream, EngineError> {
    left.schema
        .check_union_compatible(&right.schema)
        .map_err(EngineError::Schema)?;
    let mut batches = left.batches;
    // Right-side batches adopt the left schema so downstream binding matches
    // the row engine (which keeps the left schema for the union output).
    for b in right.batches {
        batches.push(b.with_schema(left.schema.clone()));
    }
    Ok(BatchStream {
        schema: left.schema,
        batches,
    })
}

enum JoinIndex {
    /// Single integer equi-key: dense i64 hash table.
    Int(FxHashMap<i64, Vec<u32>>),
    /// General composite key.
    Tuple(FxHashMap<Tuple, Vec<u32>>),
}

/// θ-join. Strategy mirrors the row executor exactly: extract equi-keys
/// from the bound predicate, hash-join on them with the residual applied to
/// matches; fall back to nested loops otherwise. The probe side streams
/// left batches in order and the build side keeps per-key row ids in scan
/// order, so the output row order equals the row engine's.
pub fn join(
    left: BatchStream,
    right: BatchStream,
    predicate: Option<&Expr>,
) -> Result<BatchStream, EngineError> {
    let out_schema = left.schema.concat(&right.schema);
    let left_arity = left.schema.arity();
    let bound = match predicate {
        Some(p) => Some(p.bind(&out_schema).map_err(EngineError::Expr)?),
        None => None,
    };

    let right_chunk = right.into_single_chunk();

    if let Some(pred) = &bound {
        let (keys, residual) = extract_equi_keys(pred, left_arity);
        if !keys.is_empty() {
            let residual = Expr::conjunction(residual);
            // Build phase over the right chunk.
            let key_cols: Vec<Evaluated> = keys
                .iter()
                .map(|k| eval_expr(&k.right, &right_chunk))
                .collect::<Result<_, _>>()?;
            let index = build_index(&key_cols, right_chunk.len());
            // Probe phase, batch by batch.
            let mut batches = Vec::with_capacity(left.batches.len());
            for lbatch in &left.batches {
                let probe_cols: Vec<Evaluated> = keys
                    .iter()
                    .map(|k| eval_expr(&k.left, lbatch))
                    .collect::<Result<_, _>>()?;
                let (lidx, ridx) = probe_index(&index, &probe_cols, lbatch.len());
                if lidx.is_empty() {
                    continue;
                }
                let joined = join_gather(lbatch, &right_chunk, &lidx, &ridx, &out_schema);
                let joined = apply_residual(joined, &residual)?;
                if !joined.is_empty() {
                    batches.push(joined);
                }
            }
            return Ok(BatchStream {
                schema: out_schema,
                batches,
            });
        }
    }

    // Nested loops: left rows in order against the whole right chunk. The
    // cross product is materialized in bounded pieces (a few left rows at a
    // time) so a large θ-join never holds the full product in memory;
    // slicing on the left preserves the row engine's output order.
    const MAX_PAIRS_PER_PIECE: usize = 1 << 16;
    let mut batches = Vec::with_capacity(left.batches.len());
    for lbatch in &left.batches {
        if lbatch.is_empty() || right_chunk.is_empty() {
            continue;
        }
        let rows_per_piece = (MAX_PAIRS_PER_PIECE / right_chunk.len()).max(1);
        let mut start = 0u32;
        while (start as usize) < lbatch.len() {
            let end = ((start as usize + rows_per_piece).min(lbatch.len())) as u32;
            let mut lidx: Vec<u32> = Vec::new();
            let mut ridx: Vec<u32> = Vec::new();
            for i in start..end {
                for j in 0..right_chunk.len() as u32 {
                    lidx.push(i);
                    ridx.push(j);
                }
            }
            let joined = join_gather(lbatch, &right_chunk, &lidx, &ridx, &out_schema);
            // The full predicate filters the cross product (matching the
            // row engine's nested-loop path).
            let joined = match &bound {
                Some(pred) => apply_residual(joined, pred)?,
                None => joined,
            };
            if !joined.is_empty() {
                batches.push(joined);
            }
            start = end;
        }
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

/// Optimizer-planned hash join ([`ua_engine::plan::Plan::HashJoin`]).
///
/// Key expressions are per-side (left against the left schema, right
/// against the right schema); `build_left` picks the hash-table side. Row
/// order replicates the row executor exactly: probe-side scan order, with
/// build-side scan order within one probe row. Output columns are always
/// `left ++ right` regardless of build side; labels AND, multiplicities
/// multiply (via [`join_gather`]).
pub fn hash_join(
    left: BatchStream,
    right: BatchStream,
    keys: &[(Expr, Expr)],
    residual: Option<&Expr>,
    build_left: bool,
) -> Result<BatchStream, EngineError> {
    let out_schema = left.schema.concat(&right.schema);
    let lkeys: Vec<Expr> = keys
        .iter()
        .map(|(e, _)| e.bind(&left.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let rkeys: Vec<Expr> = keys
        .iter()
        .map(|(_, e)| e.bind(&right.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let residual = residual
        .map(|e| e.bind(&out_schema))
        .transpose()
        .map_err(EngineError::Expr)?;
    // One build/probe loop regardless of side: only which stream is
    // chunked for the hash table and the gather argument order depend on
    // `build_left` (output columns stay left ++ right).
    let (build_stream, build_keys, probe_stream, probe_keys) = if build_left {
        (left, &lkeys, right, &rkeys)
    } else {
        (right, &rkeys, left, &lkeys)
    };
    let chunk = build_stream.into_single_chunk();
    let key_cols: Vec<Evaluated> = build_keys
        .iter()
        .map(|e| eval_expr(e, &chunk))
        .collect::<Result<_, _>>()?;
    let index = build_index(&key_cols, chunk.len());
    let mut batches = Vec::with_capacity(probe_stream.batches.len());
    for pbatch in &probe_stream.batches {
        let probe_cols: Vec<Evaluated> = probe_keys
            .iter()
            .map(|e| eval_expr(e, pbatch))
            .collect::<Result<_, _>>()?;
        // probe_index yields (probe row, build row) pairs.
        let (pidx, bidx) = probe_index(&index, &probe_cols, pbatch.len());
        if pidx.is_empty() {
            continue;
        }
        let (lsrc, rsrc, lidx, ridx): (&ColumnBatch, &ColumnBatch, &[u32], &[u32]) = if build_left {
            (&chunk, pbatch, &bidx, &pidx)
        } else {
            (pbatch, &chunk, &pidx, &bidx)
        };
        let joined = join_gather(lsrc, rsrc, lidx, ridx, &out_schema);
        let joined = match &residual {
            Some(pred) => apply_residual(joined, pred)?,
            None => joined,
        };
        if !joined.is_empty() {
            batches.push(joined);
        }
    }
    Ok(BatchStream {
        schema: out_schema,
        batches,
    })
}

fn build_index(key_cols: &[Evaluated], rows: usize) -> JoinIndex {
    // Fast path: one integer key column.
    if let [Evaluated::Col(ColumnVec::Int(vals))] = key_cols {
        let mut map: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
        for (j, &v) in vals.iter().enumerate() {
            map.entry(v).or_default().push(j as u32);
        }
        return JoinIndex::Int(map);
    }
    let mut map: FxHashMap<Tuple, Vec<u32>> = FxHashMap::default();
    for j in 0..rows {
        let key: Tuple = key_cols.iter().map(|c| c.value_at(j).join_key()).collect();
        // SQL NULL keys never join; labeled nulls join themselves.
        if key.has_null() {
            continue;
        }
        map.entry(key).or_default().push(j as u32);
    }
    JoinIndex::Tuple(map)
}

fn probe_index(index: &JoinIndex, probe_cols: &[Evaluated], rows: usize) -> (Vec<u32>, Vec<u32>) {
    let mut lidx = Vec::new();
    let mut ridx = Vec::new();
    match index {
        JoinIndex::Int(map) => {
            if let [Evaluated::Col(ColumnVec::Int(vals))] = probe_cols {
                for (i, v) in vals.iter().enumerate() {
                    if let Some(matches) = map.get(v) {
                        for &j in matches {
                            lidx.push(i as u32);
                            ridx.push(j);
                        }
                    }
                }
                return (lidx, ridx);
            }
            // Probe side is not a clean Int column: compare through Values.
            for i in 0..rows {
                let key: Tuple = probe_cols
                    .iter()
                    .map(|c| c.value_at(i).join_key())
                    .collect();
                if key.has_null() {
                    continue;
                }
                if let Some(Value::Int(v)) = key.get(0) {
                    if let Some(matches) = map.get(v) {
                        for &j in matches {
                            lidx.push(i as u32);
                            ridx.push(j);
                        }
                    }
                }
            }
        }
        JoinIndex::Tuple(map) => {
            for i in 0..rows {
                let key: Tuple = probe_cols
                    .iter()
                    .map(|c| c.value_at(i).join_key())
                    .collect();
                if key.has_null() {
                    continue;
                }
                if let Some(matches) = map.get(&key) {
                    for &j in matches {
                        lidx.push(i as u32);
                        ridx.push(j);
                    }
                }
            }
        }
    }
    (lidx, ridx)
}

/// Assemble the joined batch: gathered left columns ++ gathered right
/// columns; labels AND bitwise; multiplicities multiply (ℕ is saturating).
fn join_gather(
    lbatch: &ColumnBatch,
    rchunk: &ColumnBatch,
    lidx: &[u32],
    ridx: &[u32],
    out_schema: &Schema,
) -> ColumnBatch {
    let mut columns = Vec::with_capacity(out_schema.arity());
    for c in lbatch.columns() {
        columns.push(c.gather(lidx));
    }
    for c in rchunk.columns() {
        columns.push(c.gather(ridx));
    }
    let mut labels = lbatch.labels().gather(lidx);
    labels.and_assign(&rchunk.labels().gather(ridx));
    let mults: Vec<u64> = lidx
        .iter()
        .zip(ridx)
        .map(|(&i, &j)| lbatch.mults()[i as usize].saturating_mul(rchunk.mults()[j as usize]))
        .collect();
    ColumnBatch::new(out_schema.clone(), columns, labels, Arc::new(mults))
}

fn apply_residual(batch: ColumnBatch, residual: &Expr) -> Result<ColumnBatch, EngineError> {
    let bound = residual.bind(batch.schema()).map_err(EngineError::Expr)?;
    let (t, _f) = truth_masks(&bound, &batch)?;
    if t.all_ones() {
        Ok(batch)
    } else {
        Ok(batch.gather(&t.ones()))
    }
}

/// Row-count limit, columnar-native: batches pass through untouched until
/// the running row-copy count (multiplicities included, matching the row
/// engine's limit over expanded rows) reaches `limit`; the boundary batch
/// is truncated by gathering its prefix — columns, label bitmap and
/// multiplicity column together — and the boundary *row*'s multiplicity is
/// clipped when the limit lands inside its copies. No row materialization
/// happens.
pub fn limit(input: BatchStream, limit: usize) -> BatchStream {
    let mut remaining = limit as u64;
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in input.batches {
        if remaining == 0 {
            break;
        }
        let total: u64 = batch.mults().iter().sum();
        if total <= remaining {
            remaining -= total;
            batches.push(batch);
            continue;
        }
        let mut keep: Vec<u32> = Vec::new();
        let mut mults: Vec<u64> = Vec::new();
        for i in 0..batch.len() {
            if remaining == 0 {
                break;
            }
            let m = batch.mults()[i];
            if m == 0 {
                // Zero-multiplicity rows expand to nothing; dropping them
                // here matches the row engine's view of the stream.
                continue;
            }
            let take = m.min(remaining);
            keep.push(i as u32);
            mults.push(take);
            remaining -= take;
        }
        let gathered = batch.gather(&keep);
        batches.push(ColumnBatch::new(
            gathered.schema().clone(),
            gathered.columns().to_vec(),
            gathered.labels().clone(),
            Arc::new(mults),
        ));
    }
    BatchStream {
        schema: input.schema,
        batches,
    }
}

/// Duplicate elimination: first occurrence of each distinct row survives
/// with multiplicity 1 (set semantics over the bag's row copies).
///
/// The UA label participates in the key: in the row engine's encoded
/// representation the marker is a real column, so `(t, certain)` and
/// `(t, uncertain)` are distinct rows there — labeled batches must dedupe
/// the same way or a certain copy could vanish behind an uncertain one.
pub fn distinct(input: BatchStream) -> BatchStream {
    let mut seen: ua_data::FxHashSet<(Tuple, bool)> = ua_data::FxHashSet::default();
    let mut batches = Vec::with_capacity(input.batches.len());
    for batch in &input.batches {
        let mut keep: Vec<u32> = Vec::new();
        for i in 0..batch.len() {
            if batch.mults()[i] == 0 {
                continue;
            }
            if seen.insert((batch.row(i), batch.labels().get(i))) {
                keep.push(i as u32);
            }
        }
        if !keep.is_empty() {
            let gathered = batch.gather(&keep);
            // Normalize multiplicities to 1.
            batches.push(ColumnBatch::new(
                gathered.schema().clone(),
                gathered.columns().to_vec(),
                gathered.labels().clone(),
                Arc::new(vec![1u64; gathered.len()]),
            ));
        }
    }
    BatchStream {
        schema: input.schema,
        batches,
    }
}

/// Grouping + aggregation (first-seen group order, like the row engine).
pub fn aggregate(
    input: BatchStream,
    group_by: &[ProjColumn],
    aggregates: &[AggExpr],
) -> Result<BatchStream, EngineError> {
    let bound_groups: Vec<Expr> = group_by
        .iter()
        .map(|g| g.expr.bind(&input.schema))
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;
    let bound_aggs: Vec<Option<Expr>> = aggregates
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.bind(&input.schema)).transpose())
        .collect::<Result<_, _>>()
        .map_err(EngineError::Expr)?;

    let mut groups: FxHashMap<Tuple, Vec<AggState>> = FxHashMap::default();
    let mut order: Vec<Tuple> = Vec::new();
    for batch in &input.batches {
        let group_cols: Vec<Evaluated> = bound_groups
            .iter()
            .map(|e| eval_expr(e, batch))
            .collect::<Result<_, _>>()?;
        let agg_cols: Vec<Option<Evaluated>> = bound_aggs
            .iter()
            .map(|e| e.as_ref().map(|e| eval_expr(e, batch)).transpose())
            .collect::<Result<_, _>>()?;
        for i in 0..batch.len() {
            let mult = batch.mults()[i];
            if mult == 0 {
                continue;
            }
            let key: Tuple = group_cols.iter().map(|c| c.value_at(i)).collect();
            let states = match groups.get_mut(&key) {
                Some(s) => s,
                None => {
                    order.push(key.clone());
                    groups.entry(key).or_insert_with(|| {
                        aggregates.iter().map(|a| AggState::new(a.func)).collect()
                    })
                }
            };
            for (state, arg) in states.iter_mut().zip(&agg_cols) {
                match arg {
                    Some(col) => state.update(Some(&col.value_at(i)), mult),
                    None => state.update(None, mult),
                }
            }
        }
    }

    // Global aggregation over an empty input still yields one row.
    if bound_groups.is_empty() && groups.is_empty() {
        let key = Tuple::empty();
        order.push(key.clone());
        groups.insert(
            key,
            aggregates.iter().map(|a| AggState::new(a.func)).collect(),
        );
    }

    let mut columns: Vec<ua_data::schema::Column> =
        group_by.iter().map(|g| g.column.clone()).collect();
    for a in aggregates {
        columns.push(ua_data::schema::Column::unqualified(&a.name));
    }
    let out_schema = Schema::new(columns);
    let mut rows: Vec<Tuple> = Vec::with_capacity(order.len());
    for key in order {
        let states = groups.remove(&key).expect("group recorded");
        let mut values: Vec<Value> = key.values().to_vec();
        for s in states {
            values.push(s.finish());
        }
        rows.push(Tuple::new(values));
    }
    let arity = out_schema.arity();
    let cols: Vec<ColumnVec> = (0..arity)
        .map(|c| ColumnVec::from_values(rows.iter().map(move |r| r.get(c).expect("arity"))))
        .collect();
    let len = rows.len();
    let batch = ColumnBatch::new(
        out_schema.clone(),
        cols,
        Bitmap::filled(len, true),
        Arc::new(vec![1u64; len]),
    );
    Ok(BatchStream {
        schema: out_schema,
        batches: if len == 0 { Vec::new() } else { vec![batch] },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::batches_from_encoded_table;
    use ua_data::tuple;
    use ua_engine::Table;

    #[test]
    fn distinct_keeps_differently_labeled_copies_apart() {
        // Same tuple twice with different labels: both must survive, like
        // the row engine's Distinct over the encoded (ua_c-bearing) rows.
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]).with_column(ua_core::UA_LABEL_COLUMN),
            vec![
                tuple![1i64, 0i64],
                tuple![1i64, 1i64],
                tuple![1i64, 0i64],
                tuple![2i64, 1i64],
            ],
        );
        let stream = batches_from_encoded_table(&t, "r", 2).unwrap();
        let out = distinct(stream);
        let rows: Vec<(Tuple, bool)> = out
            .batches
            .iter()
            .flat_map(|b| (0..b.len()).map(move |i| (b.row(i), b.labels().get(i))))
            .collect();
        assert_eq!(
            rows,
            vec![
                (tuple![1i64], false),
                (tuple![1i64], true),
                (tuple![2i64], true),
            ]
        );
    }
}
