//! Vectorized expression evaluation.
//!
//! Two entry points, both taking *bound* (positional) expressions:
//!
//! * [`truth_masks`] — evaluate a predicate under Kleene three-valued logic
//!   into a pair of bitmaps `(certainly true, certainly false)`. Conjunction
//!   and disjunction become word-wide AND/OR on the masks; comparisons get
//!   typed loops for the common column shapes and a per-row
//!   [`Value::sql_cmp`] fallback everywhere else, so the decisions are
//!   bit-identical to the row executor's `Expr::eval_truth`.
//! * [`eval_expr`] — evaluate a scalar expression to a column
//!   ([`Evaluated::Col`]) or an unexpanded constant ([`Evaluated::Const`]).
//!   Arithmetic gets typed kernels (dense `Int`/`Float` loops with the row
//!   engine's exact wrapping/promotion/NULL-division semantics; mixed
//!   columns drop to per-row `Value` arithmetic). Rare expression shapes
//!   fall back to row-at-a-time evaluation of the same `Expr::eval` the
//!   row engine uses — again guaranteeing agreement.
//!
//! On top of those sit the **fused** kernels the morsel pipeline uses to
//! evaluate a selection bitmap and consume it in the same pass:
//!
//! * [`filter_selection`] — predicate → surviving row positions (`None`
//!   when every row survives, so callers skip gathering entirely);
//! * [`project_selected`] — π over a selection vector: plain column
//!   references gather only their own column, computed expressions
//!   evaluate over the surviving rows only (never over rows the filter
//!   rejected — expression errors must match the row engine's
//!   filter-then-map behavior). One gather per *needed* column replaces
//!   the old gather-every-column-then-project two-pass shape.

use crate::bitmap::Bitmap;
use crate::columnar::{ColumnBatch, ColumnVec};
use std::cmp::Ordering;
use std::sync::Arc;
use ua_data::expr::{ArithOp, CmpOp, Expr, ExprError, Truth};
use ua_data::schema::Schema;
use ua_data::value::{Value, F64};
use ua_engine::EngineError;

/// The result of vectorized scalar evaluation.
pub enum Evaluated {
    /// A materialized column.
    Col(ColumnVec),
    /// A per-batch constant (not expanded unless needed).
    Const(Value),
}

impl Evaluated {
    /// The value at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Evaluated::Col(c) => c.value(i),
            Evaluated::Const(v) => v.clone(),
        }
    }

    /// Materialize as a column of `len` rows.
    pub fn into_column(self, len: usize) -> ColumnVec {
        match self {
            Evaluated::Col(c) => c,
            Evaluated::Const(v) => ColumnVec::broadcast(&v, len),
        }
    }
}

/// Evaluate `expr` over `batch` into a column/constant.
pub fn eval_expr(expr: &Expr, batch: &ColumnBatch) -> Result<Evaluated, EngineError> {
    Ok(match expr {
        Expr::Col(i) => Evaluated::Col(
            batch
                .columns()
                .get(*i)
                .cloned()
                .ok_or_else(|| EngineError::Sql(format!("column index {i} out of range")))?,
        ),
        Expr::Lit(v) => Evaluated::Const(v.clone()),
        Expr::Named(n) => {
            return Err(EngineError::Expr(ua_data::expr::ExprError::Unbound(
                n.clone(),
            )))
        }
        Expr::Arith(op, a, b) => {
            let ea = eval_expr(a, batch)?;
            let eb = eval_expr(b, batch)?;
            arith_kernel(*op, &ea, &eb, batch.len())?
        }
        Expr::Cmp(..)
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Not(..)
        | Expr::IsNull(..)
        | Expr::Between(..)
        | Expr::InList(..) => {
            // Predicates used as values follow SQL semantics:
            // Unknown ⇒ NULL, so the result is Bool unless unknowns occur.
            let (t, f) = truth_masks(expr, batch)?;
            let n = batch.len();
            let unknowns = n - t.count_ones() - f.count_ones();
            if unknowns == 0 {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(t.get(i));
                }
                Evaluated::Col(ColumnVec::Bool(Arc::new(out)))
            } else {
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(if t.get(i) {
                        Value::Bool(true)
                    } else if f.get(i) {
                        Value::Bool(false)
                    } else {
                        Value::Null
                    });
                }
                Evaluated::Col(ColumnVec::Mixed(Arc::new(out)))
            }
        }
        Expr::Case { .. } | Expr::Least(..) => row_fallback(expr, batch)?,
    })
}

/// One scalar arithmetic step with the row engine's exact semantics
/// (wrapping integers, int→float promotion, unknown ⇒ `NULL`, `NULL` on
/// division by zero) and its exact error text on a type mismatch.
fn value_arith(op: ArithOp, va: &Value, vb: &Value) -> Result<Value, EngineError> {
    let result = match op {
        ArithOp::Add => va.add(vb),
        ArithOp::Sub => va.sub(vb),
        ArithOp::Mul => va.mul(vb),
        ArithOp::Div => va.div(vb),
    };
    result
        .ok_or_else(|| EngineError::Expr(ExprError::Type(format!("cannot compute {va} {op} {vb}"))))
}

/// A numeric operand view over an evaluated sub-expression.
enum NumOperand<'a> {
    IntCol(&'a [i64]),
    FloatCol(&'a [F64]),
    IntConst(i64),
    FloatConst(f64),
}

impl NumOperand<'_> {
    fn classify<'a>(e: &'a Evaluated) -> Option<NumOperand<'a>> {
        match e {
            Evaluated::Col(ColumnVec::Int(v)) => Some(NumOperand::IntCol(v)),
            Evaluated::Col(ColumnVec::Float(v)) => Some(NumOperand::FloatCol(v)),
            Evaluated::Const(Value::Int(i)) => Some(NumOperand::IntConst(*i)),
            Evaluated::Const(Value::Float(f)) => Some(NumOperand::FloatConst(f.get())),
            _ => None,
        }
    }

    fn is_int(&self) -> bool {
        matches!(self, NumOperand::IntCol(_) | NumOperand::IntConst(_))
    }

    fn int_at(&self, i: usize) -> i64 {
        match self {
            NumOperand::IntCol(v) => v[i],
            NumOperand::IntConst(c) => *c,
            _ => unreachable!("int operand"),
        }
    }

    fn f64_at(&self, i: usize) -> f64 {
        match self {
            NumOperand::IntCol(v) => v[i] as f64,
            NumOperand::FloatCol(v) => v[i].get(),
            NumOperand::IntConst(c) => *c as f64,
            NumOperand::FloatConst(c) => *c,
        }
    }
}

/// Typed arithmetic kernel: dense `Int`/`Float` loops for the common
/// column shapes (no per-row `Value` construction), falling back to the
/// scalar `Value` semantics — bit-identical to the row engine — for mixed
/// or non-numeric columns. Division by zero yields `NULL`, demoting the
/// output to a mixed column only when a zero divisor actually occurs.
fn arith_kernel(
    op: ArithOp,
    ea: &Evaluated,
    eb: &Evaluated,
    n: usize,
) -> Result<Evaluated, EngineError> {
    // Constant folding: one scalar step, never expanded.
    if let (Evaluated::Const(va), Evaluated::Const(vb)) = (ea, eb) {
        return Ok(Evaluated::Const(value_arith(op, va, vb)?));
    }
    match (NumOperand::classify(ea), NumOperand::classify(eb)) {
        (Some(a), Some(b)) if a.is_int() && b.is_int() => match op {
            ArithOp::Add => Ok(Evaluated::Col(ColumnVec::Int(Arc::new(
                (0..n)
                    .map(|i| a.int_at(i).wrapping_add(b.int_at(i)))
                    .collect(),
            )))),
            ArithOp::Sub => Ok(Evaluated::Col(ColumnVec::Int(Arc::new(
                (0..n)
                    .map(|i| a.int_at(i).wrapping_sub(b.int_at(i)))
                    .collect(),
            )))),
            ArithOp::Mul => Ok(Evaluated::Col(ColumnVec::Int(Arc::new(
                (0..n)
                    .map(|i| a.int_at(i).wrapping_mul(b.int_at(i)))
                    .collect(),
            )))),
            ArithOp::Div => {
                if (0..n).any(|i| b.int_at(i) == 0) {
                    let vals: Vec<Value> = (0..n)
                        .map(|i| match b.int_at(i) {
                            0 => Value::Null,
                            d => Value::Int(a.int_at(i).wrapping_div(d)),
                        })
                        .collect();
                    Ok(Evaluated::Col(ColumnVec::Mixed(Arc::new(vals))))
                } else {
                    Ok(Evaluated::Col(ColumnVec::Int(Arc::new(
                        (0..n)
                            .map(|i| a.int_at(i).wrapping_div(b.int_at(i)))
                            .collect(),
                    ))))
                }
            }
        },
        (Some(a), Some(b)) => match op {
            ArithOp::Add => Ok(Evaluated::Col(ColumnVec::Float(Arc::new(
                (0..n)
                    .map(|i| F64::new(a.f64_at(i) + b.f64_at(i)))
                    .collect(),
            )))),
            ArithOp::Sub => Ok(Evaluated::Col(ColumnVec::Float(Arc::new(
                (0..n)
                    .map(|i| F64::new(a.f64_at(i) - b.f64_at(i)))
                    .collect(),
            )))),
            ArithOp::Mul => Ok(Evaluated::Col(ColumnVec::Float(Arc::new(
                (0..n)
                    .map(|i| F64::new(a.f64_at(i) * b.f64_at(i)))
                    .collect(),
            )))),
            ArithOp::Div => {
                if (0..n).any(|i| b.f64_at(i) == 0.0) {
                    let vals: Vec<Value> = (0..n)
                        .map(|i| {
                            let d = b.f64_at(i);
                            if d == 0.0 {
                                Value::Null
                            } else {
                                Value::float(a.f64_at(i) / d)
                            }
                        })
                        .collect();
                    Ok(Evaluated::Col(ColumnVec::Mixed(Arc::new(vals))))
                } else {
                    Ok(Evaluated::Col(ColumnVec::Float(Arc::new(
                        (0..n)
                            .map(|i| F64::new(a.f64_at(i) / b.f64_at(i)))
                            .collect(),
                    ))))
                }
            }
        },
        // Mixed / non-numeric columns: scalar semantics per row, reporting
        // the first failing row like the row engine's loop.
        _ => {
            let mut out: Vec<Value> = Vec::with_capacity(n);
            for i in 0..n {
                out.push(value_arith(op, &ea.value_at(i), &eb.value_at(i))?);
            }
            Ok(Evaluated::Col(ColumnVec::from_values(out.iter())))
        }
    }
}

/// Row-at-a-time fallback for expression shapes without a dedicated kernel:
/// materializes each row as a tuple and reuses the scalar evaluator, then
/// re-sniffs the output into the densest column representation.
fn row_fallback(expr: &Expr, batch: &ColumnBatch) -> Result<Evaluated, EngineError> {
    let mut out = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        let row = batch.row(i);
        out.push(expr.eval(&row).map_err(EngineError::Expr)?);
    }
    Ok(Evaluated::Col(ColumnVec::from_values(out.iter())))
}

/// Evaluate a (bound) predicate over `batch` into a selection vector: the
/// positions whose predicate is certainly true, or `None` when every row
/// survives (callers then reuse the input batch as-is).
pub fn filter_selection(
    bound: &Expr,
    batch: &ColumnBatch,
) -> Result<Option<Vec<u32>>, EngineError> {
    let (t, _f) = truth_masks(bound, batch)?;
    if t.all_ones() {
        Ok(None)
    } else {
        Ok(Some(t.ones()))
    }
}

/// Fused σ→π kernel: project `exprs` over the rows of `batch` at `sel`
/// (`None` = all rows). Column references gather just their own column;
/// literals broadcast; anything else evaluates over a lazily-gathered
/// survivor batch, so computed expressions never see rejected rows. Labels
/// and multiplicities ride along with the selection.
pub fn project_selected(
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    exprs: &[Expr],
    out_schema: &Schema,
) -> Result<ColumnBatch, EngineError> {
    match sel {
        None => {
            let cols: Vec<ColumnVec> = exprs
                .iter()
                .map(|e| Ok(eval_expr(e, batch)?.into_column(batch.len())))
                .collect::<Result<_, EngineError>>()?;
            Ok(ColumnBatch::new(
                out_schema.clone(),
                cols,
                batch.labels().clone(),
                Arc::new(batch.mults().to_vec()),
            ))
        }
        Some(sel) => {
            let mut gathered: Option<ColumnBatch> = None;
            let cols: Vec<ColumnVec> = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(i) => Ok(batch
                        .columns()
                        .get(*i)
                        .ok_or_else(|| EngineError::Sql(format!("column index {i} out of range")))?
                        .gather(sel)),
                    Expr::Lit(v) => Ok(ColumnVec::broadcast(v, sel.len())),
                    other => {
                        let g = gathered.get_or_insert_with(|| batch.gather(sel));
                        Ok(eval_expr(other, g)?.into_column(sel.len()))
                    }
                })
                .collect::<Result<_, EngineError>>()?;
            let labels = batch.labels().gather(sel);
            let mults: Vec<u64> = sel.iter().map(|&i| batch.mults()[i as usize]).collect();
            Ok(ColumnBatch::new(
                out_schema.clone(),
                cols,
                labels,
                Arc::new(mults),
            ))
        }
    }
}

/// Evaluate a (bound) scalar expression over the rows of `batch` at `sel`
/// (`None` = all rows), without evaluating on unselected rows — the fused
/// σ→probe path uses this for hash-key evaluation so error-capable key
/// expressions only ever see filter survivors, like the row engine's
/// filter-below-join.
pub fn eval_selected(
    expr: &Expr,
    batch: &ColumnBatch,
    sel: Option<&[u32]>,
    gathered: &mut Option<ColumnBatch>,
) -> Result<Evaluated, EngineError> {
    match sel {
        None => eval_expr(expr, batch),
        Some(sel) => match expr {
            Expr::Col(i) => Ok(Evaluated::Col(
                batch
                    .columns()
                    .get(*i)
                    .ok_or_else(|| EngineError::Sql(format!("column index {i} out of range")))?
                    .gather(sel),
            )),
            Expr::Lit(v) => Ok(Evaluated::Const(v.clone())),
            other => {
                let g = gathered.get_or_insert_with(|| batch.gather(sel));
                eval_expr(other, g)
            }
        },
    }
}

/// Evaluate a predicate into `(certainly_true, certainly_false)` masks.
/// Rows in neither mask evaluated to `Unknown`.
pub fn truth_masks(expr: &Expr, batch: &ColumnBatch) -> Result<(Bitmap, Bitmap), EngineError> {
    let n = batch.len();
    Ok(match expr {
        Expr::Cmp(op, a, b) => {
            let ea = eval_expr(a, batch)?;
            let eb = eval_expr(b, batch)?;
            cmp_masks(*op, &ea, &eb, n)
        }
        Expr::And(a, b) => {
            let (mut ta, mut fa) = truth_masks(a, batch)?;
            let (tb, fb) = truth_masks(b, batch)?;
            ta.and_assign(&tb);
            fa.or_assign(&fb);
            (ta, fa)
        }
        Expr::Or(a, b) => {
            let (mut ta, mut fa) = truth_masks(a, batch)?;
            let (tb, fb) = truth_masks(b, batch)?;
            ta.or_assign(&tb);
            fa.and_assign(&fb);
            (ta, fa)
        }
        Expr::Not(a) => {
            let (t, f) = truth_masks(a, batch)?;
            (f, t)
        }
        Expr::IsNull(a) => {
            let ea = eval_expr(a, batch)?;
            let mut t = Bitmap::filled(n, false);
            match &ea {
                Evaluated::Const(v) => {
                    if v.is_unknown() {
                        t = Bitmap::filled(n, true);
                    }
                }
                Evaluated::Col(ColumnVec::Mixed(vals)) => {
                    for (i, v) in vals.iter().enumerate() {
                        if v.is_unknown() {
                            t.set(i, true);
                        }
                    }
                }
                // Typed columns never hold nulls by construction.
                Evaluated::Col(_) => {}
            }
            let mut f = Bitmap::filled(n, true);
            for i in t.ones() {
                f.set(i as usize, false);
            }
            (t, f)
        }
        Expr::Between(e, lo, hi) => {
            let ge_lo = Expr::Cmp(CmpOp::Ge, e.clone(), lo.clone());
            let le_hi = Expr::Cmp(CmpOp::Le, e.clone(), hi.clone());
            let (mut t, mut f) = truth_masks(&ge_lo, batch)?;
            let (t2, f2) = truth_masks(&le_hi, batch)?;
            t.and_assign(&t2);
            f.or_assign(&f2);
            (t, f)
        }
        Expr::InList(e, list) => {
            // acc = False; acc = acc OR (e = item) — mirrors the scalar
            // fold, including Kleene handling of unknown memberships.
            let mut t = Bitmap::filled(n, false);
            let mut f = Bitmap::filled(n, true);
            for item in list {
                let eq = Expr::Cmp(CmpOp::Eq, e.clone(), Box::new(item.clone()));
                let (t2, f2) = truth_masks(&eq, batch)?;
                t.or_assign(&t2);
                f.and_assign(&f2);
            }
            (t, f)
        }
        other => {
            // Bool columns/constants and the row-fallback shapes.
            let ev = eval_expr(other, batch)?;
            let mut t = Bitmap::filled(n, false);
            let mut f = Bitmap::filled(n, false);
            match &ev {
                Evaluated::Const(v) => match truth_of(v)? {
                    Truth::True => t = Bitmap::filled(n, true),
                    Truth::False => f = Bitmap::filled(n, true),
                    Truth::Unknown => {}
                },
                Evaluated::Col(ColumnVec::Bool(vals)) => {
                    for (i, &b) in vals.iter().enumerate() {
                        if b {
                            t.set(i, true);
                        } else {
                            f.set(i, true);
                        }
                    }
                }
                Evaluated::Col(ColumnVec::Mixed(vals)) => {
                    for (i, v) in vals.iter().enumerate() {
                        match truth_of(v)? {
                            Truth::True => t.set(i, true),
                            Truth::False => f.set(i, true),
                            Truth::Unknown => {}
                        }
                    }
                }
                Evaluated::Col(_) => {
                    return Err(EngineError::Expr(ua_data::expr::ExprError::Type(
                        "predicate column is not boolean".into(),
                    )))
                }
            }
            (t, f)
        }
    })
}

fn truth_of(v: &Value) -> Result<Truth, EngineError> {
    match v {
        Value::Bool(b) => Ok(Truth::from_bool(*b)),
        Value::Null | Value::Var(_) => Ok(Truth::Unknown),
        other => Err(EngineError::Expr(ua_data::expr::ExprError::Type(format!(
            "{other} is not a boolean"
        )))),
    }
}

fn masks_from_ords(
    op: CmpOp,
    n: usize,
    ord_at: impl Fn(usize) -> Option<Ordering>,
) -> (Bitmap, Bitmap) {
    let mut t = Bitmap::filled(n, false);
    let mut f = Bitmap::filled(n, false);
    for i in 0..n {
        if let Some(ord) = ord_at(i) {
            if op.test(ord) {
                t.set(i, true);
            } else {
                f.set(i, true);
            }
        }
    }
    (t, f)
}

fn cmp_masks(op: CmpOp, a: &Evaluated, b: &Evaluated, n: usize) -> (Bitmap, Bitmap) {
    use ColumnVec::*;
    use Evaluated::*;
    match (a, b) {
        // Typed fast paths: plain `Ord` loops, no Value construction.
        (Col(Int(x)), Col(Int(y))) => masks_from_ords(op, n, |i| Some(x[i].cmp(&y[i]))),
        (Col(Int(x)), Const(Value::Int(c))) => masks_from_ords(op, n, |i| Some(x[i].cmp(c))),
        (Const(Value::Int(c)), Col(Int(y))) => masks_from_ords(op, n, |i| Some(c.cmp(&y[i]))),
        (Col(Float(x)), Col(Float(y))) => masks_from_ords(op, n, |i| Some(x[i].cmp(&y[i]))),
        (Col(Float(x)), Const(Value::Float(c))) => masks_from_ords(op, n, |i| Some(x[i].cmp(c))),
        (Const(Value::Float(c)), Col(Float(y))) => masks_from_ords(op, n, |i| Some(c.cmp(&y[i]))),
        (Col(Str(x)), Col(Str(y))) => {
            masks_from_ords(op, n, |i| Some(x[i].as_ref().cmp(y[i].as_ref())))
        }
        (Col(Str(x)), Const(Value::Str(c))) => {
            masks_from_ords(op, n, |i| Some(x[i].as_ref().cmp(c.as_ref())))
        }
        (Const(Value::Str(c)), Col(Str(y))) => {
            masks_from_ords(op, n, |i| Some(c.as_ref().cmp(y[i].as_ref())))
        }
        // Constant-constant: decide once, broadcast.
        (Const(va), Const(vb)) => {
            let ord = va.sql_cmp(vb);
            match ord {
                Some(ord) => {
                    if op.test(ord) {
                        (Bitmap::filled(n, true), Bitmap::filled(n, false))
                    } else {
                        (Bitmap::filled(n, false), Bitmap::filled(n, true))
                    }
                }
                None => (Bitmap::filled(n, false), Bitmap::filled(n, false)),
            }
        }
        // Everything else (numeric promotions, Mixed columns, type
        // mismatches): per-row SQL comparison semantics.
        _ => masks_from_ords(op, n, |i| a.value_at(i).sql_cmp(&b.value_at(i))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::columnar::batches_from_table;
    use ua_data::schema::Schema;
    use ua_data::tuple;
    use ua_data::tuple::Tuple;
    use ua_data::value::VarId;
    use ua_engine::Table;

    fn batch(rows: Vec<Tuple>, cols: &[&str]) -> ColumnBatch {
        let t = Table::from_rows(Schema::qualified("t", cols.iter().copied()), rows);
        batches_from_table(&t, 4096)
            .batches
            .into_iter()
            .next()
            .unwrap()
    }

    fn bind(e: Expr, cols: &[&str]) -> Expr {
        e.bind(&Schema::qualified("t", cols.iter().copied()))
            .unwrap()
    }

    /// Exhaustive agreement with the scalar evaluator over a batch.
    fn assert_matches_scalar(expr: &Expr, b: &ColumnBatch) {
        let (t, f) = truth_masks(expr, b).unwrap();
        for i in 0..b.len() {
            let scalar = expr.eval_truth(&b.row(i)).unwrap();
            let vec = if t.get(i) {
                Truth::True
            } else if f.get(i) {
                Truth::False
            } else {
                Truth::Unknown
            };
            assert_eq!(scalar, vec, "row {i} of {expr}");
        }
    }

    #[test]
    fn typed_int_comparison() {
        let b = batch((0..100i64).map(|i| tuple![i, i % 7]).collect(), &["a", "b"]);
        for op_expr in [
            bind(Expr::named("a").lt(Expr::lit(50i64)), &["a", "b"]),
            bind(Expr::named("a").eq(Expr::named("b")), &["a", "b"]),
            bind(Expr::named("a").ge(Expr::lit(99i64)), &["a", "b"]),
        ] {
            assert_matches_scalar(&op_expr, &b);
        }
    }

    #[test]
    fn string_and_promotion_comparisons() {
        let b = batch(
            (0..40i64)
                .map(|i| tuple![format!("k{}", i % 5), i])
                .collect(),
            &["s", "n"],
        );
        assert_matches_scalar(&bind(Expr::named("s").eq(Expr::lit("k3")), &["s", "n"]), &b);
        // Int column vs float literal exercises the promotion fallback.
        assert_matches_scalar(&bind(Expr::named("n").lt(Expr::lit(19.5)), &["s", "n"]), &b);
    }

    #[test]
    fn three_valued_logic_with_nulls_and_vars() {
        let rows = vec![
            tuple![1i64, 1i64],
            Tuple::new(vec![Value::Null, Value::Int(2)]),
            Tuple::new(vec![Value::Var(VarId(3)), Value::Int(3)]),
            tuple![4i64, 0i64],
        ];
        let b = batch(rows, &["a", "b"]);
        let exprs = [
            bind(Expr::named("a").eq(Expr::lit(1i64)), &["a", "b"]),
            bind(
                Expr::named("a")
                    .eq(Expr::lit(1i64))
                    .or(Expr::named("b").gt(Expr::lit(1i64))),
                &["a", "b"],
            ),
            bind(Expr::named("a").eq(Expr::lit(1i64)).not(), &["a", "b"]),
            bind(Expr::IsNull(Box::new(Expr::named("a"))), &["a", "b"]),
            bind(
                Expr::named("a").between(Expr::lit(1i64), Expr::lit(3i64)),
                &["a", "b"],
            ),
            bind(
                Expr::InList(
                    Box::new(Expr::named("a")),
                    vec![Expr::lit(1i64), Expr::Lit(Value::Null)],
                ),
                &["a", "b"],
            ),
        ];
        for e in &exprs {
            assert_matches_scalar(e, &b);
        }
    }

    #[test]
    fn var_self_equality_is_certain() {
        let x = Value::Var(VarId(7));
        let rows = vec![Tuple::new(vec![x.clone(), x])];
        let b = batch(rows, &["a", "b"]);
        let e = bind(Expr::named("a").eq(Expr::named("b")), &["a", "b"]);
        let (t, _) = truth_masks(&e, &b).unwrap();
        assert!(t.get(0), "x = x must be certainly true");
    }

    #[test]
    fn typed_arithmetic_kernels_match_scalar_semantics() {
        // Int columns (wrapping, div-by-zero → NULL), float promotion,
        // mixed columns with NULLs and variables: every shape must agree
        // with `Expr::eval` row by row — and the dense shapes must stay in
        // typed columns.
        let int_rows: Vec<Tuple> = (0..64i64)
            .map(|i| tuple![i - 32, (i % 5) - 2, i as f64 / 4.0])
            .collect();
        let b = batch(int_rows, &["a", "b", "f"]);
        let cols = &["a", "b", "f"];
        let cases = [
            bind(Expr::named("a").add(Expr::named("b")), cols),
            bind(Expr::named("a").sub(Expr::lit(7i64)), cols),
            bind(Expr::named("a").mul(Expr::named("b")), cols),
            bind(
                Expr::Arith(
                    ua_data::expr::ArithOp::Div,
                    Box::new(Expr::named("a")),
                    Box::new(Expr::named("b")),
                ),
                cols,
            ),
            bind(Expr::named("f").add(Expr::named("a")), cols),
            bind(Expr::named("f").mul(Expr::lit(2.5)), cols),
            bind(
                Expr::Arith(
                    ua_data::expr::ArithOp::Div,
                    Box::new(Expr::named("a")),
                    Box::new(Expr::named("f")),
                ),
                cols,
            ),
            bind(Expr::lit(i64::MAX).add(Expr::named("a")), cols),
        ];
        for e in &cases {
            let col = eval_expr(e, &b).unwrap().into_column(b.len());
            for i in 0..b.len() {
                assert_eq!(col.value(i), e.eval(&b.row(i)).unwrap(), "row {i} of {e}");
            }
        }
        // Dense typing: Int±Int stays Int; Float mixes stay Float.
        let int_col = eval_expr(&cases[0], &b).unwrap().into_column(b.len());
        assert!(matches!(int_col, ColumnVec::Int(_)));
        let float_col = eval_expr(&cases[4], &b).unwrap().into_column(b.len());
        assert!(matches!(float_col, ColumnVec::Float(_)));

        // Mixed column with NULL/variable operands.
        let rows = vec![
            tuple![1i64, 4i64],
            Tuple::new(vec![Value::Null, Value::Int(2)]),
            Tuple::new(vec![Value::Var(VarId(1)), Value::Int(3)]),
        ];
        let bm = batch(rows, &["a", "b"]);
        let e = bind(Expr::named("a").add(Expr::named("b")), &["a", "b"]);
        let col = eval_expr(&e, &bm).unwrap().into_column(bm.len());
        for i in 0..bm.len() {
            assert_eq!(col.value(i), e.eval(&bm.row(i)).unwrap());
        }
        // A type error surfaces with the scalar evaluator's message.
        let bad_rows = vec![tuple!["x", 1i64]];
        let bb = batch(bad_rows, &["s", "n"]);
        let bad = bind(Expr::named("s").add(Expr::named("n")), &["s", "n"]);
        let kernel_err = match eval_expr(&bad, &bb) {
            Err(e) => format!("{e}"),
            Ok(_) => panic!("string + int must be a type error"),
        };
        let scalar_err = format!("{}", EngineError::Expr(bad.eval(&bb.row(0)).unwrap_err()));
        assert_eq!(kernel_err, scalar_err);
    }

    #[test]
    fn scalar_eval_matches_row_engine() {
        let b = batch((0..50i64).map(|i| tuple![i, i * 3]).collect(), &["a", "b"]);
        let e = bind(
            Expr::named("a").add(Expr::named("b")).mul(Expr::lit(2i64)),
            &["a", "b"],
        );
        let col = eval_expr(&e, &b).unwrap().into_column(b.len());
        for i in 0..b.len() {
            assert_eq!(col.value(i), e.eval(&b.row(i)).unwrap());
        }
        // CASE goes through the row fallback.
        let case = bind(
            Expr::Case {
                branches: vec![(Expr::named("a").lt(Expr::lit(10i64)), Expr::lit("small"))],
                otherwise: Some(Box::new(Expr::lit("big"))),
            },
            &["a", "b"],
        );
        let col = eval_expr(&case, &b).unwrap().into_column(b.len());
        for i in 0..b.len() {
            assert_eq!(col.value(i), case.eval(&b.row(i)).unwrap());
        }
    }
}
