//! **ua-vecexec** — a batch-oriented, columnar execution engine for UA-DBs.
//!
//! The row executor in `ua-engine` interprets plans tuple at a time and pays
//! a pair-semiring call per tuple for UA label propagation. This crate runs
//! the *same* [`Plan`](ua_engine::plan::Plan)s over [`columnar::ColumnBatch`]es
//! (~1024-row typed column vectors) and carries the paper's certain/uncertain
//! annotation as a per-batch **label bitmap** plus a `u64` multiplicity
//! column, so selection, projection, join and union propagate labels with
//! bitwise operations (`min(C₁, C₂)` on `{0,1}` markers ≡ bitwise AND).
//!
//! Layout:
//!
//! * [`bitmap`] — packed bitmaps for predicate masks and label vectors;
//! * [`columnar`] — [`columnar::ColumnBatch`], typed
//!   [`columnar::ColumnVec`]s, and lossless converters to/from
//!   [`ua_engine::Table`] and [`ua_data::Relation`]`<u64>`;
//! * [`kernels`] — vectorized expression/predicate evaluation, bit-exact
//!   with the row engine's scalar `Expr` evaluator, plus the fused
//!   selection-consuming kernels (σ→π, σ→probe);
//! * [`ops`] — the operators (filter, project, hash/nested-loop join,
//!   union, distinct, aggregate, columnar sort, fused Top-K, limit),
//!   order-compatible with the row executor;
//! * [`exec`] — the morsel-driven plan driver ([`execute_vectorized`]):
//!   per-batch pipelines run on a work-stealing thread pool (offline
//!   `rayon` shim) and merge in deterministic batch-index order, so
//!   parallel output is byte-identical to serial;
//! * [`ua`] — the UA path ([`execute_ua_vectorized`]): `⟦·⟧_UA` realized as
//!   bitmap propagation instead of plan rewriting, sharing the same
//!   parallel driver (Sort/Limit/Top-K included — no row-engine fallback).
//!
//! ## Opting in
//!
//! ```
//! ua_vecexec::install(); // register with the engine (idempotent)
//! let session = ua_engine::UaSession::new();
//! session.set_exec_mode(ua_engine::ExecMode::Vectorized);
//! // session.query_ua(...) / session.query_det(...) now run vectorized.
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod au_exec;
pub mod bitmap;
pub mod columnar;
pub mod exec;
pub mod kernels;
pub mod ops;
pub mod ua;

pub use au_exec::{execute_au_vectorized, execute_au_vectorized_opts};
pub use columnar::{
    batches_from_relation, batches_from_table, batches_from_table_pooled, relation_from_batches,
    table_from_batches, table_from_batches_pooled, BatchStream, ColumnBatch, ColumnVec,
    DEFAULT_BATCH_ROWS,
};
pub use exec::{exec_stream, execute_vectorized, execute_vectorized_opts, resolve_threads};
pub use ua::{execute_ua_vectorized, execute_ua_vectorized_opts, ua_stream};

/// Register the vectorized executor with `ua-engine` so sessions can select
/// [`ua_engine::ExecMode::Vectorized`]. Idempotent; call once anywhere
/// before querying.
pub fn install() {
    ua_engine::register_vectorized_hooks(ua_engine::VectorizedHooks {
        plan: execute_vectorized_opts,
        ua: execute_ua_vectorized_opts,
        au: au_exec::execute_au_vectorized_opts,
    });
}

#[cfg(test)]
mod tests {
    use ua_data::schema::Schema;
    use ua_data::tuple;
    use ua_engine::{ExecMode, Table, UaSession};

    #[test]
    fn session_opt_in_end_to_end() {
        super::install();
        let session = UaSession::new();
        assert_eq!(session.exec_mode(), ExecMode::Row);
        session.set_exec_mode(ExecMode::Vectorized);
        assert_eq!(session.exec_mode(), ExecMode::Vectorized);
        session.register_table(
            "addr",
            Table::from_rows(
                Schema::qualified("addr", ["xid", "aid", "p", "id", "locale"]),
                vec![
                    tuple![1i64, 1i64, 1.0, 1i64, "Lasalle"],
                    tuple![2i64, 1i64, 0.6, 2i64, "Tucson"],
                    tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry"],
                ],
            ),
        );
        let result = session
            .query_ua("SELECT id, locale FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p)")
            .unwrap();
        let rows = result.rows_with_certainty();
        assert_eq!(rows.len(), 2);
        let certain: Vec<bool> = {
            let mut sorted = rows.clone();
            sorted.sort();
            sorted.into_iter().map(|(_, c)| c).collect()
        };
        assert_eq!(certain, vec![true, false]);
    }

    #[test]
    fn install_registers_hooks() {
        super::install();
        assert!(ua_engine::vectorized_hooks().is_some());
    }
}
