//! Dense bitmaps: predicate masks and per-batch UA label vectors.
//!
//! One bit per row, packed into `u64` words. The UA certainty marker of a
//! batch lives here (bit set = the row copy is labeled *certain*), so label
//! propagation through the `⟦·⟧_UA` rules becomes word-wide bitwise
//! arithmetic: selection masks AND into labels implicitly via row gathers,
//! and the join rule `min(C₁, C₂)` over `{0, 1}` markers is a bitwise AND.

/// A fixed-length bit vector.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// A bitmap of `len` bits, all set to `bit`.
    pub fn filled(len: usize, bit: bool) -> Bitmap {
        let words = len.div_ceil(64);
        let mut bm = Bitmap {
            words: vec![if bit { !0u64 } else { 0 }; words],
            len,
        };
        bm.clear_tail();
        bm
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Set the bit at `i` to `bit`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            *self.words.last_mut().expect("word present") |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every bit is set.
    pub fn all_ones(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Word-wise in-place AND (both operands must have equal length).
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Word-wise in-place OR.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Positions of all set bits, in order — the selection vector of a
    /// predicate mask.
    pub fn ones(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones());
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((wi as u32) * 64 + bit);
                w &= w - 1;
            }
        }
        out
    }

    /// The bits at `idx`, in order (`idx` entries must be in range).
    pub fn gather(&self, idx: &[u32]) -> Bitmap {
        let mut out = Bitmap::filled(idx.len(), false);
        for (o, &i) in idx.iter().enumerate() {
            if self.get(i as usize) {
                out.set(o, true);
            }
        }
        out
    }

    /// Append all of `other`'s bits, word-wise: whole-word copies when this
    /// bitmap ends on a word boundary, a shift-and-or pass otherwise —
    /// never per-bit work. Relies on the invariant (maintained by every
    /// constructor and mutator here) that bits past `len` in the last word
    /// are zero.
    pub fn extend(&mut self, other: &Bitmap) {
        let r = self.len % 64;
        if r == 0 {
            self.words.extend_from_slice(&other.words);
        } else {
            for &w in &other.words {
                *self.words.last_mut().expect("r != 0 implies a word") |= w << r;
                self.words.push(w >> (64 - r));
            }
        }
        self.len += other.len;
        // The shift pass may have pushed one word past the end.
        self.words.truncate(self.len.div_ceil(64));
    }

    /// Concatenate bitmaps in order.
    pub fn concat<'a>(parts: impl IntoIterator<Item = &'a Bitmap>) -> Bitmap {
        let mut out = Bitmap::new();
        for part in parts {
            out.extend(part);
        }
        out
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_get_set() {
        let mut bm = Bitmap::filled(70, true);
        assert_eq!(bm.len(), 70);
        assert_eq!(bm.count_ones(), 70);
        assert!(bm.all_ones());
        bm.set(69, false);
        assert!(!bm.get(69));
        assert!(bm.get(68));
        assert_eq!(bm.count_ones(), 69);
        assert!(!bm.all_ones());
    }

    #[test]
    fn push_and_ones() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        let ones = bm.ones();
        assert!(ones.iter().all(|&i| i % 3 == 0));
        assert_eq!(ones.len(), bm.count_ones());
        assert_eq!(ones.len(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn and_or() {
        let mut a = Bitmap::filled(100, false);
        let mut b = Bitmap::filled(100, false);
        for i in 0..100 {
            a.set(i, i % 2 == 0);
            b.set(i, i % 3 == 0);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.count_ones(), (0..100).filter(|i| i % 6 == 0).count());
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(
            or.count_ones(),
            (0..100).filter(|i| i % 2 == 0 || i % 3 == 0).count()
        );
    }

    #[test]
    fn gather_and_concat() {
        let mut bm = Bitmap::filled(10, false);
        bm.set(1, true);
        bm.set(4, true);
        let g = bm.gather(&[4, 0, 1, 1]);
        assert_eq!(
            (0..4).map(|i| g.get(i)).collect::<Vec<_>>(),
            vec![true, false, true, true]
        );
        let c = Bitmap::concat([&bm, &g]);
        assert_eq!(c.len(), 14);
        assert_eq!(c.count_ones(), 2 + 3);
        assert!(c.get(10) && !c.get(11) && c.get(12) && c.get(13));
    }

    #[test]
    fn filled_tail_is_clean() {
        let bm = Bitmap::filled(65, true);
        assert_eq!(bm.count_ones(), 65);
        assert!(bm.all_ones());
    }

    #[test]
    fn extend_matches_per_bit_reference_across_alignments() {
        // Sweep unaligned lengths straddling word boundaries.
        for a_len in [0usize, 1, 63, 64, 65, 130] {
            for b_len in [0usize, 1, 62, 64, 100] {
                let mut a = Bitmap::filled(a_len, false);
                for i in 0..a_len {
                    a.set(i, i % 3 == 0);
                }
                let mut b = Bitmap::filled(b_len, false);
                for i in 0..b_len {
                    b.set(i, i % 2 == 0);
                }
                let mut fast = a.clone();
                fast.extend(&b);
                let mut slow = a.clone();
                for i in 0..b_len {
                    slow.push(b.get(i));
                }
                assert_eq!(fast, slow, "a_len={a_len} b_len={b_len}");
                assert_eq!(fast.len(), a_len + b_len);
                // Tail invariant survives: filling the rest stays consistent.
                assert_eq!(fast.count_ones(), slow.count_ones());
            }
        }
    }
}
