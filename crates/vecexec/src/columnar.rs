//! Columnar batches and lossless converters to/from the row world.
//!
//! A [`ColumnBatch`] holds ~[`DEFAULT_BATCH_ROWS`] rows decomposed into
//! typed column vectors ([`ColumnVec`]), plus the two UA sidecars the paper's
//! encoding needs:
//!
//! * a **label bitmap** — one bit per row copy, set iff the copy is labeled
//!   certain (the `ua_c` marker of Definition 8, packed 64 rows per word);
//! * a **multiplicity column** — `u64` per row, so a batch can also
//!   represent an annotation-map [`Relation<u64>`] without expanding
//!   duplicates.
//!
//! Converters are lossless both ways: `Table` ⇄ batches (row copies,
//! multiplicity 1) and `Relation<u64>` ⇄ batches (support tuples with their
//! annotations).

use crate::bitmap::Bitmap;
use std::sync::Arc;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, F64};
use ua_engine::storage::Table;
use ua_engine::EngineError;

/// Default number of rows per batch: small enough for L1/L2-resident
/// columns, large enough to amortize per-batch dispatch.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// A typed column vector. Columns whose values are uniformly one scalar
/// type get a dense representation; anything else (SQL nulls, labeled
/// nulls, mixed types) falls back to [`ColumnVec::Mixed`], which is always
/// correct. Buffers are `Arc`-shared so projections of plain column
/// references are O(1).
#[derive(Clone, PartialEq, Debug)]
pub enum ColumnVec {
    /// All values are `Value::Int`.
    Int(Arc<Vec<i64>>),
    /// All values are `Value::Float`.
    Float(Arc<Vec<F64>>),
    /// All values are `Value::Bool`.
    Bool(Arc<Vec<bool>>),
    /// All values are `Value::Str`.
    Str(Arc<Vec<Arc<str>>>),
    /// Arbitrary values (nulls, labeled nulls, mixed types).
    Mixed(Arc<Vec<Value>>),
}

impl ColumnVec {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVec::Int(v) => v.len(),
            ColumnVec::Float(v) => v.len(),
            ColumnVec::Bool(v) => v.len(),
            ColumnVec::Str(v) => v.len(),
            ColumnVec::Mixed(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `i` (cloned out; cheap for scalars, an `Arc` bump for
    /// strings).
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnVec::Int(v) => Value::Int(v[i]),
            ColumnVec::Float(v) => Value::Float(v[i]),
            ColumnVec::Bool(v) => Value::Bool(v[i]),
            ColumnVec::Str(v) => Value::Str(Arc::clone(&v[i])),
            ColumnVec::Mixed(v) => v[i].clone(),
        }
    }

    /// Build a column from a value sequence, picking the densest
    /// representation that holds every value.
    pub fn from_values<'a>(values: impl Iterator<Item = &'a Value> + Clone) -> ColumnVec {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Bool,
            Str,
            Mixed,
        }
        let mut kind = Kind::Unknown;
        for v in values.clone() {
            let this = match v {
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Str(_) => Kind::Str,
                Value::Null | Value::Var(_) => Kind::Mixed,
            };
            kind = match (kind, this) {
                (Kind::Unknown, k) => k,
                (k, t) if k == t => k,
                _ => Kind::Mixed,
            };
            if kind == Kind::Mixed {
                break;
            }
        }
        match kind {
            Kind::Int => ColumnVec::Int(Arc::new(
                values
                    .map(|v| match v {
                        Value::Int(i) => *i,
                        _ => unreachable!("sniffed Int column"),
                    })
                    .collect(),
            )),
            Kind::Float => ColumnVec::Float(Arc::new(
                values
                    .map(|v| match v {
                        Value::Float(f) => *f,
                        _ => unreachable!("sniffed Float column"),
                    })
                    .collect(),
            )),
            Kind::Bool => ColumnVec::Bool(Arc::new(
                values
                    .map(|v| match v {
                        Value::Bool(b) => *b,
                        _ => unreachable!("sniffed Bool column"),
                    })
                    .collect(),
            )),
            Kind::Str => ColumnVec::Str(Arc::new(
                values
                    .map(|v| match v {
                        Value::Str(s) => Arc::clone(s),
                        _ => unreachable!("sniffed Str column"),
                    })
                    .collect(),
            )),
            Kind::Unknown | Kind::Mixed => ColumnVec::Mixed(Arc::new(values.cloned().collect())),
        }
    }

    /// A column holding `value` repeated `len` times.
    pub fn broadcast(value: &Value, len: usize) -> ColumnVec {
        match value {
            Value::Int(i) => ColumnVec::Int(Arc::new(vec![*i; len])),
            Value::Float(f) => ColumnVec::Float(Arc::new(vec![*f; len])),
            Value::Bool(b) => ColumnVec::Bool(Arc::new(vec![*b; len])),
            Value::Str(s) => ColumnVec::Str(Arc::new(vec![Arc::clone(s); len])),
            other => ColumnVec::Mixed(Arc::new(vec![other.clone(); len])),
        }
    }

    /// The rows at `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnVec {
        match self {
            ColumnVec::Int(v) => {
                ColumnVec::Int(Arc::new(idx.iter().map(|&i| v[i as usize]).collect()))
            }
            ColumnVec::Float(v) => {
                ColumnVec::Float(Arc::new(idx.iter().map(|&i| v[i as usize]).collect()))
            }
            ColumnVec::Bool(v) => {
                ColumnVec::Bool(Arc::new(idx.iter().map(|&i| v[i as usize]).collect()))
            }
            ColumnVec::Str(v) => ColumnVec::Str(Arc::new(
                idx.iter().map(|&i| Arc::clone(&v[i as usize])).collect(),
            )),
            ColumnVec::Mixed(v) => ColumnVec::Mixed(Arc::new(
                idx.iter().map(|&i| v[i as usize].clone()).collect(),
            )),
        }
    }

    /// Concatenate columns (same logical column across batches). Falls back
    /// to [`ColumnVec::Mixed`] when the parts disagree on representation.
    pub fn concat(parts: &[&ColumnVec]) -> ColumnVec {
        fn all<'a, T: Clone + 'a, F>(parts: &[&'a ColumnVec], f: F) -> Option<Vec<T>>
        where
            F: Fn(&'a ColumnVec) -> Option<&'a Vec<T>>,
        {
            let total: usize = parts.iter().map(|p| p.len()).sum();
            let mut out = Vec::with_capacity(total);
            for p in parts {
                out.extend_from_slice(f(p)?);
            }
            Some(out)
        }
        if let Some(v) = all(parts, |p| match p {
            ColumnVec::Int(v) => Some(v.as_ref()),
            _ => None,
        }) {
            return ColumnVec::Int(Arc::new(v));
        }
        if let Some(v) = all(parts, |p| match p {
            ColumnVec::Float(v) => Some(v.as_ref()),
            _ => None,
        }) {
            return ColumnVec::Float(Arc::new(v));
        }
        if let Some(v) = all(parts, |p| match p {
            ColumnVec::Bool(v) => Some(v.as_ref()),
            _ => None,
        }) {
            return ColumnVec::Bool(Arc::new(v));
        }
        if let Some(v) = all(parts, |p| match p {
            ColumnVec::Str(v) => Some(v.as_ref()),
            _ => None,
        }) {
            return ColumnVec::Str(Arc::new(v));
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            for i in 0..p.len() {
                out.push(p.value(i));
            }
        }
        ColumnVec::Mixed(Arc::new(out))
    }
}

/// A batch of rows in columnar form, with UA sidecars.
#[derive(Clone, Debug)]
pub struct ColumnBatch {
    schema: Schema,
    len: usize,
    columns: Vec<ColumnVec>,
    /// Bit set ⇔ row copy labeled certain.
    labels: Bitmap,
    /// Per-row multiplicity (1 for table-sourced batches).
    mults: Arc<Vec<u64>>,
}

impl ColumnBatch {
    /// Assemble a batch (columns, labels and mults must agree on length).
    pub fn new(
        schema: Schema,
        columns: Vec<ColumnVec>,
        labels: Bitmap,
        mults: Arc<Vec<u64>>,
    ) -> ColumnBatch {
        let len = labels.len();
        assert_eq!(schema.arity(), columns.len(), "column count mismatch");
        assert!(
            columns.iter().all(|c| c.len() == len),
            "column len mismatch"
        );
        assert_eq!(mults.len(), len, "mult len mismatch");
        ColumnBatch {
            schema,
            len,
            columns,
            labels,
            mults,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (not counting multiplicities).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, i: usize) -> &ColumnVec {
        &self.columns[i]
    }

    /// The label bitmap.
    pub fn labels(&self) -> &Bitmap {
        &self.labels
    }

    /// The multiplicity column.
    pub fn mults(&self) -> &[u64] {
        &self.mults
    }

    /// Materialize row `i` as a tuple.
    pub fn row(&self, i: usize) -> Tuple {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// The rows at `idx` (labels and multiplicities ride along).
    pub fn gather(&self, idx: &[u32]) -> ColumnBatch {
        ColumnBatch {
            schema: self.schema.clone(),
            len: idx.len(),
            columns: self.columns.iter().map(|c| c.gather(idx)).collect(),
            labels: self.labels.gather(idx),
            mults: Arc::new(idx.iter().map(|&i| self.mults[i as usize]).collect()),
        }
    }

    /// The same batch under a replaced schema (arity must match).
    pub fn with_schema(&self, schema: Schema) -> ColumnBatch {
        assert_eq!(schema.arity(), self.schema.arity(), "arity must not change");
        ColumnBatch {
            schema,
            ..self.clone()
        }
    }
}

/// A schema-carrying sequence of batches (the unit operators consume and
/// produce). The schema lives here too so empty relations keep theirs.
#[derive(Clone, Debug)]
pub struct BatchStream {
    /// Output schema.
    pub schema: Schema,
    /// The batches, in row order.
    pub batches: Vec<ColumnBatch>,
}

impl BatchStream {
    /// Total row count (not counting multiplicities).
    pub fn num_rows(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }

    /// Re-qualify the stream (and every batch) under a new schema.
    pub fn with_schema(self, schema: Schema) -> BatchStream {
        BatchStream {
            batches: self
                .batches
                .iter()
                .map(|b| b.with_schema(schema.clone()))
                .collect(),
            schema,
        }
    }

    /// Concatenate all batches into one (the build side of a hash join).
    pub fn into_single_chunk(self) -> ColumnBatch {
        if self.batches.len() == 1 {
            return self.batches.into_iter().next().expect("one batch");
        }
        let arity = self.schema.arity();
        let total: usize = self.batches.iter().map(|b| b.len()).sum();
        let columns = (0..arity)
            .map(|c| {
                let parts: Vec<&ColumnVec> = self.batches.iter().map(|b| b.column(c)).collect();
                ColumnVec::concat(&parts)
            })
            .collect();
        let labels = Bitmap::concat(self.batches.iter().map(|b| b.labels()));
        let mut mults = Vec::with_capacity(total);
        for b in &self.batches {
            mults.extend_from_slice(b.mults());
        }
        ColumnBatch::new(self.schema, columns, labels, Arc::new(mults))
    }
}

/// The `[start, end)` chunk boundaries of an `n`-row table at `batch_rows`
/// rows per chunk — each chunk converts independently, which is what lets
/// scans decompose in parallel with a deterministic batch order.
pub(crate) fn chunk_ranges(n: usize, batch_rows: usize) -> Vec<(usize, usize)> {
    let step = batch_rows.max(1);
    let mut ranges = Vec::with_capacity(n.div_ceil(step));
    let mut start = 0;
    while start < n {
        let end = (start + step).min(n);
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Convert one row chunk into a batch (all rows labeled certain,
/// multiplicity 1 — deterministic semantics).
fn chunk_to_batch(schema: &Schema, chunk: &[Tuple]) -> ColumnBatch {
    let arity = schema.arity();
    let columns: Vec<ColumnVec> = (0..arity)
        .map(|c| {
            ColumnVec::from_values(chunk.iter().map(move |r| r.get(c).expect("arity checked")))
        })
        .collect();
    ColumnBatch::new(
        schema.clone(),
        columns,
        Bitmap::filled(chunk.len(), true),
        Arc::new(vec![1u64; chunk.len()]),
    )
}

/// Convert one UA-encoded row chunk into a batch: the trailing marker
/// column is stripped into the label bitmap (errors on non-`0`/`1`
/// markers).
fn encoded_chunk_to_batch(
    base_schema: &Schema,
    name: &str,
    chunk: &[Tuple],
) -> Result<ColumnBatch, EngineError> {
    let arity = base_schema.arity();
    let columns: Vec<ColumnVec> = (0..arity)
        .map(|c| {
            ColumnVec::from_values(chunk.iter().map(move |r| r.get(c).expect("arity checked")))
        })
        .collect();
    let mut bm = Bitmap::filled(chunk.len(), false);
    for (i, row) in chunk.iter().enumerate() {
        match row.get(arity) {
            Some(Value::Int(1)) => bm.set(i, true),
            Some(Value::Int(0)) => {}
            other => {
                return Err(EngineError::Sql(format!(
                    "invalid certainty marker {:?} in `{name}`",
                    other
                )))
            }
        }
    }
    Ok(ColumnBatch::new(
        base_schema.clone(),
        columns,
        bm,
        Arc::new(vec![1u64; chunk.len()]),
    ))
}

/// Decompose a row table into batches (all rows labeled certain,
/// multiplicity 1 — deterministic semantics).
pub fn batches_from_table(table: &Table, batch_rows: usize) -> BatchStream {
    let rows = table.rows();
    BatchStream {
        schema: table.schema().clone(),
        batches: chunk_ranges(rows.len(), batch_rows)
            .into_iter()
            .map(|(s, e)| chunk_to_batch(table.schema(), &rows[s..e]))
            .collect(),
    }
}

/// [`batches_from_table`] with chunks converted in parallel on `pool` —
/// batch order (and therefore every downstream result) is identical to the
/// serial decomposition.
pub fn batches_from_table_pooled(
    table: &Table,
    batch_rows: usize,
    pool: &rayon::ThreadPool,
) -> BatchStream {
    let rows = table.rows();
    let ranges = chunk_ranges(rows.len(), batch_rows);
    let schema = table.schema();
    BatchStream {
        schema: schema.clone(),
        batches: pool.map_in_order(ranges, |_, (s, e)| chunk_to_batch(schema, &rows[s..e])),
    }
}

/// The marker-stripped base schema of a UA-encoded table, or the
/// not-encoded error.
fn encoded_base_schema(table: &Table, name: &str) -> Result<Schema, EngineError> {
    let schema = table.schema();
    let last_is_marker = schema
        .columns()
        .last()
        .is_some_and(|c| c.name.eq_ignore_ascii_case(ua_core::UA_LABEL_COLUMN));
    if !last_is_marker {
        return Err(EngineError::Schema(
            ua_data::schema::SchemaError::UnknownColumn(format!(
                "{name}.{} (table is not UA-encoded)",
                ua_core::UA_LABEL_COLUMN
            )),
        ));
    }
    Ok(Schema::new(schema.columns()[..schema.arity() - 1].to_vec()))
}

/// Decompose a UA-*encoded* table (certainty marker in last position, per
/// `Enc`) into batches: the marker column is stripped into the label
/// bitmap. Errors when the table is not encoded or a marker is not `0`/`1`.
pub fn batches_from_encoded_table(
    table: &Table,
    name: &str,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    let base_schema = encoded_base_schema(table, name)?;
    let rows = table.rows();
    let batches = chunk_ranges(rows.len(), batch_rows)
        .into_iter()
        .map(|(s, e)| encoded_chunk_to_batch(&base_schema, name, &rows[s..e]))
        .collect::<Result<_, _>>()?;
    Ok(BatchStream {
        schema: base_schema,
        batches,
    })
}

/// [`batches_from_encoded_table`] with chunks converted in parallel on
/// `pool`. Batch order is identical to the serial decomposition, and an
/// invalid marker reports the lowest-indexed offending chunk — the same
/// row a serial scan finds first.
pub fn batches_from_encoded_table_pooled(
    table: &Table,
    name: &str,
    batch_rows: usize,
    pool: &rayon::ThreadPool,
) -> Result<BatchStream, EngineError> {
    let base_schema = encoded_base_schema(table, name)?;
    let rows = table.rows();
    let ranges = chunk_ranges(rows.len(), batch_rows);
    let batches = pool
        .map_in_order(ranges, |_, (s, e)| {
            encoded_chunk_to_batch(&base_schema, name, &rows[s..e])
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
    Ok(BatchStream {
        schema: base_schema,
        batches,
    })
}

/// Decompose an annotation-map relation into batches: one row per support
/// tuple, the annotation in the multiplicity column (lossless — no
/// duplicate expansion). Rows are emitted in the deterministic structural
/// order.
pub fn batches_from_relation(rel: &ua_data::Relation<u64>, batch_rows: usize) -> BatchStream {
    let sorted = rel.sorted_tuples();
    let schema = rel.schema().clone();
    let arity = schema.arity();
    let mut batches = Vec::with_capacity(sorted.len().div_ceil(batch_rows.max(1)));
    let mut start = 0;
    while start < sorted.len() {
        let end = (start + batch_rows).min(sorted.len());
        let chunk = &sorted[start..end];
        let columns: Vec<ColumnVec> = (0..arity)
            .map(|c| {
                ColumnVec::from_values(
                    chunk
                        .iter()
                        .map(move |(t, _)| t.get(c).expect("arity checked")),
                )
            })
            .collect();
        let mults: Vec<u64> = chunk.iter().map(|(_, n)| *n).collect();
        batches.push(ColumnBatch::new(
            schema.clone(),
            columns,
            Bitmap::filled(chunk.len(), true),
            Arc::new(mults),
        ));
        start = end;
    }
    BatchStream { schema, batches }
}

/// Materialize a stream as a row table: a row with multiplicity `n` becomes
/// `n` copies (the engine's bag representation). Labels are dropped — use
/// [`encoded_table_from_batches`] to keep them.
pub fn table_from_batches(stream: &BatchStream) -> Table {
    let mut total: u64 = 0;
    for b in &stream.batches {
        total += b.mults().iter().sum::<u64>();
    }
    let mut rows = Vec::with_capacity(usize::try_from(total).unwrap_or(0));
    for b in &stream.batches {
        for i in 0..b.len() {
            let row = b.row(i);
            rows.extend(std::iter::repeat_n(row, b.mults()[i] as usize));
        }
    }
    Table::from_rows(stream.schema.clone(), rows)
}

/// Materialize a stream as a UA-encoded row table: the label bitmap is
/// re-attached as a trailing `ua_c` column of `0`/`1` markers.
pub fn encoded_table_from_batches(stream: &BatchStream) -> Table {
    let schema = stream.schema.with_column(ua_core::UA_LABEL_COLUMN);
    let mut rows = Vec::new();
    for b in &stream.batches {
        encoded_batch_rows(b, &mut rows);
    }
    Table::from_rows(schema, rows)
}

fn encoded_batch_rows(b: &ColumnBatch, rows: &mut Vec<Tuple>) {
    for i in 0..b.len() {
        let marker = Value::Int(i64::from(b.labels().get(i)));
        let row = b.row(i).push(marker);
        rows.extend(std::iter::repeat_n(row, b.mults()[i] as usize));
    }
}

fn batch_rows(b: &ColumnBatch, rows: &mut Vec<Tuple>) {
    for i in 0..b.len() {
        let row = b.row(i);
        rows.extend(std::iter::repeat_n(row, b.mults()[i] as usize));
    }
}

/// [`table_from_batches`] with per-batch row materialization on `pool`
/// (row order unchanged — batches flatten in stream order).
pub fn table_from_batches_pooled(stream: &BatchStream, pool: &rayon::ThreadPool) -> Table {
    let parts: Vec<Vec<Tuple>> =
        pool.map_in_order(stream.batches.iter().collect::<Vec<_>>(), |_, b| {
            let mut rows = Vec::new();
            batch_rows(b, &mut rows);
            rows
        });
    let mut rows = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        rows.extend(p);
    }
    Table::from_rows(stream.schema.clone(), rows)
}

/// [`encoded_table_from_batches`] with per-batch row materialization on
/// `pool` (row order unchanged).
pub fn encoded_table_from_batches_pooled(stream: &BatchStream, pool: &rayon::ThreadPool) -> Table {
    let schema = stream.schema.with_column(ua_core::UA_LABEL_COLUMN);
    let parts: Vec<Vec<Tuple>> =
        pool.map_in_order(stream.batches.iter().collect::<Vec<_>>(), |_, b| {
            let mut rows = Vec::new();
            encoded_batch_rows(b, &mut rows);
            rows
        });
    let mut rows = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        rows.extend(p);
    }
    Table::from_rows(schema, rows)
}

/// Collapse a stream back into an annotation-map relation (multiplicities
/// accumulate per distinct tuple).
pub fn relation_from_batches(stream: &BatchStream) -> ua_data::Relation<u64> {
    let mut rel = ua_data::Relation::new(stream.schema.clone());
    for b in &stream.batches {
        for i in 0..b.len() {
            rel.insert(b.row(i), b.mults()[i]);
        }
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::tuple;

    fn sample_table() -> Table {
        Table::from_rows(
            Schema::qualified("r", ["a", "b"]),
            (0..2500i64)
                .map(|i| tuple![i, format!("s{}", i % 7)])
                .collect(),
        )
    }

    #[test]
    fn table_round_trip_across_batch_boundaries() {
        for rows in [0usize, 1, DEFAULT_BATCH_ROWS, DEFAULT_BATCH_ROWS + 1, 2500] {
            let t = Table::from_rows(
                Schema::qualified("r", ["a", "b"]),
                (0..rows as i64).map(|i| tuple![i, i * 2]).collect(),
            );
            let stream = batches_from_table(&t, DEFAULT_BATCH_ROWS);
            assert_eq!(stream.num_rows(), rows);
            let back = table_from_batches(&stream);
            assert_eq!(back.rows(), t.rows());
            assert_eq!(back.schema(), t.schema());
        }
    }

    #[test]
    fn relation_round_trip_is_lossless() {
        let rel = ua_data::bag_relation(
            "r",
            &["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        let stream = batches_from_relation(&rel, 2);
        assert_eq!(stream.num_rows(), 2, "support tuples, not copies");
        assert_eq!(relation_from_batches(&stream), rel);
        // Expanding to a table matches Table::from_relation.
        assert_eq!(
            table_from_batches(&stream).sorted_rows(),
            Table::from_relation(&rel).sorted_rows()
        );
    }

    #[test]
    fn column_types_are_sniffed() {
        let t = sample_table();
        let stream = batches_from_table(&t, DEFAULT_BATCH_ROWS);
        assert!(matches!(stream.batches[0].column(0), ColumnVec::Int(_)));
        assert!(matches!(stream.batches[0].column(1), ColumnVec::Str(_)));
        let mixed = Table::from_rows(
            Schema::qualified("m", ["a"]),
            vec![tuple![1i64], Tuple::new(vec![Value::Null])],
        );
        let stream = batches_from_table(&mixed, 16);
        assert!(matches!(stream.batches[0].column(0), ColumnVec::Mixed(_)));
    }

    #[test]
    fn encoded_round_trip_preserves_labels() {
        let t = Table::from_rows(
            Schema::qualified("r", ["a"]).with_column(ua_core::UA_LABEL_COLUMN),
            vec![tuple![1i64, 1i64], tuple![2i64, 0i64], tuple![3i64, 1i64]],
        );
        let stream = batches_from_encoded_table(&t, "r", 2).unwrap();
        assert_eq!(stream.schema.arity(), 1);
        assert_eq!(
            stream
                .batches
                .iter()
                .map(|b| b.labels().count_ones())
                .sum::<usize>(),
            2
        );
        let back = encoded_table_from_batches(&stream);
        assert_eq!(back.sorted_rows(), t.sorted_rows());
    }

    #[test]
    fn unencoded_table_is_rejected() {
        let t = sample_table();
        assert!(batches_from_encoded_table(&t, "r", 8).is_err());
    }

    #[test]
    fn single_chunk_concat() {
        let t = sample_table();
        let stream = batches_from_table(&t, 700);
        assert!(stream.batches.len() > 1);
        let chunk = stream.clone().into_single_chunk();
        assert_eq!(chunk.len(), t.len());
        assert_eq!(chunk.row(0), t.rows()[0]);
        assert_eq!(chunk.row(t.len() - 1), t.rows()[t.len() - 1]);
    }
}
