//! The vectorized UA path: `⟦·⟧_UA` as bitmap propagation.
//!
//! The row engine implements UA semantics by *rewriting* the query (extra
//! `ua_c` projections, `LEAST` markers — Figures 8/9) and executing the
//! rewritten plan row by row. Here the rewriting never materializes as a
//! plan: base scans strip the `ua_c` column of the encoded table into each
//! batch's **label bitmap**, and the operators propagate labels directly —
//!
//! ```text
//! ⟦R⟧        scan: marker column → label bitmap
//! ⟦σ_θ(Q)⟧   filter: labels gathered with the surviving rows
//! ⟦π_A(Q)⟧   project: labels carried through per row copy
//! ⟦Q₁ ⋈ Q₂⟧  join: label = l_bit AND r_bit   (min over {0,1}, bitwise)
//! ⟦Q₁ ∪ Q₂⟧  union: label bitmaps concatenate
//! ```
//!
//! which is exactly the rewritten query's effect on the encoded
//! representation (Theorem 7), minus the per-tuple pair-semiring calls. The
//! result re-attaches the bitmap as a trailing `ua_c` column, so it is
//! byte-compatible with the row path's [`ua_engine::UaResult`] table.

use crate::columnar::{
    batches_from_encoded_table, encoded_table_from_batches, BatchStream, DEFAULT_BATCH_ROWS,
};
use crate::ops;
use ua_core::{expr_mentions_marker, UA_LABEL_COLUMN};
use ua_data::algebra::RaExpr;
use ua_data::expr::Expr;
use ua_data::schema::SchemaError;
use ua_engine::storage::{Catalog, Table};
use ua_engine::EngineError;

/// The marker is engine bookkeeping, not user schema: reject references so
/// both executors fail identically (mirrors `rewrite_ua`).
fn reject_marker_reference(expr: &Expr) -> Result<(), EngineError> {
    if expr_mentions_marker(expr) {
        Err(EngineError::Schema(SchemaError::AmbiguousColumn(
            UA_LABEL_COLUMN.to_string(),
        )))
    } else {
        Ok(())
    }
}

/// Execute the *user* `RA⁺` query `query` over UA-encoded base tables in
/// `catalog`, returning the encoded result (marker column last) — the
/// vectorized counterpart of rewrite-then-execute.
pub fn execute_ua_vectorized(query: &RaExpr, catalog: &Catalog) -> Result<Table, EngineError> {
    let stream = ua_stream(query, catalog, DEFAULT_BATCH_ROWS)?;
    Ok(encoded_table_from_batches(&stream))
}

/// The batch-level UA evaluator (batch size explicit for tests).
pub fn ua_stream(
    query: &RaExpr,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    match query {
        RaExpr::Table(name) => {
            let table = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            batches_from_encoded_table(&table, name, batch_rows)
        }
        RaExpr::Alias { input, name } => {
            let stream = ua_stream(input, catalog, batch_rows)?;
            let schema = stream.schema.with_qualifier(name);
            Ok(stream.with_schema(schema))
        }
        RaExpr::Select { input, predicate } => {
            reject_marker_reference(predicate)?;
            let stream = ua_stream(input, catalog, batch_rows)?;
            ops::filter(stream, predicate)
        }
        RaExpr::Project { input, columns } => {
            // Mirror rewrite_ua: the marker is engine-managed; projecting or
            // referencing it explicitly is rejected.
            for c in columns {
                if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(EngineError::Schema(SchemaError::AmbiguousColumn(
                        UA_LABEL_COLUMN.to_string(),
                    )));
                }
                reject_marker_reference(&c.expr)?;
            }
            let stream = ua_stream(input, catalog, batch_rows)?;
            ops::project(stream, columns)
        }
        RaExpr::Join {
            left,
            right,
            predicate,
        } => {
            if let Some(p) = predicate {
                reject_marker_reference(p)?;
            }
            let l = ua_stream(left, catalog, batch_rows)?;
            let r = ua_stream(right, catalog, batch_rows)?;
            ops::join(l, r, predicate.as_ref())
        }
        RaExpr::Union { left, right } => {
            let l = ua_stream(left, catalog, batch_rows)?;
            let r = ua_stream(right, catalog, batch_rows)?;
            ops::union_all(l, r)
        }
    }
}
