//! The vectorized UA path: `⟦·⟧_UA` as bitmap propagation.
//!
//! The row engine implements UA semantics by *rewriting* the query (extra
//! `ua_c` projections, `LEAST` markers — Figures 8/9) and executing the
//! rewritten plan row by row. Here the rewriting never materializes as a
//! plan: base scans strip the `ua_c` column of the encoded table into each
//! batch's **label bitmap**, and the operators propagate labels directly —
//!
//! ```text
//! ⟦R⟧        scan: marker column → label bitmap
//! ⟦σ_θ(Q)⟧   filter: labels gathered with the surviving rows
//! ⟦π_A(Q)⟧   project: labels carried through per row copy
//! ⟦Q₁ ⋈ Q₂⟧  join: label = l_bit AND r_bit   (min over {0,1}, bitwise)
//! ⟦Q₁ ∪ Q₂⟧  union: label bitmaps concatenate
//! ```
//!
//! which is exactly the rewritten query's effect on the encoded
//! representation (Theorem 7), minus the per-tuple pair-semiring calls. The
//! result re-attaches the bitmap as a trailing `ua_c` column, so it is
//! byte-compatible with the row path's [`ua_engine::UaResult`] table.
//!
//! Input is the user query's **physical plan** — the `RA⁺` fragment of
//! [`Plan`], optionally already shaped by `ua-engine`'s optimizer (so
//! [`Plan::HashJoin`] appears here too; the optimizer keeps its expressions
//! name-based precisely because these batches carry no marker column and
//! positions computed against encoded schemas would misalign) — plus any
//! trailing [`Plan::Sort`] / [`Plan::Limit`] / [`Plan::TopK`] wrappers the
//! session peeled off the user query. Those execute **natively** on the
//! encoded batches (columnar sort with the label as the marker-equivalent
//! final tie-break, bounded Top-K heap, copy-counting limit) — the old
//! row-engine fallback for `ORDER BY`/`LIMIT` is gone. `DISTINCT` and
//! aggregation stay rejected (not closed under UA semantics), and any
//! expression mentioning the `ua_c` marker is rejected exactly like the
//! row path's `rewrite_ua`.
//!
//! Execution shares the deterministic morsel-parallel driver with the
//! deterministic path ([`crate::exec`]): label ANDs run per morsel, and
//! parallel output is byte-identical to serial output for every thread
//! count.

use crate::columnar::{encoded_table_from_batches_pooled, BatchStream};
use crate::exec::Driver;
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};
use ua_engine::{EngineError, ExecOptions};

/// Execute the *user* query's physical plan (the `RA⁺` fragment plus
/// trailing Sort/Limit/TopK) over UA-encoded base tables in `catalog`,
/// returning the encoded result (marker column last) — the vectorized
/// counterpart of rewrite-then-execute, with default options.
pub fn execute_ua_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    execute_ua_vectorized_opts(plan, catalog, ExecOptions::default())
}

/// [`execute_ua_vectorized`] with explicit [`ExecOptions`]. This is the
/// hook the engine's `ExecMode::Vectorized` UA dispatch calls.
pub fn execute_ua_vectorized_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<Table, EngineError> {
    if opts.collect_stats {
        ua_obs::mem_query_start();
    }
    let driver = Driver::new(catalog, opts, true);
    match driver.stream_traced(plan) {
        Ok((stream, stats)) => {
            let table = driver.phase("merge", || {
                encoded_table_from_batches_pooled(&stream, &driver.pool)
            });
            driver.deposit_stats(stats, "ua");
            Ok(table)
        }
        Err(e) => {
            driver.deposit_error_stats(plan, "ua");
            Err(e)
        }
    }
}

/// The batch-level UA evaluator, serial, with an explicit batch size (the
/// differential tests sweep batch boundaries through this and use it as
/// the reference for the parallel determinism property).
pub fn ua_stream(
    plan: &Plan,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    ua_stream_opts(
        plan,
        catalog,
        ExecOptions {
            threads: 1,
            batch_rows,
            collect_stats: false,
            collect_trace: false,
        },
    )
}

/// [`ua_stream`] with explicit [`ExecOptions`].
pub fn ua_stream_opts(
    plan: &Plan,
    catalog: &Catalog,
    opts: ExecOptions,
) -> Result<BatchStream, EngineError> {
    Driver::new(catalog, opts, true).stream(plan)
}
