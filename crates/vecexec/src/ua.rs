//! The vectorized UA path: `⟦·⟧_UA` as bitmap propagation.
//!
//! The row engine implements UA semantics by *rewriting* the query (extra
//! `ua_c` projections, `LEAST` markers — Figures 8/9) and executing the
//! rewritten plan row by row. Here the rewriting never materializes as a
//! plan: base scans strip the `ua_c` column of the encoded table into each
//! batch's **label bitmap**, and the operators propagate labels directly —
//!
//! ```text
//! ⟦R⟧        scan: marker column → label bitmap
//! ⟦σ_θ(Q)⟧   filter: labels gathered with the surviving rows
//! ⟦π_A(Q)⟧   project: labels carried through per row copy
//! ⟦Q₁ ⋈ Q₂⟧  join: label = l_bit AND r_bit   (min over {0,1}, bitwise)
//! ⟦Q₁ ∪ Q₂⟧  union: label bitmaps concatenate
//! ```
//!
//! which is exactly the rewritten query's effect on the encoded
//! representation (Theorem 7), minus the per-tuple pair-semiring calls. The
//! result re-attaches the bitmap as a trailing `ua_c` column, so it is
//! byte-compatible with the row path's [`ua_engine::UaResult`] table.
//!
//! Input is the user query's **physical plan** — the `RA⁺` fragment of
//! [`Plan`], optionally already shaped by `ua-engine`'s optimizer (so
//! [`Plan::HashJoin`] appears here too; the optimizer keeps its expressions
//! name-based precisely because these batches carry no marker column and
//! positions computed against encoded schemas would misalign).

use crate::columnar::{
    batches_from_encoded_table, encoded_table_from_batches, BatchStream, DEFAULT_BATCH_ROWS,
};
use crate::ops;
use ua_core::{expr_mentions_marker, UA_LABEL_COLUMN};
use ua_data::expr::Expr;
use ua_data::schema::SchemaError;
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};
use ua_engine::EngineError;

/// The marker is engine bookkeeping, not user schema: reject references so
/// both executors fail identically (mirrors `rewrite_ua`).
fn reject_marker_reference(expr: &Expr) -> Result<(), EngineError> {
    if expr_mentions_marker(expr) {
        Err(EngineError::Schema(SchemaError::AmbiguousColumn(
            UA_LABEL_COLUMN.to_string(),
        )))
    } else {
        Ok(())
    }
}

/// Execute the *user* query's `RA⁺`-shaped physical plan over UA-encoded
/// base tables in `catalog`, returning the encoded result (marker column
/// last) — the vectorized counterpart of rewrite-then-execute.
pub fn execute_ua_vectorized(plan: &Plan, catalog: &Catalog) -> Result<Table, EngineError> {
    let stream = ua_stream(plan, catalog, DEFAULT_BATCH_ROWS)?;
    Ok(encoded_table_from_batches(&stream))
}

/// The batch-level UA evaluator (batch size explicit for tests).
pub fn ua_stream(
    plan: &Plan,
    catalog: &Catalog,
    batch_rows: usize,
) -> Result<BatchStream, EngineError> {
    match plan {
        Plan::Scan(name) => {
            let table = catalog
                .get(name)
                .ok_or_else(|| EngineError::UnknownTable(name.clone()))?;
            batches_from_encoded_table(&table, name, batch_rows)
        }
        Plan::Alias { input, name } => {
            let stream = ua_stream(input, catalog, batch_rows)?;
            let schema = stream.schema.with_qualifier(name);
            Ok(stream.with_schema(schema))
        }
        Plan::Filter { input, predicate } => {
            reject_marker_reference(predicate)?;
            let stream = ua_stream(input, catalog, batch_rows)?;
            ops::filter(stream, predicate)
        }
        Plan::Map { input, columns } => {
            // Mirror rewrite_ua: the marker is engine-managed; projecting or
            // referencing it explicitly is rejected.
            for c in columns {
                if c.name().eq_ignore_ascii_case(UA_LABEL_COLUMN) {
                    return Err(EngineError::Schema(SchemaError::AmbiguousColumn(
                        UA_LABEL_COLUMN.to_string(),
                    )));
                }
                reject_marker_reference(&c.expr)?;
            }
            let stream = ua_stream(input, catalog, batch_rows)?;
            ops::project(stream, columns)
        }
        Plan::Join {
            left,
            right,
            predicate,
        } => {
            if let Some(p) = predicate {
                reject_marker_reference(p)?;
            }
            let l = ua_stream(left, catalog, batch_rows)?;
            let r = ua_stream(right, catalog, batch_rows)?;
            ops::join(l, r, predicate.as_ref())
        }
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            build_left,
        } => {
            for (kl, kr) in keys {
                reject_marker_reference(kl)?;
                reject_marker_reference(kr)?;
            }
            if let Some(res) = residual {
                reject_marker_reference(res)?;
            }
            let l = ua_stream(left, catalog, batch_rows)?;
            let r = ua_stream(right, catalog, batch_rows)?;
            ops::hash_join(l, r, keys, residual.as_ref(), *build_left)
        }
        Plan::UnionAll { left, right } => {
            let l = ua_stream(left, catalog, batch_rows)?;
            let r = ua_stream(right, catalog, batch_rows)?;
            ops::union_all(l, r)
        }
        Plan::Distinct { .. } | Plan::Aggregate { .. } | Plan::Sort { .. } | Plan::Limit { .. } => {
            Err(EngineError::Sql(
                "UA queries support the positive relational algebra \
                 (selection, projection, join, UNION ALL); trailing \
                 ORDER BY/LIMIT are applied by the session after label \
                 propagation"
                    .into(),
            ))
        }
    }
}
