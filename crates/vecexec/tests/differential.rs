//! Differential tests: the vectorized executor must produce *identical*
//! output to the row executor — rows, labels, multiplicities, and (because
//! the operators are order-compatible replicas) row order — on randomized
//! plans over randomized tables, across batch-boundary sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::algebra::ProjColumn;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::{Value, VarId};
use ua_data::{Expr, RaExpr, Relation};
use ua_engine::plan::{AggExpr, AggFunc, Plan, SortOrder};
use ua_engine::{execute, Catalog, EngineError, ExecMode, ExecOptions, Table, UaSession};
use ua_semiring::pair::Ua;
use ua_vecexec::exec::{exec_stream, exec_stream_opts};
use ua_vecexec::ua::ua_stream_opts;
use ua_vecexec::{execute_vectorized, table_from_batches, BatchStream};

/// Sizes that straddle the default batch boundary (1024).
const SIZES: [usize; 6] = [0, 1, 7, 1024, 1025, 2500];

fn random_value(rng: &mut StdRng, domain: i64) -> Value {
    match rng.gen_range(0..12u32) {
        0 => Value::Null,
        1 => Value::Var(VarId(rng.gen_range(0..3u32))),
        2 | 3 => Value::str(format!("s{}", rng.gen_range(0..domain))),
        4 => Value::float(rng.gen_range(0..domain) as f64 / 2.0),
        _ => Value::Int(rng.gen_range(0..domain)),
    }
}

/// `r(a, b, c)` — `a`/`b` clean ints (typed columns), `c` mixed values.
fn random_r(rng: &mut StdRng, rows: usize) -> Table {
    Table::from_rows(
        Schema::qualified("r", ["a", "b", "c"]),
        (0..rows)
            .map(|_| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..8)),
                    Value::Int(rng.gen_range(0..5)),
                    random_value(rng, 6),
                ])
            })
            .collect(),
    )
}

/// `s(b, d)` — clean ints for hash-join keys.
fn random_s(rng: &mut StdRng, rows: usize) -> Table {
    Table::from_rows(
        Schema::qualified("s", ["b", "d"]),
        (0..rows)
            .map(|_| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..5)),
                    Value::Int(rng.gen_range(0..50)),
                ])
            })
            .collect(),
    )
}

fn random_predicate(rng: &mut StdRng) -> Expr {
    let atom = |rng: &mut StdRng| {
        // Over the r ⋈ s schema: `b` exists on both sides, so qualify it.
        let col = ["a", "r.b", "s.b", "d"][rng.gen_range(0..4usize)];
        let lit = Expr::lit(rng.gen_range(0i64..8));
        match rng.gen_range(0..5u32) {
            0 => Expr::named(col).eq(lit),
            1 => Expr::named(col).lt(lit),
            2 => Expr::named(col).ge(lit),
            3 => Expr::named(col).between(Expr::lit(1i64), lit),
            _ => Expr::InList(
                Box::new(Expr::named(col)),
                vec![Expr::lit(0i64), Expr::lit(3i64), Expr::lit(7i64)],
            ),
        }
    };
    let a = atom(rng);
    match rng.gen_range(0..4u32) {
        0 => a,
        1 => a.and(atom(rng)),
        2 => a.or(atom(rng)),
        _ => a.not(),
    }
}

/// A predicate safe for `r` alone (references only r's columns).
fn r_predicate(rng: &mut StdRng) -> Expr {
    let col = ["a", "b"][rng.gen_range(0..2usize)];
    let lit = Expr::lit(rng.gen_range(0i64..8));
    match rng.gen_range(0..3u32) {
        0 => Expr::named(col).eq(lit),
        1 => Expr::named(col).lt(lit),
        _ => Expr::named(col).ge(lit),
    }
}

/// Random RA⁺ query over `r` (and sometimes `s`).
fn random_ra(rng: &mut StdRng) -> RaExpr {
    match rng.gen_range(0..8u32) {
        0 => RaExpr::table("r").select(r_predicate(rng)),
        1 => RaExpr::table("r").project(["b", "a"]),
        2 => RaExpr::table("r")
            .join(
                RaExpr::table("s"),
                Expr::named("r.b").eq(Expr::named("s.b")),
            )
            .select(random_predicate(rng))
            .project(["a", "d"]),
        3 => RaExpr::table("r").join(
            RaExpr::table("s"),
            Expr::named("r.b")
                .eq(Expr::named("s.b"))
                .and(Expr::named("d").ge(Expr::lit(10i64))),
        ),
        // θ-join without an equality → nested loops on both engines.
        4 => RaExpr::table("r").join(
            RaExpr::table("s"),
            Expr::named("r.b").lt(Expr::named("s.b")),
        ),
        5 => RaExpr::table("r")
            .project(["b"])
            .union(RaExpr::table("s").project(["b"])),
        6 => RaExpr::table("r")
            .alias("x")
            .select(Expr::named("x.a").ge(Expr::lit(2i64))),
        _ => RaExpr::table("r")
            .alias("r1")
            .join(
                RaExpr::table("r").alias("r2"),
                Expr::named("r1.b").eq(Expr::named("r2.b")),
            )
            .project_cols(vec![ProjColumn::named("r1.a"), ProjColumn::named("r2.c")]),
    }
}

/// Random multi-key sort keys over the first two output columns (positions
/// are always in range: every `random_ra` shape has arity ≥ 1, and the
/// second key only appears via shapes of arity ≥ 2 below). Duplicate keys
/// are guaranteed by the tiny value domains; NULLs and labeled nulls come
/// from `r.c`.
fn random_sort_keys(rng: &mut StdRng, arity: usize) -> Vec<(Expr, SortOrder)> {
    let order = |rng: &mut StdRng| {
        if rng.gen_range(0..2) == 0 {
            SortOrder::Asc
        } else {
            SortOrder::Desc
        }
    };
    let mut keys = vec![(Expr::col(rng.gen_range(0..arity)), order(rng))];
    if arity >= 2 && rng.gen_range(0..2) == 0 {
        keys.push((Expr::col(rng.gen_range(0..arity)), order(rng)));
    }
    keys
}

/// Wrap an RA⁺ plan in the row-engine extras the vectorized driver must
/// also support.
fn random_plan(rng: &mut StdRng) -> Plan {
    let base = Plan::from_ra(&random_ra(rng));
    match rng.gen_range(0..8u32) {
        0 => Plan::Distinct {
            input: Box::new(base),
        },
        1 => Plan::Sort {
            input: Box::new(Plan::Limit {
                input: Box::new(base),
                limit: 17,
            }),
            keys: vec![(Expr::col(0), SortOrder::Desc)],
        },
        5 => {
            // Multi-key sort (duplicate keys, NULLs via r.c) over a known
            // arity-3 projection.
            let input = Plan::from_ra(&RaExpr::table("r").project(["c", "b", "a"]));
            Plan::Sort {
                keys: random_sort_keys(rng, 3),
                input: Box::new(input),
            }
        }
        6 => {
            // ORDER BY + LIMIT, unfused (the optimizer-independent shape).
            let input = Plan::from_ra(&RaExpr::table("r").project(["c", "a"]));
            Plan::Limit {
                input: Box::new(Plan::Sort {
                    keys: random_sort_keys(rng, 2),
                    input: Box::new(input),
                }),
                limit: rng.gen_range(0..30),
            }
        }
        7 => {
            // The fused Top-K operator itself, over a join output.
            let input = Plan::from_ra(&RaExpr::table("r").join(
                RaExpr::table("s"),
                Expr::named("r.b").eq(Expr::named("s.b")),
            ));
            Plan::TopK {
                keys: random_sort_keys(rng, 5),
                input: Box::new(input),
                limit: rng.gen_range(0..25),
            }
        }
        2 => {
            // Aggregate over the join output: group by a, count + sum d.
            Plan::Aggregate {
                input: Box::new(Plan::from_ra(&RaExpr::table("r").join(
                    RaExpr::table("s"),
                    Expr::named("r.b").eq(Expr::named("s.b")),
                ))),
                group_by: vec![ProjColumn::named("a")],
                aggregates: vec![
                    AggExpr {
                        func: AggFunc::CountStar,
                        arg: None,
                        name: "n".into(),
                    },
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::named("d")),
                        name: "total".into(),
                    },
                    AggExpr {
                        func: AggFunc::Min,
                        arg: Some(Expr::named("d")),
                        name: "lo".into(),
                    },
                    AggExpr {
                        func: AggFunc::Avg,
                        arg: Some(Expr::named("d")),
                        name: "mean".into(),
                    },
                ],
            }
        }
        _ => base,
    }
}

fn assert_tables_identical(row: &Table, vec: &Table, context: &str) {
    assert_eq!(
        row.schema().arity(),
        vec.schema().arity(),
        "arity mismatch: {context}"
    );
    assert_eq!(row.len(), vec.len(), "row count mismatch: {context}");
    assert_eq!(row.rows(), vec.rows(), "row/order mismatch: {context}");
}

#[test]
fn deterministic_plans_agree_across_sizes_and_seeds() {
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    for &rows in &SIZES {
        for trial in 0..25 {
            let catalog = Catalog::new();
            catalog.register("r", random_r(&mut rng, rows));
            catalog.register("s", random_s(&mut rng, rows.min(600) / 2 + 1));
            let plan = random_plan(&mut rng);
            let row = execute(&plan, &catalog).expect("row exec");
            let vec = execute_vectorized(&plan, &catalog).expect("vec exec");
            assert_tables_identical(&row, &vec, &format!("rows={rows} trial={trial} {plan}"));
        }
    }
}

#[test]
fn batch_size_is_semantically_invisible() {
    let mut rng = StdRng::seed_from_u64(7);
    let catalog = Catalog::new();
    catalog.register("r", random_r(&mut rng, 1030));
    catalog.register("s", random_s(&mut rng, 100));
    for trial in 0..10 {
        let plan = random_plan(&mut rng);
        let row = execute(&plan, &catalog).expect("row exec");
        for batch_rows in [1usize, 2, 1024, 1025, 4096] {
            let stream = exec_stream(&plan, &catalog, batch_rows).expect("vec exec");
            let vec = table_from_batches(&stream);
            assert_tables_identical(
                &row,
                &vec,
                &format!("batch_rows={batch_rows} trial={trial} {plan}"),
            );
        }
    }
}

/// Random ℕ_UA relations over the `r`/`s` schemas.
fn random_ua_relation(
    rng: &mut StdRng,
    name: &str,
    cols: &[&str],
    rows: usize,
) -> Relation<Ua<u64>> {
    Relation::from_annotated(
        Schema::qualified(name, cols.iter().copied()),
        (0..rows).map(|_| {
            let t: Tuple = (0..cols.len())
                .map(|_| Value::Int(rng.gen_range(0..5)))
                .collect();
            let cert = rng.gen_range(0u64..3);
            let det = cert + rng.gen_range(0u64..3);
            (t, Ua::new(cert, det.max(1)))
        }),
    )
}

#[test]
fn ua_path_matches_rewritten_row_path_label_for_label() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for &rows in &[0usize, 1, 5, 40, 700] {
        for trial in 0..20 {
            let session = UaSession::new();
            session.register_ua_relation(
                "r",
                &random_ua_relation(&mut rng, "r", &["a", "b", "c"], rows),
            );
            session.register_ua_relation(
                "s",
                &random_ua_relation(&mut rng, "s", &["b", "d"], rows / 2 + 1),
            );
            let q = random_ra(&mut rng);

            session.set_exec_mode(ExecMode::Row);
            let row = session.query_ua_ra(&q).expect("row UA");
            ua_vecexec::install();
            session.set_exec_mode(ExecMode::Vectorized);
            let vec = session.query_ua_ra(&q).expect("vec UA");

            // Identical encoded tables: same rows (labels are the trailing
            // ua_c marker of each row copy), same order.
            assert_tables_identical(
                &row.table,
                &vec.table,
                &format!("rows={rows} trial={trial} {q}"),
            );
            // And therefore identical decoded K²-relations.
            assert_eq!(row.decode(), vec.decode(), "decode mismatch: {q}");
            assert_eq!(row.certainty_counts(), vec.certainty_counts());
        }
    }
}

#[test]
fn ua_sql_frontend_with_order_by_and_limit_agrees() {
    ua_vecexec::install();
    let mut rng = StdRng::seed_from_u64(99);
    let table = Table::from_rows(
        Schema::qualified("addr", ["xid", "aid", "p", "id", "locale", "state"]),
        (0..1500i64)
            .map(|i| {
                let alts = rng.gen_range(1..3i64);
                Tuple::new(vec![
                    Value::Int(i / 2),
                    Value::Int(i % 2),
                    Value::float(if alts == 1 {
                        1.0
                    } else {
                        0.5 + (i % 2) as f64 * 0.1
                    }),
                    Value::Int(i / 2),
                    Value::str(format!("loc{}", i % 37)),
                    Value::str(["NY", "AZ", "IL"][(i % 3) as usize]),
                ])
            })
            .collect(),
    );
    let sql = "SELECT id, locale FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
               WHERE state = 'NY' ORDER BY id LIMIT 100";
    let row_session = UaSession::new();
    row_session.register_table("addr", table.clone());
    let row = row_session.query_ua(sql).expect("row");

    let vec_session = UaSession::with_mode(ExecMode::Vectorized);
    vec_session.register_table("addr", table);
    let vec = vec_session.query_ua(sql).expect("vec");

    assert_tables_identical(&row.table, &vec.table, "sql frontend");
    assert_eq!(row.certainty_counts(), vec.certainty_counts());
}

#[test]
fn referencing_the_marker_is_rejected_in_both_paths() {
    ua_vecexec::install();
    let session = UaSession::new();
    let rel = random_ua_relation(&mut StdRng::seed_from_u64(1), "r", &["a"], 5);
    session.register_ua_relation("r", &rel);
    // The marker is engine bookkeeping: projecting it, filtering on it
    // (qualified or not), or joining on it must fail identically under
    // both executors rather than silently exposing the encoding.
    let queries = [
        RaExpr::table("r").project(["ua_c"]),
        RaExpr::table("r").select(Expr::named("ua_c").eq(Expr::lit(1i64))),
        RaExpr::table("r").select(Expr::named("r.ua_c").eq(Expr::lit(1i64))),
        RaExpr::table("r").alias("x").join(
            RaExpr::table("r").alias("y"),
            Expr::named("x.ua_c").eq(Expr::named("y.ua_c")),
        ),
        RaExpr::table("r").project_cols(vec![ProjColumn::expr(
            Expr::named("ua_c").add(Expr::lit(1i64)),
            "c2",
        )]),
    ];
    for q in &queries {
        session.set_exec_mode(ExecMode::Row);
        assert!(session.query_ua_ra(q).is_err(), "row accepted {q}");
        session.set_exec_mode(ExecMode::Vectorized);
        assert!(session.query_ua_ra(q).is_err(), "vectorized accepted {q}");
    }
}

#[test]
fn columnar_limit_counts_row_copies_and_clips_multiplicities() {
    // Limit over multiplicity-carrying batches (relation-sourced, so a row
    // with annotation n stands for n copies): the columnar limit must count
    // copies like the row engine's limit over the expanded table, clipping
    // the boundary row's multiplicity instead of materializing.
    let rel = ua_data::bag_relation(
        "r",
        &["a"],
        (0..10i64)
            .flat_map(|i| std::iter::repeat_n(vec![Value::Int(i)], (i as usize % 4) + 1))
            .collect::<Vec<Vec<Value>>>(),
    );
    let expanded = Table::from_relation(&rel);
    for batch_rows in [1, 3, 1024] {
        for limit in [0usize, 1, 4, 7, 12, 24, 25, 100] {
            let stream = ua_vecexec::batches_from_relation(&rel, batch_rows);
            let limited = ua_vecexec::ops::limit(stream, limit);
            let via_batches = table_from_batches(&limited);
            let via_rows = ua_engine::limit_table(&expanded, limit);
            assert_eq!(
                via_batches.rows(),
                via_rows.rows(),
                "batch_rows={batch_rows}, limit={limit}"
            );
        }
    }
}

/// Streams compared *byte for byte*: same batch boundaries, same rows,
/// same label bitmaps, same multiplicity columns. Stronger than table
/// equality — this is the morsel pipeline's determinism contract.
fn assert_streams_byte_identical(a: &BatchStream, b: &BatchStream, context: &str) {
    assert_eq!(a.schema, b.schema, "schema mismatch: {context}");
    assert_eq!(a.batches.len(), b.batches.len(), "batch count: {context}");
    for (i, (ba, bb)) in a.batches.iter().zip(&b.batches).enumerate() {
        assert_eq!(ba.len(), bb.len(), "batch {i} len: {context}");
        assert_eq!(ba.columns(), bb.columns(), "batch {i} columns: {context}");
        assert_eq!(ba.labels(), bb.labels(), "batch {i} labels: {context}");
        assert_eq!(ba.mults(), bb.mults(), "batch {i} mults: {context}");
    }
}

fn opts(threads: usize, batch_rows: usize) -> ExecOptions {
    ExecOptions {
        threads,
        batch_rows,
        collect_stats: false,
        collect_trace: false,
    }
}

/// Determinism property (seeded random pipelines): for every thread count,
/// the parallel vectorized output is byte-identical to the serial
/// vectorized output — batches, labels, multiplicities and error outcomes
/// included. Each (plan, thread count) pair runs several times to shake
/// out scheduling nondeterminism.
#[test]
fn parallel_pipelines_are_byte_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(0x9A11E1);
    for trial in 0..12 {
        let catalog = Catalog::new();
        catalog.register("r", random_r(&mut rng, 1030));
        catalog.register("s", random_s(&mut rng, 120));
        let plan = random_plan(&mut rng);
        let serial = exec_stream(&plan, &catalog, 128);
        for threads in [2usize, 3, 8] {
            for rep in 0..3 {
                let parallel = exec_stream_opts(&plan, &catalog, opts(threads, 128));
                match (&serial, &parallel) {
                    (Ok(s), Ok(p)) => assert_streams_byte_identical(
                        s,
                        p,
                        &format!("trial={trial} threads={threads} rep={rep} {plan}"),
                    ),
                    (Err(se), Err(pe)) => assert_eq!(
                        se.to_string(),
                        pe.to_string(),
                        "error mismatch: trial={trial} threads={threads} {plan}"
                    ),
                    (s, p) => panic!(
                        "serial/parallel disagree on success (trial={trial} \
                         threads={threads}): {plan}\n serial: {:?}\n parallel: {:?}",
                        s.as_ref().map(BatchStream::num_rows),
                        p.as_ref().map(BatchStream::num_rows)
                    ),
                }
            }
        }
    }
}

/// The same determinism property for the UA path: label bitmaps must land
/// on identical rows for every thread count.
#[test]
fn parallel_ua_pipelines_are_byte_identical_to_serial() {
    let mut rng = StdRng::seed_from_u64(0x9A11E2);
    for trial in 0..10 {
        let session = UaSession::new();
        session.register_ua_relation(
            "r",
            &random_ua_relation(&mut rng, "r", &["a", "b", "c"], 700),
        );
        session.register_ua_relation("s", &random_ua_relation(&mut rng, "s", &["b", "d"], 80));
        let q = random_ra(&mut rng);
        let plan = Plan::from_ra(&q);
        let catalog = session.catalog();
        let serial = ua_vecexec::ua::ua_stream(&plan, catalog, 64).expect("serial UA");
        for threads in [2usize, 8] {
            for rep in 0..3 {
                let parallel =
                    ua_stream_opts(&plan, catalog, opts(threads, 64)).expect("parallel UA");
                assert_streams_byte_identical(
                    &serial,
                    &parallel,
                    &format!("trial={trial} threads={threads} rep={rep} {q}"),
                );
            }
        }
    }
}

/// Sort / Top-K differential sweep: multi-key orderings with duplicate
/// keys and NULL/labeled-null key values must agree with the row engine —
/// order included — across batch-size boundaries and thread counts.
#[test]
fn sort_and_topk_agree_across_batch_sizes_and_threads() {
    let mut rng = StdRng::seed_from_u64(0x50FA);
    let catalog = Catalog::new();
    catalog.register("r", random_r(&mut rng, 1500));
    catalog.register("s", random_s(&mut rng, 100));
    let sort_input = Plan::from_ra(&RaExpr::table("r").project(["c", "b", "a"]));
    let join_input = Plan::from_ra(&RaExpr::table("r").join(
        RaExpr::table("s"),
        Expr::named("r.b").eq(Expr::named("s.b")),
    ));
    let multi_key = vec![
        (Expr::col(0), SortOrder::Asc), // NULLs + labeled nulls in r.c
        (Expr::col(1), SortOrder::Desc),
        (Expr::col(2), SortOrder::Asc),
    ];
    let mut plans = vec![
        Plan::Sort {
            input: Box::new(sort_input.clone()),
            keys: multi_key.clone(),
        },
        Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(sort_input.clone()),
                keys: multi_key.clone(),
            }),
            limit: 13,
        },
        Plan::Sort {
            input: Box::new(join_input.clone()),
            keys: vec![
                (Expr::col(4), SortOrder::Desc),
                (Expr::col(0), SortOrder::Asc),
            ],
        },
    ];
    for limit in [0usize, 1, 7, 100, 5000] {
        plans.push(Plan::TopK {
            input: Box::new(join_input.clone()),
            keys: vec![
                (Expr::col(3), SortOrder::Asc),
                (Expr::col(2), SortOrder::Desc),
            ],
            limit,
        });
    }
    for (pi, plan) in plans.iter().enumerate() {
        let row = execute(plan, &catalog).expect("row exec");
        for batch_rows in [1usize, 7, 1024] {
            for threads in [1usize, 2, 8] {
                let stream =
                    exec_stream_opts(plan, &catalog, opts(threads, batch_rows)).expect("vec exec");
                let vec = table_from_batches(&stream);
                assert_tables_identical(
                    &row,
                    &vec,
                    &format!("plan={pi} batch_rows={batch_rows} threads={threads}"),
                );
            }
        }
    }
}

/// Regression (tentpole satellite): the vectorized UA hook no longer bails
/// out to the row engine for trailing ORDER BY / LIMIT — `ua_stream` on
/// Sort/Limit/TopK-bearing plans succeeds and matches the row path's
/// encoded sort (which tie-breaks on the trailing marker column) byte for
/// byte, labels riding with their rows.
#[test]
fn ua_hook_executes_order_by_limit_natively() {
    // Same tuple with different labels: the sort's final tie-break must
    // order the uncertain copy (marker 0) before the certain one (marker 1)
    // exactly like the row engine's full-row comparison over encoded rows.
    let encoded = Table::from_rows(
        Schema::qualified("r", ["a", "b"]).with_column(ua_core::UA_LABEL_COLUMN),
        (0..40i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i % 5),
                    Value::Int(i % 3),
                    Value::Int(i % 2),
                ])
            })
            .collect(),
    );
    let catalog = Catalog::new();
    catalog.register("r", encoded.clone());
    let scan = Plan::Scan("r".into());
    let keys = vec![
        (Expr::named("a"), SortOrder::Desc),
        (Expr::named("b"), SortOrder::Asc),
    ];
    let plans = [
        Plan::Sort {
            input: Box::new(scan.clone()),
            keys: keys.clone(),
        },
        Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(scan.clone()),
                keys: keys.clone(),
            }),
            limit: 9,
        },
        Plan::TopK {
            input: Box::new(scan.clone()),
            keys: keys.clone(),
            limit: 9,
        },
    ];
    for (pi, plan) in plans.iter().enumerate() {
        // The old driver returned Err("...ORDER BY/LIMIT are applied by the
        // session...") here; now it must execute natively.
        for batch_rows in [3usize, 1024] {
            let stream = ua_vecexec::ua::ua_stream(plan, &catalog, batch_rows)
                .unwrap_or_else(|e| panic!("UA hook fell back for plan {pi}: {e}"));
            let got = ua_vecexec::columnar::encoded_table_from_batches(&stream);
            // Reference: the row engine's sort/limit over the *encoded*
            // table (what the session's old fallback computed).
            let mut expected = ua_engine::sort_table(&encoded, &keys).expect("row sort");
            if pi > 0 {
                expected = ua_engine::limit_table(&expected, 9);
            }
            assert_eq!(
                got.rows(),
                expected.rows(),
                "plan {pi}, batch_rows {batch_rows}"
            );
        }
    }
    // And end-to-end through the session: both engines, fused and unfused.
    ua_vecexec::install();
    let mk_session = |mode| {
        let s = UaSession::with_mode(mode);
        // Registering the pre-encoded table under the session catalog.
        s.register_table("r", encoded.clone());
        s
    };
    let sql = "SELECT a, b FROM r ORDER BY a DESC, b LIMIT 9";
    for optimizer in [true, false] {
        let row_s = mk_session(ExecMode::Row);
        row_s.set_optimizer_enabled(optimizer);
        let vec_s = mk_session(ExecMode::Vectorized);
        vec_s.set_optimizer_enabled(optimizer);
        let row = row_s.query_ua(sql).expect("row UA");
        let vec = vec_s.query_ua(sql).expect("vec UA");
        assert_eq!(
            row.table.rows(),
            vec.table.rows(),
            "optimizer={optimizer}: session ORDER BY LIMIT"
        );
        assert_eq!(row.table.len(), 9);
    }
}

/// `EngineError` is shared between drivers; make the import load-bearing.
#[test]
fn unknown_table_errors_match_between_thread_counts() {
    let catalog = Catalog::new();
    let plan = Plan::Scan("missing".into());
    let serial = exec_stream(&plan, &catalog, 16).expect_err("unknown table");
    let parallel = exec_stream_opts(&plan, &catalog, opts(4, 16)).expect_err("unknown table");
    assert!(matches!(serial, EngineError::UnknownTable(_)));
    assert_eq!(serial.to_string(), parallel.to_string());
}

#[test]
fn columnar_limit_truncates_label_bitmaps_with_their_rows() {
    // An encoded table with alternating labels: the limit prefix must keep
    // label-row alignment exactly (asserted through the encoded round trip).
    let encoded = Table::from_rows(
        Schema::qualified("r", ["a"]).with_column(ua_core::UA_LABEL_COLUMN),
        (0..20i64)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 2)]))
            .collect(),
    );
    for limit in [0usize, 1, 7, 20] {
        let stream =
            ua_vecexec::columnar::batches_from_encoded_table(&encoded, "r", 4).expect("encoded");
        let limited = ua_vecexec::ops::limit(stream, limit);
        let back = ua_vecexec::columnar::encoded_table_from_batches(&limited);
        assert_eq!(back.rows(), ua_engine::limit_table(&encoded, limit).rows());
    }
}

/// Parallel pipeline-breaker determinism sweep (PR satellite): GROUP BY
/// SUM/AVG over a Float column seeded with NaN, -0.0 and NULL, and a
/// 3-way hash join + aggregate, must produce byte-identical results
/// across {threads 1, 2, 8} × {batch_rows 1, 7, 1024} on the det, UA and
/// AU paths. Mixed-magnitude floats (`1e16 + 1 - 1e16 ≠ 1e16 - 1e16 + 1`)
/// make any deviation from the serial accumulation order visible in the
/// output bytes.
#[test]
fn pipeline_breakers_deterministic_across_threads_batches_and_semantics() {
    use ua_engine::plan::AggFunc;

    // f(g, x, p): x holds NaN, -0.0, NULL and magnitude-mixed floats so
    // Sum/Avg accumulation order shows up in the bytes; NaN and NULL live
    // in their own groups so they cannot mask the cancellation groups.
    let f_rows: Vec<Tuple> = (0..2600i64)
        .map(|i| {
            let g = i % 8;
            let x = match (g, i % 5) {
                (6, _) => Value::float(f64::NAN),
                (7, 0) => Value::Null,
                (7, _) => Value::float(-0.0),
                (_, 0) => Value::float(1e16),
                (_, 1) => Value::float(1.0),
                (_, 2) => Value::float(-1e16),
                (_, 3) => Value::float(0.25),
                _ => Value::Null,
            };
            Tuple::new(vec![Value::Int(g), x, Value::float(1.0)])
        })
        .collect();
    let f = Table::from_rows(Schema::qualified("f", ["g", "x", "p"]), f_rows);
    let float_agg = |input: Plan| Plan::Aggregate {
        input: Box::new(input),
        group_by: vec![ProjColumn::named("g")],
        aggregates: vec![
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::named("x")),
                name: "s".into(),
            },
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(Expr::named("x")),
                name: "m".into(),
            },
        ],
    };

    // The 3-way hash-join shape: r(a,b,c) ⋈ s(b,d) ⋈ w(d,e), aggregated.
    let mut rng = StdRng::seed_from_u64(0xB4EA4E2);
    let w = Table::from_rows(
        Schema::qualified("w", ["d", "e"]),
        (0..50i64)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 3 % 17)]))
            .collect(),
    );
    let three_way = Plan::Aggregate {
        input: Box::new(Plan::HashJoin {
            left: Box::new(Plan::HashJoin {
                left: Box::new(Plan::Scan("r".into())),
                right: Box::new(Plan::Scan("s".into())),
                keys: vec![(Expr::named("r.b"), Expr::named("s.b"))],
                residual: None,
                build_left: false,
            }),
            right: Box::new(Plan::Scan("w".into())),
            keys: vec![(Expr::named("s.d"), Expr::named("w.d"))],
            residual: None,
            build_left: false,
        }),
        group_by: vec![ProjColumn::named("a")],
        aggregates: vec![
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::named("e")),
                name: "tot".into(),
            },
        ],
    };

    const THREADS: [usize; 3] = [1, 2, 8];
    const BATCHES: [usize; 3] = [1, 7, 1024];

    // Deterministic path.
    let det_catalog = Catalog::new();
    det_catalog.register("f", f.clone());
    det_catalog.register("r", random_r(&mut rng, 2100));
    det_catalog.register("s", random_s(&mut rng, 260));
    det_catalog.register("w", w.clone());
    for (name, plan) in [
        ("float_agg", float_agg(Plan::Scan("f".into()))),
        ("three_way", three_way.clone()),
    ] {
        let row = execute(&plan, &det_catalog).expect("row exec");
        for batch_rows in BATCHES {
            let serial =
                exec_stream_opts(&plan, &det_catalog, opts(1, batch_rows)).expect("serial");
            assert_tables_identical(
                &row,
                &table_from_batches(&serial),
                &format!("det {name} serial batch={batch_rows}"),
            );
            for threads in THREADS {
                let parallel =
                    exec_stream_opts(&plan, &det_catalog, opts(threads, batch_rows)).expect("par");
                assert_streams_byte_identical(
                    &serial,
                    &parallel,
                    &format!("det {name} batch={batch_rows} threads={threads}"),
                );
            }
        }
    }

    // UA path: the 3-way hash-join core (UA is not closed under
    // aggregation), labels riding with their rows.
    let ua_session = UaSession::new();
    ua_session.register_ua_relation(
        "r",
        &random_ua_relation(&mut rng, "r", &["a", "b", "c"], 900),
    );
    ua_session.register_ua_relation("s", &random_ua_relation(&mut rng, "s", &["b", "d"], 90));
    ua_session.register_ua_relation("w", &random_ua_relation(&mut rng, "w", &["d", "e"], 30));
    let ua_join = Plan::HashJoin {
        left: Box::new(Plan::HashJoin {
            left: Box::new(Plan::Scan("r".into())),
            right: Box::new(Plan::Scan("s".into())),
            keys: vec![(Expr::named("r.b"), Expr::named("s.b"))],
            residual: None,
            build_left: false,
        }),
        right: Box::new(Plan::Scan("w".into())),
        keys: vec![(Expr::named("s.d"), Expr::named("w.d"))],
        residual: None,
        build_left: false,
    };
    let ua_catalog = ua_session.catalog();
    for batch_rows in BATCHES {
        let serial = ua_stream_opts(&ua_join, ua_catalog, opts(1, batch_rows)).expect("ua serial");
        for threads in THREADS {
            let parallel =
                ua_stream_opts(&ua_join, ua_catalog, opts(threads, batch_rows)).expect("ua par");
            assert_streams_byte_identical(
                &serial,
                &parallel,
                &format!("ua batch={batch_rows} threads={threads}"),
            );
        }
    }

    // AU path: the same float aggregation and 3-way join + aggregate over
    // TI-labeled range sources, vectorized output byte-equal to the row
    // interpreter at every (threads, batch_rows).
    let au_catalog = Catalog::new();
    au_catalog.register("f", ua_engine::ti_source_au(&f, "p").expect("f au"));
    for (name, base) in [
        ("r", random_r(&mut rng, 700)),
        ("s", random_s(&mut rng, 80)),
    ] {
        let mut cols: Vec<String> = base
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        cols.push("p".into());
        let with_p = Table::from_rows(
            Schema::qualified(name, cols.iter().map(String::as_str)),
            base.rows()
                .iter()
                .map(|r| {
                    let mut vals: Vec<Value> = r.values().to_vec();
                    vals.push(Value::float(1.0));
                    Tuple::new(vals)
                })
                .collect(),
        );
        au_catalog.register(
            name,
            ua_engine::ti_source_au(&with_p, "p").expect("au source"),
        );
    }
    let au_join = Plan::Aggregate {
        input: Box::new(Plan::HashJoin {
            left: Box::new(Plan::Scan("r".into())),
            right: Box::new(Plan::Scan("s".into())),
            keys: vec![(Expr::named("r.b"), Expr::named("s.b"))],
            residual: None,
            build_left: false,
        }),
        group_by: vec![ProjColumn::named("a")],
        aggregates: vec![
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::named("d")),
                name: "tot".into(),
            },
        ],
    };
    for (name, plan) in [
        ("float_agg", float_agg(Plan::Scan("f".into()))),
        ("join_agg", au_join),
    ] {
        let row = ua_engine::au_table(&ua_engine::execute_au(&plan, &au_catalog).expect("au row"));
        for batch_rows in BATCHES {
            for threads in THREADS {
                let vec = ua_vecexec::execute_au_vectorized_opts(
                    &plan,
                    &au_catalog,
                    opts(threads, batch_rows),
                )
                .expect("au vec");
                assert_tables_identical(
                    &row,
                    &vec,
                    &format!("au {name} batch={batch_rows} threads={threads}"),
                );
            }
        }
    }
}
