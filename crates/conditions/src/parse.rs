//! A parser for textual local conditions.
//!
//! The paper's SQL frontend stores C-table local conditions as strings in a
//! dedicated column and evaluates them with an `isTautology` UDF
//! (Section 9.2). This module parses that textual form into [`Condition`]s:
//!
//! ```text
//! condition := or
//! or        := and (OR and)*
//! and       := not (AND not)*
//! not       := NOT not | '(' condition ')' | atom | TRUE | FALSE
//! atom      := term op term         op ∈ { =, <>, !=, <, <=, >, >= }
//! term      := identifier | number | 'string'
//! ```
//!
//! Identifiers denote variables and are interned through a caller-supplied
//! [`VarInterner`] so that the same name maps to the same [`VarId`] across
//! all rows of a table.

use crate::condition::{Atom, Condition, Term};
use std::fmt;
use ua_data::expr::CmpOp;
use ua_data::value::{Value, VarId};
use ua_data::FxHashMap;

/// Maps variable names to stable [`VarId`]s.
#[derive(Clone, Debug, Default)]
pub struct VarInterner {
    by_name: FxHashMap<String, VarId>,
    names: Vec<String>,
}

impl VarInterner {
    /// Empty interner.
    pub fn new() -> VarInterner {
        VarInterner::default()
    }

    /// Intern `name`, allocating a fresh id on first sight.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.by_name.insert(name.to_string(), id);
        self.names.push(name.to_string());
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name of an interned id.
    pub fn name_of(&self, id: VarId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A condition-parsing failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CondParseError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CondParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "condition parse error: {}", self.message)
    }
}

impl std::error::Error for CondParseError {}

fn err(message: impl Into<String>) -> CondParseError {
    CondParseError {
        message: message.into(),
    }
}

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Op(CmpOp),
    LParen,
    RParen,
}

fn lex_condition(input: &str) -> Result<Vec<Tok>, CondParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '=' => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op(CmpOp::Ne));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Op(CmpOp::Ne));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Le));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Op(CmpOp::Ge));
                    i += 2;
                } else {
                    out.push(Tok::Op(CmpOp::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(err("unterminated string"));
                }
                out.push(Tok::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                let mut is_float = false;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_digit() {
                        i += 1;
                    } else if c == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[start..i];
                if is_float {
                    out.push(Tok::Float(
                        text.parse()
                            .map_err(|_| err(format!("bad float `{text}`")))?,
                    ));
                } else {
                    out.push(Tok::Int(
                        text.parse().map_err(|_| err(format!("bad int `{text}`")))?,
                    ));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(input[start..i].to_string()));
            }
            other => return Err(err(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct CondParser<'a> {
    toks: Vec<Tok>,
    pos: usize,
    vars: &'a mut VarInterner,
}

impl CondParser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or(&mut self) -> Result<Condition, CondParseError> {
        let mut acc = self.and()?;
        while self.accept_kw("or") {
            let rhs = self.and()?;
            acc = acc.or(rhs);
        }
        Ok(acc)
    }

    fn and(&mut self) -> Result<Condition, CondParseError> {
        let mut acc = self.not()?;
        while self.accept_kw("and") {
            let rhs = self.not()?;
            acc = acc.and(rhs);
        }
        Ok(acc)
    }

    fn not(&mut self) -> Result<Condition, CondParseError> {
        if self.accept_kw("not") {
            return Ok(self.not()?.not());
        }
        if self.accept_kw("true") {
            return Ok(Condition::True);
        }
        if self.accept_kw("false") {
            return Ok(Condition::False);
        }
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let inner = self.or()?;
            if self.peek() != Some(&Tok::RParen) {
                return Err(err("expected `)`"));
            }
            self.pos += 1;
            return Ok(inner);
        }
        self.atom()
    }

    fn term(&mut self) -> Result<Term, CondParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(Term::Var(self.vars.intern(&name)))
            }
            Some(Tok::Int(i)) => {
                self.pos += 1;
                Ok(Term::Const(Value::Int(i)))
            }
            Some(Tok::Float(x)) => {
                self.pos += 1;
                Ok(Term::Const(Value::float(x)))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Term::Const(Value::str(s)))
            }
            other => Err(err(format!("expected term, found {other:?}"))),
        }
    }

    fn atom(&mut self) -> Result<Condition, CondParseError> {
        let left = self.term()?;
        let op = match self.peek() {
            Some(Tok::Op(op)) => *op,
            other => return Err(err(format!("expected comparison, found {other:?}"))),
        };
        self.pos += 1;
        let right = self.term()?;
        let atom = Atom::new(op, left, right);
        Ok(match atom.const_value() {
            Some(true) => Condition::True,
            Some(false) => Condition::False,
            None => Condition::Atom(atom),
        })
    }
}

/// Parse a textual condition, interning variables through `vars`.
pub fn parse_condition(input: &str, vars: &mut VarInterner) -> Result<Condition, CondParseError> {
    let toks = lex_condition(input)?;
    if toks.is_empty() {
        return Ok(Condition::True);
    }
    let mut p = CondParser { toks, pos: 0, vars };
    let cond = p.or()?;
    if p.pos != p.toks.len() {
        return Err(err(format!("trailing input at token {}", p.pos)));
    }
    Ok(cond)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_atoms() {
        let mut vars = VarInterner::new();
        let c = parse_condition("x = 1", &mut vars).unwrap();
        assert_eq!(c.atom_count(), 1);
        assert_eq!(vars.len(), 1);
        assert_eq!(vars.name_of(VarId(0)), Some("x"));
    }

    #[test]
    fn connectives_and_parens() {
        let mut vars = VarInterner::new();
        let c = parse_condition("(x = 1 OR y < 2.5) AND NOT z <> 'abc'", &mut vars).unwrap();
        assert_eq!(c.atom_count(), 3);
        assert_eq!(vars.len(), 3);
    }

    #[test]
    fn shared_interner_keeps_ids_stable() {
        let mut vars = VarInterner::new();
        let a = parse_condition("x = 1", &mut vars).unwrap();
        let b = parse_condition("x = 2", &mut vars).unwrap();
        assert_eq!(a.vars(), b.vars());
    }

    #[test]
    fn tautology_parses_and_checks() {
        let mut vars = VarInterner::new();
        let c = parse_condition("x < 5 OR x >= 5", &mut vars).unwrap();
        assert_eq!(crate::cnf::cnf_tautology(&c), Some(true));
    }

    #[test]
    fn ground_conditions_fold() {
        let mut vars = VarInterner::new();
        assert!(parse_condition("1 = 1", &mut vars)
            .unwrap()
            .structurally_eq(&Condition::True));
        assert!(parse_condition("1 > 2", &mut vars)
            .unwrap()
            .structurally_eq(&Condition::False));
        assert!(parse_condition("true", &mut vars)
            .unwrap()
            .structurally_eq(&Condition::True));
        assert!(parse_condition("", &mut vars)
            .unwrap()
            .structurally_eq(&Condition::True));
    }

    #[test]
    fn negative_numbers_and_var_var() {
        let mut vars = VarInterner::new();
        let c = parse_condition("x >= -3 AND x <= y", &mut vars).unwrap();
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn errors() {
        let mut vars = VarInterner::new();
        assert!(parse_condition("x =", &mut vars).is_err());
        assert!(parse_condition("x = 1 extra", &mut vars).is_err());
        assert!(parse_condition("(x = 1", &mut vars).is_err());
        assert!(parse_condition("x # 1", &mut vars).is_err());
    }
}
