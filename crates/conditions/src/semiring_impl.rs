//! The condition (lineage) semiring: `⟨Conditions, ∨, ∧, ⊥, ⊤⟩`.
//!
//! Annotating tuples with conditions and evaluating `RA⁺` with K-relational
//! semantics is exactly how the paper's exact baseline instruments queries
//! over C-tables: joins conjoin local conditions, projections and unions
//! disjoin the conditions of merged tuples. Because [`Condition`]'s
//! `PartialEq` is semantic (logical equivalence), the semiring laws hold
//! observably.
//!
//! `is_zero`/`is_one` are deliberately *syntactic*: they are called on every
//! relation insert, and deciding unsatisfiability there would smuggle the
//! exponential solver into the hot path. A stored-but-unsatisfiable
//! condition is semantically harmless (the tuple simply exists in no world).

use crate::condition::Condition;
use ua_semiring::Semiring;

impl Semiring for Condition {
    fn zero() -> Self {
        Condition::False
    }

    fn one() -> Self {
        Condition::True
    }

    fn plus(&self, other: &Self) -> Self {
        self.clone().or(other.clone())
    }

    fn times(&self, other: &Self) -> Self {
        self.clone().and(other.clone())
    }

    fn is_zero(&self) -> bool {
        matches!(self, Condition::False)
    }

    fn is_one(&self) -> bool {
        matches!(self, Condition::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::value::VarId;
    use ua_semiring::laws;

    #[test]
    fn condition_semiring_laws_hold_semantically() {
        let x = Condition::var_eq(VarId(0), 1i64);
        let y = Condition::var_eq(VarId(1), 2i64);
        let elems = [
            Condition::True,
            Condition::False,
            x.clone(),
            y.clone(),
            x.clone().not(),
            x.and(y),
        ];
        laws::check_semiring_laws(&elems);
    }

    #[test]
    fn syntactic_zero_one() {
        assert!(Condition::False.is_zero());
        assert!(Condition::True.is_one());
        // An unsatisfiable but non-⊥ condition is *not* syntactically zero…
        let x = Condition::var_eq(VarId(0), 1i64);
        let contradiction = x.clone().and(x.clone().not());
        assert!(!contradiction.is_zero());
        // …but it is semantically equal to ⊥.
        assert_eq!(contradiction, Condition::False);
    }
}
