//! Exact validity/satisfiability for conditions via order-region enumeration.
//!
//! The paper decides certainty of C-table tuples by checking whether a local
//! condition is a tautology, using Z3 for the exact baseline (Section 11.1,
//! Figure 10). Our substitute exploits the *finite model property* of
//! quantifier-free comparison formulas over densely ordered domains: the
//! truth of a condition only depends on how each variable sits relative to
//! the mentioned constants and to the other variables. It therefore suffices
//! to test assignments drawn from a finite candidate pool containing
//!
//! * every mentioned constant,
//! * a value strictly between every pair of adjacent numeric constants,
//! * a value below the minimum and above the maximum,
//! * and `n` pairwise-distinct fresh values (so that `n` variables can be
//!   made mutually distinct and distinct from all constants).
//!
//! Enumeration is exponential in the number of variables — deliberately so:
//! this *is* the expensive exact-certain-answers baseline the paper compares
//! UA-DBs against. Workloads keep per-condition variable counts small.
//!
//! String constants are covered for `=`/`≠` exactly and for order atoms via
//! boundary/fresh strings; boolean constants enumerate `{true, false}`.

use crate::condition::Condition;
use ua_data::value::{Value, VarId};

/// Default cap on the number of assignments enumerated before
/// [`Solver::try_is_valid`] gives up.
pub const DEFAULT_ASSIGNMENT_LIMIT: u64 = 20_000_000;

/// Region-enumeration solver for [`Condition`]s.
#[derive(Clone, Debug)]
pub struct Solver {
    limit: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver {
            limit: DEFAULT_ASSIGNMENT_LIMIT,
        }
    }
}

impl Solver {
    /// Solver with the default assignment limit.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Solver with a custom assignment limit.
    pub fn with_limit(limit: u64) -> Solver {
        Solver { limit }
    }

    /// Whether `cond` holds under *every* valuation (tautology).
    ///
    /// # Panics
    /// Panics when the assignment limit is exceeded; use
    /// [`Solver::try_is_valid`] to handle that case gracefully.
    pub fn is_valid(&self, cond: &Condition) -> bool {
        self.try_is_valid(cond)
            .expect("assignment limit exceeded in Solver::is_valid")
    }

    /// Whether `cond` holds under *some* valuation.
    pub fn is_satisfiable(&self, cond: &Condition) -> bool {
        self.try_is_satisfiable(cond)
            .expect("assignment limit exceeded in Solver::is_satisfiable")
    }

    /// Validity with graceful handling of the assignment limit.
    pub fn try_is_valid(&self, cond: &Condition) -> Option<bool> {
        // valid(φ) ⇔ ¬sat(¬φ)
        self.try_is_satisfiable(&cond.clone().not()).map(|s| !s)
    }

    /// Satisfiability with graceful handling of the assignment limit.
    pub fn try_is_satisfiable(&self, cond: &Condition) -> Option<bool> {
        match cond {
            Condition::True => return Some(true),
            Condition::False => return Some(false),
            _ => {}
        }
        let mut vars: Vec<VarId> = cond.vars().into_iter().collect();
        vars.sort_unstable();
        if vars.is_empty() {
            // Ground condition: evaluate under the empty valuation.
            return Some(cond.eval(&|_| Value::Null));
        }
        let pool = candidate_pool(cond, vars.len());
        let total: u64 = (pool.len() as u64)
            .checked_pow(vars.len() as u32)
            .unwrap_or(u64::MAX);
        if total > self.limit {
            return None;
        }
        let mut indices = vec![0usize; vars.len()];
        loop {
            let valuation = |v: VarId| -> Value {
                let pos = vars
                    .iter()
                    .position(|&w| w == v)
                    .expect("valuation queried for unknown variable");
                pool[indices[pos]].clone()
            };
            if cond.eval(&valuation) {
                return Some(true);
            }
            // Advance the odometer.
            let mut carry = true;
            for idx in indices.iter_mut() {
                *idx += 1;
                if *idx < pool.len() {
                    carry = false;
                    break;
                }
                *idx = 0;
            }
            if carry {
                return Some(false);
            }
        }
    }

    /// Whether two conditions are logically equivalent.
    pub fn equivalent(&self, a: &Condition, b: &Condition) -> bool {
        if a.structurally_eq(b) {
            return true;
        }
        // a ≡ b ⇔ (a ∧ ¬b) ∨ (¬a ∧ b) is unsatisfiable.
        let diff = a
            .clone()
            .and(b.clone().not())
            .or(a.clone().not().and(b.clone()));
        !self.is_satisfiable(&diff)
    }
}

/// Build the finite candidate pool for `cond` with `n_vars` variables.
fn candidate_pool(cond: &Condition, n_vars: usize) -> Vec<Value> {
    let mut numbers: Vec<f64> = Vec::new();
    let mut strings: Vec<String> = Vec::new();
    let mut saw_bool = false;
    collect_constants(cond, &mut numbers, &mut strings, &mut saw_bool);

    let mut pool: Vec<Value> = Vec::new();

    // Numeric candidates: the constants themselves, plus — per order
    // region (below the minimum, in each gap between adjacent constants,
    // above the maximum) — `n_vars` *distinct* witnesses, because up to
    // `n_vars` variables can be forced pairwise-distinct inside a single
    // region (e.g. `x < 0 ∧ y < x` needs two values below 0).
    numbers.sort_by(f64::total_cmp);
    numbers.dedup();
    if numbers.is_empty() {
        numbers.push(0.0);
    }
    let min = numbers[0];
    let max = *numbers.last().expect("non-empty");
    let witnesses = n_vars.max(1);
    for i in 0..witnesses {
        pool.push(Value::float(min - 1.0 - i as f64));
    }
    for w in numbers.windows(2) {
        pool.push(Value::float(w[0]));
        let step = (w[1] - w[0]) / (witnesses + 1) as f64;
        for k in 1..=witnesses {
            pool.push(Value::float(w[0] + step * k as f64));
        }
    }
    pool.push(Value::float(max));
    for i in 0..witnesses {
        pool.push(Value::float(max + 1.0 + i as f64));
    }

    // String candidates: constants plus boundary/fresh strings, again with
    // `n_vars` witnesses per region (best-effort for order atoms over
    // strings, exact for =/≠; see the module docs).
    if !strings.is_empty() {
        strings.sort();
        strings.dedup();
        let witnesses = n_vars.max(1);
        for i in 0..witnesses {
            // Below all non-empty constants: "", "\x01", "\x01\x01", …
            pool.push(Value::str("\u{1}".repeat(i)));
        }
        for s in &strings {
            pool.push(Value::str(s));
            // Strictly after `s`, before most successors:
            // s + '\x01', s + '\x01\x01', …
            for i in 1..=witnesses {
                pool.push(Value::str(format!("{s}{}", "\u{1}".repeat(i))));
            }
        }
        let top = strings.last().expect("non-empty");
        for i in 0..witnesses {
            pool.push(Value::str(format!("{top}~fresh{i}")));
        }
    }

    if saw_bool {
        pool.push(Value::Bool(false));
        pool.push(Value::Bool(true));
    }

    pool
}

fn collect_constants(
    cond: &Condition,
    numbers: &mut Vec<f64>,
    strings: &mut Vec<String>,
    saw_bool: &mut bool,
) {
    use crate::condition::Term;
    let mut on_value = |v: &Value| match v {
        Value::Int(i) => numbers.push(*i as f64),
        Value::Float(f) => numbers.push(f.get()),
        Value::Str(s) => strings.push(s.to_string()),
        Value::Bool(_) => *saw_bool = true,
        Value::Null | Value::Var(_) => {}
    };
    match cond {
        Condition::True | Condition::False => {}
        Condition::Atom(a) => {
            if let Term::Const(v) = &a.left {
                on_value(v);
            }
            if let Term::Const(v) = &a.right {
                on_value(v);
            }
        }
        Condition::Not(c) => collect_constants(c, numbers, strings, saw_bool),
        Condition::And(cs) | Condition::Or(cs) => {
            for c in cs {
                collect_constants(c, numbers, strings, saw_bool);
            }
        }
    }
}

/// Semantic equality for conditions (logical equivalence via the default
/// solver). Use [`Condition::structurally_eq`] when syntactic identity is
/// intended.
impl PartialEq for Condition {
    fn eq(&self, other: &Self) -> bool {
        Solver::new().equivalent(self, other)
    }
}

impl Eq for Condition {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Atom;
    use ua_data::expr::CmpOp;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    fn lt(v: VarId, c: i64) -> Condition {
        Condition::Atom(Atom::var_const(v, CmpOp::Lt, c))
    }
    fn ge(v: VarId, c: i64) -> Condition {
        Condition::Atom(Atom::var_const(v, CmpOp::Ge, c))
    }
    fn eq(v: VarId, c: i64) -> Condition {
        Condition::Atom(Atom::var_const(v, CmpOp::Eq, c))
    }

    #[test]
    fn excluded_middle_is_valid() {
        let s = Solver::new();
        assert!(s.is_valid(&lt(x(), 5).or(ge(x(), 5))));
        assert!(!s.is_valid(&lt(x(), 5).or(ge(x(), 6))));
    }

    #[test]
    fn dense_order_gap_needs_midpoints() {
        // x > 1 ∧ x < 2 is satisfiable only by a non-integer witness.
        let s = Solver::new();
        let c = Condition::Atom(Atom::var_const(x(), CmpOp::Gt, 1i64))
            .and(Condition::Atom(Atom::var_const(x(), CmpOp::Lt, 2i64)));
        assert!(s.is_satisfiable(&c));
    }

    #[test]
    fn contradiction_is_unsat() {
        let s = Solver::new();
        assert!(!s.is_satisfiable(&eq(x(), 1).and(eq(x(), 2))));
        assert!(!s.is_satisfiable(&Condition::False));
        assert!(s.is_valid(&Condition::True));
    }

    #[test]
    fn var_var_comparisons() {
        let s = Solver::new();
        // x < y ∧ y < x is unsat; x < y is satisfiable; x ≤ y ∨ y ≤ x valid.
        let xy = Condition::Atom(Atom::var_var(x(), CmpOp::Lt, y()));
        let yx = Condition::Atom(Atom::var_var(y(), CmpOp::Lt, x()));
        assert!(!s.is_satisfiable(&xy.clone().and(yx.clone())));
        assert!(s.is_satisfiable(&xy));
        let le = Condition::Atom(Atom::var_var(x(), CmpOp::Le, y()))
            .or(Condition::Atom(Atom::var_var(y(), CmpOp::Le, x())));
        assert!(s.is_valid(&le));
    }

    #[test]
    fn distinctness_needs_fresh_values() {
        // x ≠ 0 ∧ y ≠ 0 ∧ x ≠ y: needs two fresh values besides the constant.
        let s = Solver::new();
        let c = Condition::Atom(Atom::var_const(x(), CmpOp::Ne, 0i64))
            .and(Condition::Atom(Atom::var_const(y(), CmpOp::Ne, 0i64)))
            .and(Condition::Atom(Atom::var_var(x(), CmpOp::Ne, y())));
        assert!(s.is_satisfiable(&c));
    }

    #[test]
    fn string_equalities() {
        let s = Solver::new();
        let c = Condition::Atom(Atom::var_const(x(), CmpOp::Eq, "a"))
            .and(Condition::Atom(Atom::var_const(x(), CmpOp::Ne, "a")));
        assert!(!s.is_satisfiable(&c));
        let d = Condition::Atom(Atom::var_const(x(), CmpOp::Ne, "a"))
            .and(Condition::Atom(Atom::var_const(x(), CmpOp::Ne, "b")));
        assert!(s.is_satisfiable(&d));
    }

    #[test]
    fn string_order_boundaries() {
        let s = Solver::new();
        // a < x < b has a witness strictly between the two strings.
        let c = Condition::Atom(Atom::var_const(x(), CmpOp::Gt, "a"))
            .and(Condition::Atom(Atom::var_const(x(), CmpOp::Lt, "b")));
        assert!(s.is_satisfiable(&c));
    }

    #[test]
    fn paper_example9_tuple_is_certain() {
        // Example 9: t1 = (1, X) with φ(t1) = (X = 1), t2 = (1,1) with
        // φ(t2) = (X ≠ 1). Tuple (1,1) is certain because φ(t1) ∨ φ(t2) is
        // a tautology — which the exact solver recognizes…
        let s = Solver::new();
        let phi = eq(x(), 1).or(Condition::Atom(Atom::var_const(x(), CmpOp::Ne, 1i64)));
        assert!(s.is_valid(&phi));
        // …while neither disjunct alone is valid (the PTIME labeling's view).
        assert!(!s.is_valid(&eq(x(), 1)));
    }

    #[test]
    fn equivalence_and_semantic_eq() {
        let s = Solver::new();
        let a = lt(x(), 5).or(ge(x(), 5));
        assert!(s.equivalent(&a, &Condition::True));
        assert_eq!(a, Condition::True);
        let b = lt(x(), 5).and(ge(x(), 5));
        assert_eq!(b, Condition::False);
        // Commutativity is observable through semantic equality.
        assert_eq!(lt(x(), 5).or(eq(y(), 1)), eq(y(), 1).or(lt(x(), 5)));
    }

    #[test]
    fn limit_is_respected() {
        let s = Solver::with_limit(1);
        let c = eq(x(), 1).and(eq(y(), 2));
        assert_eq!(s.try_is_satisfiable(&c), None);
    }
}
