//! Symbolic predicate evaluation: turning a predicate applied to a tuple
//! *containing variables* into a [`Condition`].
//!
//! When a selection `σ_θ` runs over a C-table, a tuple whose referenced
//! attributes are all constants resolves `θ` to true/false immediately — but
//! a tuple carrying variables must instead *extend its local condition* by
//! the symbolic residue of `θ` (paper Section 11.1: "Selection extends the
//! local condition on rows where the selection predicate accesses a
//! variable-valued attribute"). [`predicate_to_condition`] computes that
//! residue.
//!
//! Supported predicate forms: comparisons between attribute references and
//! literals (or each other), `AND`/`OR`/`NOT`, `BETWEEN`, `IN`, and boolean
//! literals. Arithmetic over variable-valued attributes has no atom
//! representation in our condition language and yields
//! [`SymbolicError::Unsupported`]; the C-table query generator only emits
//! supported forms, matching the paper's workload.

use crate::condition::{Atom, Condition, Term};
use std::fmt;
use ua_data::expr::{CmpOp, Expr};
use ua_data::tuple::Tuple;
use ua_data::value::Value;

/// Errors from symbolic predicate translation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SymbolicError {
    /// The predicate uses a construct with no symbolic translation over
    /// variables (e.g. arithmetic over a variable attribute).
    Unsupported(String),
    /// Expression evaluation failed (unbound reference etc.).
    Eval(String),
}

impl fmt::Display for SymbolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymbolicError::Unsupported(what) => {
                write!(f, "no symbolic translation for {what}")
            }
            SymbolicError::Eval(e) => write!(f, "evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for SymbolicError {}

/// Resolve a sub-expression against `tuple` to a [`Term`].
///
/// Sub-expressions that do not touch variables are evaluated to constants;
/// a bare attribute holding a variable becomes [`Term::Var`].
fn term_of(expr: &Expr, tuple: &Tuple) -> Result<Term, SymbolicError> {
    // A bare column reference resolves directly.
    if let Expr::Col(i) = expr {
        return match tuple.get(*i) {
            Some(Value::Var(v)) => Ok(Term::Var(*v)),
            Some(v) => Ok(Term::Const(v.clone())),
            None => Err(SymbolicError::Eval(format!("column {i} out of range"))),
        };
    }
    // Otherwise the sub-expression must be variable-free.
    let mut cols = Vec::new();
    expr.referenced_columns(&mut cols);
    if cols
        .iter()
        .any(|&c| matches!(tuple.get(c), Some(Value::Var(_))))
    {
        return Err(SymbolicError::Unsupported(format!(
            "compound expression `{expr}` over a variable attribute"
        )));
    }
    expr.eval(tuple)
        .map(Term::Const)
        .map_err(|e| SymbolicError::Eval(e.to_string()))
}

/// Translate the (bound) predicate applied to `tuple` into a [`Condition`].
///
/// Constant sub-formulas fold to `⊤`/`⊥`; variable-touching comparisons
/// become atoms.
pub fn predicate_to_condition(predicate: &Expr, tuple: &Tuple) -> Result<Condition, SymbolicError> {
    match predicate {
        Expr::Lit(Value::Bool(true)) => Ok(Condition::True),
        Expr::Lit(Value::Bool(false)) => Ok(Condition::False),
        Expr::And(a, b) => {
            Ok(predicate_to_condition(a, tuple)?.and(predicate_to_condition(b, tuple)?))
        }
        Expr::Or(a, b) => {
            Ok(predicate_to_condition(a, tuple)?.or(predicate_to_condition(b, tuple)?))
        }
        Expr::Not(a) => Ok(predicate_to_condition(a, tuple)?.not()),
        Expr::Cmp(op, a, b) => {
            let left = term_of(a, tuple)?;
            let right = term_of(b, tuple)?;
            let atom = Atom::new(*op, left, right);
            Ok(match atom.const_value() {
                Some(true) => Condition::True,
                Some(false) => Condition::False,
                None => Condition::Atom(atom),
            })
        }
        Expr::Between(e, lo, hi) => {
            let lower = Expr::Cmp(CmpOp::Ge, e.clone(), lo.clone());
            let upper = Expr::Cmp(CmpOp::Le, e.clone(), hi.clone());
            Ok(predicate_to_condition(&lower, tuple)?.and(predicate_to_condition(&upper, tuple)?))
        }
        Expr::InList(e, list) => {
            let mut parts = Vec::with_capacity(list.len());
            for item in list {
                let eq = Expr::Cmp(CmpOp::Eq, e.clone(), Box::new(item.clone()));
                parts.push(predicate_to_condition(&eq, tuple)?);
            }
            Ok(Condition::or_all(parts))
        }
        other => Err(SymbolicError::Unsupported(format!("predicate `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::value::VarId;

    fn var(i: u32) -> Value {
        Value::Var(VarId(i))
    }

    #[test]
    fn constant_tuple_folds_to_truth() {
        let t = Tuple::new(vec![Value::Int(3)]);
        let p = Expr::col(0).lt(Expr::lit(5i64));
        assert!(predicate_to_condition(&p, &t)
            .unwrap()
            .structurally_eq(&Condition::True));
        let p2 = Expr::col(0).gt(Expr::lit(5i64));
        assert!(predicate_to_condition(&p2, &t)
            .unwrap()
            .structurally_eq(&Condition::False));
    }

    #[test]
    fn variable_attribute_produces_atom() {
        let t = Tuple::new(vec![var(7)]);
        let p = Expr::col(0).lt(Expr::lit(5i64));
        let c = predicate_to_condition(&p, &t).unwrap();
        assert_eq!(c.atom_count(), 1);
        assert!(c.vars().contains(&VarId(7)));
    }

    #[test]
    fn var_var_join_predicate() {
        let t = Tuple::new(vec![var(1), var(2)]);
        let p = Expr::col(0).eq(Expr::col(1));
        let c = predicate_to_condition(&p, &t).unwrap();
        assert_eq!(c.atom_count(), 1);
        assert_eq!(c.vars().len(), 2);
    }

    #[test]
    fn mixed_condition_partially_folds() {
        // (a = 1 AND b < 5) where a = 1 (const) and b = ?x: residue is ?x < 5.
        let t = Tuple::new(vec![Value::Int(1), var(3)]);
        let p = Expr::col(0)
            .eq(Expr::lit(1i64))
            .and(Expr::col(1).lt(Expr::lit(5i64)));
        let c = predicate_to_condition(&p, &t).unwrap();
        assert_eq!(c.atom_count(), 1);
    }

    #[test]
    fn between_over_variable() {
        let t = Tuple::new(vec![var(4)]);
        let p = Expr::col(0).between(Expr::lit(1i64), Expr::lit(9i64));
        let c = predicate_to_condition(&p, &t).unwrap();
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn in_list_over_variable() {
        let t = Tuple::new(vec![var(4)]);
        let p = Expr::InList(
            Box::new(Expr::col(0)),
            vec![Expr::lit(1i64), Expr::lit(2i64)],
        );
        let c = predicate_to_condition(&p, &t).unwrap();
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn arithmetic_over_variable_is_unsupported() {
        let t = Tuple::new(vec![var(4)]);
        let p = Expr::col(0).add(Expr::lit(1i64)).lt(Expr::lit(5i64));
        assert!(matches!(
            predicate_to_condition(&p, &t),
            Err(SymbolicError::Unsupported(_))
        ));
    }

    #[test]
    fn arithmetic_over_constants_is_fine() {
        let t = Tuple::new(vec![Value::Int(2), var(4)]);
        let p = Expr::col(0).add(Expr::lit(1i64)).lt(Expr::col(1));
        let c = predicate_to_condition(&p, &t).unwrap();
        // 2 + 1 < ?x4 becomes the atom 3 < ?x4.
        assert_eq!(c.atom_count(), 1);
    }
}
