//! Symbolic boolean conditions over comparison atoms.
//!
//! C-tables annotate tuples with *local conditions*: boolean expressions over
//! comparisons of variables and constants (paper Section 4.1). [`Condition`]
//! is that language. It doubles as the lineage/condition semiring
//! (`⊕ = ∨`, `⊗ = ∧`), which is how the exact certain-answer baseline of the
//! paper's Figure 10 instruments queries: joins conjoin conditions,
//! projections and unions disjoin them.

use std::fmt;
use ua_data::expr::CmpOp;
use ua_data::value::{Value, VarId};
use ua_data::FxHashSet;

/// One side of a comparison atom.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable from `Σ`.
    Var(VarId),
    /// A constant from the domain `𝔻`.
    Const(Value),
}

impl Term {
    /// Resolve under a valuation.
    fn resolve(&self, valuation: &dyn Fn(VarId) -> Value) -> Value {
        match self {
            Term::Var(v) => valuation(*v),
            Term::Const(c) => c.clone(),
        }
    }

    /// The constant value, if this term is constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A comparison atom `left op right`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// Comparison operator.
    pub op: CmpOp,
    /// Left term.
    pub left: Term,
    /// Right term.
    pub right: Term,
}

impl Atom {
    /// Build an atom.
    pub fn new(op: CmpOp, left: Term, right: Term) -> Atom {
        Atom { op, left, right }
    }

    /// `var op const` shorthand.
    pub fn var_const(var: VarId, op: CmpOp, value: impl Into<Value>) -> Atom {
        Atom::new(op, Term::Var(var), Term::Const(value.into()))
    }

    /// `var op var` shorthand.
    pub fn var_var(left: VarId, op: CmpOp, right: VarId) -> Atom {
        Atom::new(op, Term::Var(left), Term::Var(right))
    }

    /// The negated atom (`¬(a < b) ≡ a ≥ b` — total orders only, which holds
    /// for our domains).
    pub fn negate(&self) -> Atom {
        Atom {
            op: self.op.negate(),
            left: self.left.clone(),
            right: self.right.clone(),
        }
    }

    /// Whether `other` is the syntactic complement of `self`
    /// (same terms, negated operator — possibly flipped).
    pub fn is_complement_of(&self, other: &Atom) -> bool {
        let direct =
            self.op.negate() == other.op && self.left == other.left && self.right == other.right;
        let flipped = self.op.negate() == other.op.flip()
            && self.left == other.right
            && self.right == other.left;
        direct || flipped
    }

    /// Evaluate under a (total) valuation; incomparable values make the atom
    /// false.
    pub fn eval(&self, valuation: &dyn Fn(VarId) -> Value) -> bool {
        let l = self.left.resolve(valuation);
        let r = self.right.resolve(valuation);
        match l.sql_cmp(&r) {
            Some(ord) => self.op.test(ord),
            None => false,
        }
    }

    /// Partial evaluation: if both terms are constants, the truth value.
    pub fn const_value(&self) -> Option<bool> {
        let l = self.left.as_const()?;
        let r = self.right.as_const()?;
        Some(match l.sql_cmp(r) {
            Some(ord) => self.op.test(ord),
            None => false,
        })
    }

    /// Collect the variables of this atom.
    pub fn collect_vars(&self, out: &mut FxHashSet<VarId>) {
        if let Term::Var(v) = self.left {
            out.insert(v);
        }
        if let Term::Var(v) = self.right {
            out.insert(v);
        }
    }

    /// Substitute variables via `map` (variables not mapped stay symbolic).
    pub fn substitute(&self, map: &dyn Fn(VarId) -> Option<Value>) -> Atom {
        let sub = |t: &Term| match t {
            Term::Var(v) => match map(*v) {
                Some(val) => Term::Const(val),
                None => t.clone(),
            },
            Term::Const(_) => t.clone(),
        };
        Atom {
            op: self.op,
            left: sub(&self.left),
            right: sub(&self.right),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

/// A boolean condition over comparison atoms.
///
/// `PartialEq` is *semantic* (logical equivalence, decided by the solver in
/// [`crate::solver`]), so that the semiring laws hold observably; use
/// [`Condition::structurally_eq`] for cheap syntactic comparison.
#[derive(Clone, Debug)]
pub enum Condition {
    /// The constant `true` (the `1` of the condition semiring).
    True,
    /// The constant `false` (the `0` of the condition semiring).
    False,
    /// A comparison atom.
    Atom(Atom),
    /// Negation.
    Not(Box<Condition>),
    /// N-ary conjunction.
    And(Vec<Condition>),
    /// N-ary disjunction.
    Or(Vec<Condition>),
}

impl Condition {
    /// An atom condition.
    pub fn atom(a: Atom) -> Condition {
        Condition::Atom(a)
    }

    /// `var = value` shorthand (the workhorse of BI-DB descriptors).
    pub fn var_eq(var: VarId, value: impl Into<Value>) -> Condition {
        Condition::Atom(Atom::var_const(var, CmpOp::Eq, value))
    }

    /// Simplifying conjunction of two conditions.
    pub fn and(self, other: Condition) -> Condition {
        Condition::and_all([self, other])
    }

    /// Simplifying disjunction of two conditions.
    pub fn or(self, other: Condition) -> Condition {
        Condition::or_all([self, other])
    }

    /// Simplifying negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner) => *inner,
            Condition::Atom(a) => Condition::Atom(a.negate()),
            other => Condition::Not(Box::new(other)),
        }
    }

    /// Flattening, unit-dropping n-ary conjunction.
    pub fn and_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut parts = Vec::new();
        for c in conds {
            match c {
                Condition::True => {}
                Condition::False => return Condition::False,
                Condition::And(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        parts.dedup_by(|a, b| a.structurally_eq(b));
        match parts.len() {
            0 => Condition::True,
            1 => parts.pop().expect("len checked"),
            _ => Condition::And(parts),
        }
    }

    /// Flattening, unit-dropping n-ary disjunction.
    pub fn or_all(conds: impl IntoIterator<Item = Condition>) -> Condition {
        let mut parts = Vec::new();
        for c in conds {
            match c {
                Condition::False => {}
                Condition::True => return Condition::True,
                Condition::Or(inner) => parts.extend(inner),
                other => parts.push(other),
            }
        }
        parts.dedup_by(|a, b| a.structurally_eq(b));
        match parts.len() {
            0 => Condition::False,
            1 => parts.pop().expect("len checked"),
            _ => Condition::Or(parts),
        }
    }

    /// Evaluate under a total valuation of the variables.
    pub fn eval(&self, valuation: &dyn Fn(VarId) -> Value) -> bool {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Atom(a) => a.eval(valuation),
            Condition::Not(c) => !c.eval(valuation),
            Condition::And(cs) => cs.iter().all(|c| c.eval(valuation)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval(valuation)),
        }
    }

    /// All variables mentioned.
    pub fn vars(&self) -> FxHashSet<VarId> {
        let mut out = FxHashSet::default();
        self.collect_vars(&mut out);
        out
    }

    /// Collect variables into `out`.
    pub fn collect_vars(&self, out: &mut FxHashSet<VarId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(a) => a.collect_vars(out),
            Condition::Not(c) => c.collect_vars(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_vars(out);
                }
            }
        }
    }

    /// Substitute (some) variables by constants and simplify: atoms that
    /// become ground collapse to `True`/`False`, which propagates upward.
    pub fn substitute(&self, map: &dyn Fn(VarId) -> Option<Value>) -> Condition {
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Atom(a) => {
                let sub = a.substitute(map);
                match sub.const_value() {
                    Some(true) => Condition::True,
                    Some(false) => Condition::False,
                    None => Condition::Atom(sub),
                }
            }
            Condition::Not(c) => c.substitute(map).not(),
            Condition::And(cs) => Condition::and_all(cs.iter().map(|c| c.substitute(map))),
            Condition::Or(cs) => Condition::or_all(cs.iter().map(|c| c.substitute(map))),
        }
    }

    /// Number of atoms (a size/complexity measure).
    pub fn atom_count(&self) -> usize {
        match self {
            Condition::True | Condition::False => 0,
            Condition::Atom(_) => 1,
            Condition::Not(c) => c.atom_count(),
            Condition::And(cs) | Condition::Or(cs) => cs.iter().map(Condition::atom_count).sum(),
        }
    }

    /// Structural (syntactic) equality — used where semantic equivalence
    /// (which requires the solver) would be overkill.
    pub fn structurally_eq(&self, other: &Condition) -> bool {
        match (self, other) {
            (Condition::True, Condition::True) | (Condition::False, Condition::False) => true,
            (Condition::Atom(a), Condition::Atom(b)) => a == b,
            (Condition::Not(a), Condition::Not(b)) => a.structurally_eq(b),
            (Condition::And(a), Condition::And(b)) | (Condition::Or(a), Condition::Or(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.structurally_eq(y))
            }
            _ => false,
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "⊤"),
            Condition::False => write!(f, "⊥"),
            Condition::Atom(a) => write!(f, "{a}"),
            Condition::Not(c) => write!(f, "¬({c})"),
            Condition::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Condition::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn atom_eval() {
        let a = Atom::var_const(x(), CmpOp::Lt, 5i64);
        assert!(a.eval(&|_| Value::Int(3)));
        assert!(!a.eval(&|_| Value::Int(7)));
    }

    #[test]
    fn atom_negation_total_order() {
        let a = Atom::var_const(x(), CmpOp::Lt, 5i64);
        let n = a.negate();
        for v in [0i64, 5, 9] {
            assert_ne!(a.eval(&|_| Value::Int(v)), n.eval(&|_| Value::Int(v)));
        }
    }

    #[test]
    fn complement_detection() {
        let a = Atom::var_const(x(), CmpOp::Lt, 5i64);
        assert!(a.is_complement_of(&a.negate()));
        assert!(!a.is_complement_of(&a));
        // Flipped form: x < 5 vs 5 <= x.
        let flipped = Atom::new(CmpOp::Le, Term::Const(Value::Int(5)), Term::Var(x()));
        assert!(a.is_complement_of(&flipped));
    }

    #[test]
    fn smart_constructors_simplify() {
        let a = Condition::var_eq(x(), 1i64);
        assert!(a.clone().and(Condition::True).structurally_eq(&a));
        assert!(a
            .clone()
            .and(Condition::False)
            .structurally_eq(&Condition::False));
        assert!(a
            .clone()
            .or(Condition::True)
            .structurally_eq(&Condition::True));
        assert!(a.clone().or(Condition::False).structurally_eq(&a));
        assert!(Condition::and_all([]).structurally_eq(&Condition::True));
        assert!(Condition::or_all([]).structurally_eq(&Condition::False));
    }

    #[test]
    fn nested_and_flattens() {
        let a = Condition::var_eq(x(), 1i64);
        let b = Condition::var_eq(y(), 2i64);
        let c = Condition::var_eq(x(), 3i64);
        let nested = a.clone().and(b.clone()).and(c.clone());
        match nested {
            Condition::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flattened And, got {other}"),
        }
    }

    #[test]
    fn substitution_simplifies() {
        // (x = 1 ∧ y < 2) with x ↦ 1 leaves (y < 2).
        let c = Condition::var_eq(x(), 1i64).and(Condition::Atom(Atom::var_const(
            y(),
            CmpOp::Lt,
            2i64,
        )));
        let s = c.substitute(&|v| (v == x()).then_some(Value::Int(1)));
        assert_eq!(s.atom_count(), 1);
        let f = c.substitute(&|v| (v == x()).then_some(Value::Int(9)));
        assert!(f.structurally_eq(&Condition::False));
    }

    #[test]
    fn eval_connectives() {
        let c = Condition::var_eq(x(), 1i64)
            .or(Condition::var_eq(y(), 2i64))
            .not();
        let val = |xv: i64, yv: i64| {
            move |v: VarId| {
                if v == x() {
                    Value::Int(xv)
                } else {
                    Value::Int(yv)
                }
            }
        };
        assert!(!c.eval(&val(1, 0)));
        assert!(!c.eval(&val(0, 2)));
        assert!(c.eval(&val(0, 0)));
    }

    #[test]
    fn double_negation_collapses() {
        let a = Condition::var_eq(x(), 1i64);
        assert!(a.clone().not().not().structurally_eq(&a));
    }

    #[test]
    fn mixed_type_comparison_is_false() {
        let a = Atom::var_const(x(), CmpOp::Lt, "abc");
        assert!(!a.eval(&|_| Value::Int(3)));
    }
}
