//! Probability of a condition under independent variable distributions.
//!
//! PC-tables attach an independent, finite distribution to every variable
//! (paper Section 4.1); the probability of a tuple is the probability that
//! its local condition holds. This module computes that probability
//!
//! * **exactly**, by Shannon expansion: pick a variable, branch on each of
//!   its values, partially evaluate, and recurse — partial evaluation
//!   collapses decided branches early, which keeps the expansion close to
//!   the condition's true decision width; and
//! * **approximately**, by Monte-Carlo sampling with a configurable sample
//!   count derived from an `(ε, δ)` additive-error guarantee via Hoeffding's
//!   inequality. This substitutes for the anytime approximation of Olteanu
//!   et al. \[41\] used in the paper's Figure 19 (error bound 0.3).

use crate::condition::Condition;
use rand::Rng;
use ua_data::value::{Value, VarId};
use ua_data::FxHashMap;

/// Independent finite distributions for a set of variables.
#[derive(Clone, Debug, Default)]
pub struct VarDistributions {
    dists: FxHashMap<VarId, Vec<(Value, f64)>>,
}

impl VarDistributions {
    /// Empty distribution set.
    pub fn new() -> Self {
        VarDistributions::default()
    }

    /// Set the distribution of `var`.
    ///
    /// # Panics
    /// Panics if the support is empty, a probability is negative, or the
    /// total mass exceeds 1 + ε. (Mass may be *less* than 1 only when the
    /// remainder is interpreted by the caller — e.g. optional x-tuples; for
    /// plain variables supply a full distribution.)
    pub fn set(&mut self, var: VarId, dist: Vec<(Value, f64)>) {
        assert!(!dist.is_empty(), "distribution support must be non-empty");
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!(
            dist.iter().all(|(_, p)| *p >= 0.0) && total <= 1.0 + 1e-9,
            "probabilities must be non-negative and sum to at most 1 (got {total})"
        );
        self.dists.insert(var, dist);
    }

    /// The distribution of `var`, if registered.
    pub fn get(&self, var: VarId) -> Option<&[(Value, f64)]> {
        self.dists.get(&var).map(Vec::as_slice)
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.dists.len()
    }

    /// Whether no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.dists.is_empty()
    }

    /// The most likely value of each variable — the valuation inducing (an
    /// approximation of) the most probable world, used for best-guess-world
    /// extraction from PC-tables.
    pub fn argmax_valuation(&self) -> FxHashMap<VarId, Value> {
        self.dists
            .iter()
            .map(|(&v, dist)| {
                let best = dist
                    .iter()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty support");
                (v, best.0.clone())
            })
            .collect()
    }

    /// Sample a full valuation.
    pub fn sample(&self, rng: &mut impl Rng) -> FxHashMap<VarId, Value> {
        self.dists
            .iter()
            .map(|(&v, dist)| {
                let mut roll: f64 = rng.gen();
                let mut chosen = &dist[dist.len() - 1].0;
                for (value, p) in dist {
                    if roll < *p {
                        chosen = value;
                        break;
                    }
                    roll -= p;
                }
                (v, chosen.clone())
            })
            .collect()
    }
}

/// Exact probability of `cond` under `dists`, by Shannon expansion.
///
/// Variables mentioned by `cond` but absent from `dists` cause a panic:
/// a PC-table must define every variable it uses.
pub fn probability(cond: &Condition, dists: &VarDistributions) -> f64 {
    match cond {
        Condition::True => return 1.0,
        Condition::False => return 0.0,
        _ => {}
    }
    let mut vars: Vec<VarId> = cond.vars().into_iter().collect();
    vars.sort_unstable();
    let var = match vars.first() {
        Some(v) => *v,
        // Ground non-constant conditions can only arise from mixed-type
        // atoms, which evaluate like constants.
        None => {
            return if cond.eval(&|_| Value::Null) {
                1.0
            } else {
                0.0
            }
        }
    };
    let dist = dists
        .get(var)
        .unwrap_or_else(|| panic!("no distribution registered for {var}"));
    let mut total = 0.0;
    for (value, p) in dist {
        if *p == 0.0 {
            continue;
        }
        let restricted = cond.substitute(&|v| (v == var).then(|| value.clone()));
        total += p * probability(&restricted, dists);
    }
    total
}

/// The sample count that guarantees additive error ≤ `epsilon` with
/// probability ≥ 1 − `delta` (Hoeffding).
pub fn samples_for_error(epsilon: f64, delta: f64) -> u64 {
    assert!(epsilon > 0.0 && delta > 0.0 && delta < 1.0);
    ((2.0 / delta).ln() / (2.0 * epsilon * epsilon)).ceil() as u64
}

/// Monte-Carlo estimate of the probability of `cond` with `samples` draws.
pub fn probability_monte_carlo(
    cond: &Condition,
    dists: &VarDistributions,
    samples: u64,
    rng: &mut impl Rng,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut hits = 0u64;
    for _ in 0..samples {
        let valuation = dists.sample(rng);
        if cond.eval(&|v| valuation.get(&v).cloned().unwrap_or(Value::Null)) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Atom;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ua_data::expr::CmpOp;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    fn coin() -> Vec<(Value, f64)> {
        vec![(Value::Int(0), 0.5), (Value::Int(1), 0.5)]
    }

    #[test]
    fn single_variable() {
        let mut d = VarDistributions::new();
        d.set(x(), vec![(Value::Int(1), 0.3), (Value::Int(2), 0.7)]);
        let c = Condition::var_eq(x(), 1i64);
        assert!((probability(&c, &d) - 0.3).abs() < 1e-12);
        assert!((probability(&c.clone().not(), &d) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn independent_conjunction() {
        let mut d = VarDistributions::new();
        d.set(x(), coin());
        d.set(y(), coin());
        let c = Condition::var_eq(x(), 1i64).and(Condition::var_eq(y(), 1i64));
        assert!((probability(&c, &d) - 0.25).abs() < 1e-12);
        let u = Condition::var_eq(x(), 1i64).or(Condition::var_eq(y(), 1i64));
        assert!((probability(&u, &d) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn correlated_atoms_are_not_double_counted() {
        let mut d = VarDistributions::new();
        d.set(x(), coin());
        // x = 1 ∨ x = 1 has probability 0.5, not 0.75.
        let c = Condition::var_eq(x(), 1i64).or(Condition::var_eq(x(), 1i64));
        assert!((probability(&c, &d) - 0.5).abs() < 1e-12);
        // x = 0 ∧ x = 1 has probability 0.
        let z = Condition::var_eq(x(), 0i64).and(Condition::var_eq(x(), 1i64));
        assert!(probability(&z, &d).abs() < 1e-12);
    }

    #[test]
    fn order_atoms() {
        let mut d = VarDistributions::new();
        d.set(
            x(),
            vec![
                (Value::Int(1), 0.2),
                (Value::Int(2), 0.3),
                (Value::Int(3), 0.5),
            ],
        );
        let c = Condition::Atom(Atom::var_const(x(), CmpOp::Ge, 2i64));
        assert!((probability(&c, &d) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn tautology_has_probability_one() {
        let mut d = VarDistributions::new();
        d.set(x(), coin());
        let c =
            Condition::var_eq(x(), 1i64).or(Condition::Atom(Atom::var_const(x(), CmpOp::Ne, 1i64)));
        assert!((probability(&c, &d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_converges() {
        let mut d = VarDistributions::new();
        d.set(x(), coin());
        d.set(y(), coin());
        let c = Condition::var_eq(x(), 1i64).or(Condition::var_eq(y(), 1i64));
        let mut rng = StdRng::seed_from_u64(7);
        let n = samples_for_error(0.02, 0.01);
        let est = probability_monte_carlo(&c, &d, n, &mut rng);
        assert!(
            (est - 0.75).abs() < 0.03,
            "estimate {est} too far from 0.75"
        );
    }

    #[test]
    fn sample_count_formula() {
        // ln(2/0.05) / (2 · 0.3²) ≈ 20.5 ⇒ 21 samples.
        assert_eq!(samples_for_error(0.3, 0.05), 21);
        assert!(samples_for_error(0.01, 0.01) > 10_000);
    }

    #[test]
    fn argmax_valuation() {
        let mut d = VarDistributions::new();
        d.set(x(), vec![(Value::Int(1), 0.3), (Value::Int(2), 0.7)]);
        let v = d.argmax_valuation();
        assert_eq!(v.get(&x()), Some(&Value::Int(2)));
    }
}
