//! Symbolic boolean conditions over comparison atoms.
//!
//! This crate supplies everything the UA-DB reproduction needs around
//! C-table *local conditions* (paper Sections 4.1 and 11.1):
//!
//! * [`condition`] — the condition language (atoms over variables and
//!   constants, `∧`/`∨`/`¬`), with evaluation, substitution and
//!   simplification; conditions form the lineage semiring
//!   ([`semiring_impl`]);
//! * [`cnf`] — CNF recognition and the **PTIME tautology check** the paper's
//!   c-sound C-table labeling scheme builds on;
//! * [`solver`] — an **exact** validity/satisfiability decision procedure by
//!   order-region enumeration, substituting for the paper's use of Z3 (see
//!   DESIGN.md for the substitution argument);
//! * [`prob`] — exact (Shannon expansion) and Monte-Carlo probability of a
//!   condition under independent per-variable distributions (PC-tables,
//!   MayBMS `conf()`);
//! * [`symbolic`] — translation of relational predicates applied to
//!   variable-carrying tuples into conditions (symbolic selection/join over
//!   C-tables).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cnf;
pub mod condition;
pub mod parse;
pub mod prob;
pub mod semiring_impl;
pub mod solver;
pub mod symbolic;

pub use cnf::{cnf_tautology, is_cnf, to_cnf};
pub use condition::{Atom, Condition, Term};
pub use parse::{parse_condition, CondParseError, VarInterner};
pub use prob::{probability, probability_monte_carlo, samples_for_error, VarDistributions};
pub use solver::Solver;
pub use symbolic::{predicate_to_condition, SymbolicError};
