//! Conjunctive normal form and the PTIME tautology check.
//!
//! The paper's C-table labeling scheme (Section 4.1) marks a tuple certain
//! iff (1) it contains only constants and (2) its local condition *is in
//! CNF* and is a tautology — because tautology checking for CNF is
//! efficient: a CNF is a tautology iff **every clause** is a tautology, and
//! each clause is small. This module provides
//!
//! * [`is_cnf`] — the syntactic CNF test,
//! * [`cnf_tautology`] — the per-clause tautology check (syntactic
//!   complementary-literal fast path, falling back to the exact solver on
//!   the tiny per-clause formula),
//! * [`to_cnf`] — distribution-based CNF conversion (worst-case exponential;
//!   provided for tests and tooling, *not* used by the PTIME labeling).

use crate::condition::{Atom, Condition};
use crate::solver::Solver;

/// A literal: an atom or its negation, normalized to positive form
/// (negation is folded into the comparison operator).
fn as_literal(c: &Condition) -> Option<Atom> {
    match c {
        Condition::Atom(a) => Some(a.clone()),
        Condition::Not(inner) => match inner.as_ref() {
            Condition::Atom(a) => Some(a.negate()),
            _ => None,
        },
        _ => None,
    }
}

/// Whether `c` is a clause: a literal or a disjunction of literals.
fn is_clause(c: &Condition) -> bool {
    match c {
        Condition::True | Condition::False => true,
        Condition::Or(parts) => parts.iter().all(|p| as_literal(p).is_some()),
        other => as_literal(other).is_some(),
    }
}

/// Whether `c` is in conjunctive normal form: a clause, or a conjunction of
/// clauses.
pub fn is_cnf(c: &Condition) -> bool {
    match c {
        Condition::And(parts) => parts.iter().all(is_clause),
        other => is_clause(other),
    }
}

/// The clauses of a CNF condition (`None` if `c` is not in CNF).
pub fn clauses(c: &Condition) -> Option<Vec<Vec<Atom>>> {
    fn clause_atoms(c: &Condition) -> Option<Vec<Atom>> {
        match c {
            Condition::Or(parts) => parts.iter().map(as_literal).collect(),
            other => as_literal(other).map(|a| vec![a]),
        }
    }
    match c {
        Condition::True => Some(vec![]),
        Condition::False => Some(vec![vec![]]),
        Condition::And(parts) => parts.iter().map(clause_atoms).collect(),
        other => clause_atoms(other).map(|cl| vec![cl]),
    }
}

/// PTIME tautology check for CNF conditions.
///
/// A CNF is a tautology iff every clause is. Each clause is checked with the
/// syntactic complementary-pair rule first; clauses that fail it fall back to
/// the exact solver *on the clause alone*, which is cheap because clauses
/// mention few atoms (this is still polynomial in the condition size for any
/// bounded clause width, matching the paper's claim).
///
/// Returns `None` when the condition is not in CNF — the labeling scheme
/// then conservatively treats the tuple as uncertain (c-soundness is
/// preserved; see paper Theorem 2).
pub fn cnf_tautology(c: &Condition) -> Option<bool> {
    let clauses = clauses(c)?;
    let solver = Solver::new();
    for clause in &clauses {
        if !clause_is_tautology(clause, &solver) {
            return Some(false);
        }
    }
    Some(true)
}

fn clause_is_tautology(clause: &[Atom], solver: &Solver) -> bool {
    // Fast path: a clause containing an atom and its syntactic complement is
    // valid (e.g. x < 5 ∨ x ≥ 5).
    for (i, a) in clause.iter().enumerate() {
        for b in &clause[i + 1..] {
            if a.is_complement_of(b) {
                return true;
            }
        }
    }
    // Exact check on the (small) clause.
    let cond = Condition::or_all(clause.iter().cloned().map(Condition::Atom));
    solver.is_valid(&cond)
}

/// Convert to CNF by pushing negations inward (comparisons negate cleanly
/// over total orders) and distributing `∨` over `∧`.
///
/// Worst-case exponential; intended for small conditions (tests, the C-table
/// generator's bookkeeping).
pub fn to_cnf(c: &Condition) -> Condition {
    let nnf = to_nnf(c);
    distribute(&nnf)
}

fn to_nnf(c: &Condition) -> Condition {
    match c {
        Condition::Not(inner) => match inner.as_ref() {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Atom(a) => Condition::Atom(a.negate()),
            Condition::Not(inner2) => to_nnf(inner2),
            Condition::And(parts) => {
                Condition::or_all(parts.iter().map(|p| to_nnf(&p.clone().not())))
            }
            Condition::Or(parts) => {
                Condition::and_all(parts.iter().map(|p| to_nnf(&p.clone().not())))
            }
        },
        Condition::And(parts) => Condition::and_all(parts.iter().map(to_nnf)),
        Condition::Or(parts) => Condition::or_all(parts.iter().map(to_nnf)),
        other => other.clone(),
    }
}

fn distribute(c: &Condition) -> Condition {
    match c {
        Condition::And(parts) => Condition::and_all(parts.iter().map(distribute)),
        Condition::Or(parts) => {
            let dist_parts: Vec<Condition> = parts.iter().map(distribute).collect();
            // OR over a list where some members are ANDs: distribute pairwise.
            dist_parts
                .into_iter()
                .reduce(or_distribute)
                .unwrap_or(Condition::False)
        }
        other => other.clone(),
    }
}

fn or_distribute(a: Condition, b: Condition) -> Condition {
    match (a, b) {
        (Condition::And(ps), b) => {
            Condition::and_all(ps.into_iter().map(|p| or_distribute(p, b.clone())))
        }
        (a, Condition::And(qs)) => {
            Condition::and_all(qs.into_iter().map(|q| or_distribute(a.clone(), q)))
        }
        (a, b) => Condition::or_all([a, b]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::expr::CmpOp;
    use ua_data::value::VarId;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }
    fn atom(v: VarId, op: CmpOp, c: i64) -> Condition {
        Condition::Atom(Atom::var_const(v, op, c))
    }

    #[test]
    fn cnf_recognition() {
        let lit = atom(x(), CmpOp::Lt, 5);
        assert!(is_cnf(&lit));
        let clause = lit.clone().or(atom(y(), CmpOp::Eq, 1));
        assert!(is_cnf(&clause));
        let cnf = clause.clone().and(atom(x(), CmpOp::Ge, 0));
        assert!(is_cnf(&cnf));
        // ∨ over ∧ is not CNF.
        let not_cnf = Condition::or_all([
            atom(x(), CmpOp::Lt, 5).and(atom(y(), CmpOp::Eq, 1)),
            atom(x(), CmpOp::Ge, 5),
        ]);
        assert!(!is_cnf(&not_cnf));
    }

    #[test]
    fn negated_literals_are_cnf() {
        let c = Condition::Not(Box::new(atom(x(), CmpOp::Lt, 5))).or(atom(y(), CmpOp::Eq, 1));
        assert!(is_cnf(&c));
    }

    #[test]
    fn tautology_by_complement() {
        let c = atom(x(), CmpOp::Lt, 5).or(atom(x(), CmpOp::Ge, 5));
        assert_eq!(cnf_tautology(&c), Some(true));
    }

    #[test]
    fn tautology_needing_solver() {
        // x < 5 ∨ x ≥ 3: no syntactic complement, yet valid.
        let c = atom(x(), CmpOp::Lt, 5).or(atom(x(), CmpOp::Ge, 3));
        assert_eq!(cnf_tautology(&c), Some(true));
        // x < 3 ∨ x ≥ 5 is falsifiable (x = 4).
        let d = atom(x(), CmpOp::Lt, 3).or(atom(x(), CmpOp::Ge, 5));
        assert_eq!(cnf_tautology(&d), Some(false));
    }

    #[test]
    fn multi_clause_cnf() {
        let t = atom(x(), CmpOp::Lt, 5)
            .or(atom(x(), CmpOp::Ge, 5))
            .and(atom(y(), CmpOp::Eq, 1).or(atom(y(), CmpOp::Ne, 1)));
        assert_eq!(cnf_tautology(&t), Some(true));
        let f = atom(x(), CmpOp::Lt, 5)
            .or(atom(x(), CmpOp::Ge, 5))
            .and(atom(y(), CmpOp::Eq, 1));
        assert_eq!(cnf_tautology(&f), Some(false));
    }

    #[test]
    fn non_cnf_returns_none() {
        let c = Condition::or_all([
            atom(x(), CmpOp::Lt, 5).and(atom(y(), CmpOp::Eq, 1)),
            atom(x(), CmpOp::Ge, 5),
        ]);
        assert_eq!(cnf_tautology(&c), None);
    }

    #[test]
    fn constants() {
        assert_eq!(cnf_tautology(&Condition::True), Some(true));
        assert_eq!(cnf_tautology(&Condition::False), Some(false));
    }

    #[test]
    fn to_cnf_preserves_semantics() {
        let solver = Solver::new();
        let c = Condition::or_all([
            atom(x(), CmpOp::Lt, 5).and(atom(y(), CmpOp::Eq, 1)),
            atom(x(), CmpOp::Ge, 5).and(atom(y(), CmpOp::Ne, 1)),
        ]);
        let cnf = to_cnf(&c);
        assert!(is_cnf(&cnf));
        assert!(solver.equivalent(&c, &cnf));
    }

    #[test]
    fn to_cnf_handles_negation() {
        let solver = Solver::new();
        let c = atom(x(), CmpOp::Lt, 5).and(atom(y(), CmpOp::Eq, 1)).not();
        let cnf = to_cnf(&c);
        assert!(is_cnf(&cnf));
        assert!(solver.equivalent(&c, &cnf));
    }
}
