//! Property tests for the region-enumeration solver: agreement with brute
//! force over dense grids, duality, and CNF-check consistency.

use proptest::prelude::*;
use ua_conditions::{cnf_tautology, is_cnf, to_cnf, Atom, Condition, Solver, Term};
use ua_data::expr::CmpOp;
use ua_data::value::{Value, VarId};

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Atoms over two variables and small integer constants.
fn arb_atom() -> impl Strategy<Value = Condition> {
    (arb_op(), 0u32..2, -2i64..3, proptest::bool::ANY).prop_map(|(op, var, c, var_var)| {
        let atom = if var_var {
            Atom::var_var(VarId(0), op, VarId(1))
        } else {
            Atom::new(op, Term::Var(VarId(var)), Term::Const(Value::Int(c)))
        };
        Condition::Atom(atom)
    })
}

fn arb_condition() -> impl Strategy<Value = Condition> {
    let leaf = prop_oneof![arb_atom(), Just(Condition::True), Just(Condition::False),];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// Brute force: both variables range over a fine grid spanning all the
/// mentioned constants (including half-integer points for dense-order gaps).
fn brute_force_valid(cond: &Condition) -> bool {
    let grid: Vec<f64> = (-8..=8).map(|i| i as f64 / 2.0).collect();
    for &x in &grid {
        for &y in &grid {
            let holds = cond.eval(&|v: VarId| {
                if v == VarId(0) {
                    Value::float(x)
                } else {
                    Value::float(y)
                }
            });
            if !holds {
                return false;
            }
        }
    }
    true
}

fn brute_force_sat(cond: &Condition) -> bool {
    !brute_force_valid(&cond.clone().not())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The solver agrees with brute-force grid evaluation. (The grid spans
    /// the constants in [-2, 2] with half-integer steps, which realizes
    /// every order-region the solver distinguishes for these conditions.)
    #[test]
    fn solver_matches_brute_force(cond in arb_condition()) {
        let solver = Solver::new();
        prop_assert_eq!(solver.is_valid(&cond), brute_force_valid(&cond));
        prop_assert_eq!(solver.is_satisfiable(&cond), brute_force_sat(&cond));
    }

    /// Validity/satisfiability duality.
    #[test]
    fn duality(cond in arb_condition()) {
        let solver = Solver::new();
        prop_assert_eq!(
            solver.is_valid(&cond),
            !solver.is_satisfiable(&cond.clone().not())
        );
    }

    /// The PTIME CNF tautology check is *sound*: whenever it answers, it
    /// agrees with the exact solver.
    #[test]
    fn cnf_check_sound(cond in arb_condition()) {
        if let Some(answer) = cnf_tautology(&cond) {
            prop_assert_eq!(answer, Solver::new().is_valid(&cond));
        }
    }

    /// CNF conversion preserves semantics and really is CNF.
    #[test]
    fn cnf_conversion_preserves_semantics(cond in arb_condition()) {
        let cnf = to_cnf(&cond);
        prop_assert!(is_cnf(&cnf));
        prop_assert!(Solver::new().equivalent(&cond, &cnf));
    }

    /// Substituting a total valuation decides the condition and matches eval.
    #[test]
    fn substitution_grounds_out(cond in arb_condition(), x in -3i64..4, y in -3i64..4) {
        let grounded = cond.substitute(&|v: VarId| {
            Some(if v == VarId(0) { Value::Int(x) } else { Value::Int(y) })
        });
        let direct = cond.eval(&|v: VarId| {
            if v == VarId(0) { Value::Int(x) } else { Value::Int(y) }
        });
        prop_assert_eq!(grounded.structurally_eq(&Condition::True), direct);
        prop_assert_eq!(grounded.structurally_eq(&Condition::False), !direct);
    }
}
