//! Uncertainty labelings and their soundness/completeness classes.
//!
//! An *uncertainty labeling* is a K-database `L` approximating the certain
//! annotations of an incomplete K-database `𝒟` (paper Definition 4/5):
//!
//! * **c-sound**:    `L(t) ⪯_K cert_K(𝒟, t)` for all tuples (no false
//!   certainty claims);
//! * **c-complete**: `cert_K(𝒟, t) ⪯_K L(t)` (no missed certainty);
//! * **c-correct**:  both, i.e. `L(t) = cert_K(𝒟, t)`.
//!
//! These predicates are the test oracles for every labeling scheme in
//! `ua-models` and for the bound-preservation theorems in `ua-core`.

use crate::worlds::IncompleteDb;
use ua_data::relation::Database;
use ua_data::FxHashSet;
use ua_data::Tuple;
use ua_semiring::{LSemiring, Semiring};

/// A labeling is just a K-database whose annotations approximate certain
/// annotations.
pub type Labeling<K> = Database<K>;

/// The approximation class of a labeling (paper Definition 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LabelingClass {
    /// Under-approximates certain annotations.
    CSound,
    /// Over-approximates certain annotations.
    CComplete,
    /// Exactly the certain annotations.
    CCorrect,
}

fn all_support_tuples<K: Semiring>(
    labeling: &Labeling<K>,
    incomplete: &IncompleteDb<K>,
    name: &str,
) -> Vec<Tuple> {
    let mut seen: FxHashSet<Tuple> = FxHashSet::default();
    if let Some(rel) = labeling.get(name) {
        for (t, _) in rel.iter() {
            seen.insert(t.clone());
        }
    }
    for world in incomplete.worlds() {
        if let Some(rel) = world.get(name) {
            for (t, _) in rel.iter() {
                seen.insert(t.clone());
            }
        }
    }
    seen.into_iter().collect()
}

/// Whether `labeling` is c-sound for `incomplete`.
pub fn is_c_sound<K: LSemiring>(labeling: &Labeling<K>, incomplete: &IncompleteDb<K>) -> bool {
    incomplete.world(0).names().all(|name| {
        all_support_tuples(labeling, incomplete, name)
            .iter()
            .all(|t| {
                let l = labeling
                    .get(name)
                    .map(|r| r.annotation(t))
                    .unwrap_or_else(K::zero);
                l.natural_leq(&incomplete.certain_annotation(name, t))
            })
    })
}

/// Whether `labeling` is c-complete for `incomplete`.
pub fn is_c_complete<K: LSemiring>(labeling: &Labeling<K>, incomplete: &IncompleteDb<K>) -> bool {
    incomplete.world(0).names().all(|name| {
        all_support_tuples(labeling, incomplete, name)
            .iter()
            .all(|t| {
                let l = labeling
                    .get(name)
                    .map(|r| r.annotation(t))
                    .unwrap_or_else(K::zero);
                incomplete.certain_annotation(name, t).natural_leq(&l)
            })
    })
}

/// Whether `labeling` is c-correct for `incomplete`.
pub fn is_c_correct<K: LSemiring>(labeling: &Labeling<K>, incomplete: &IncompleteDb<K>) -> bool {
    is_c_sound(labeling, incomplete) && is_c_complete(labeling, incomplete)
}

/// Classify a labeling, preferring the strongest applicable class; `None`
/// when it is neither sound nor complete.
pub fn classify<K: LSemiring>(
    labeling: &Labeling<K>,
    incomplete: &IncompleteDb<K>,
) -> Option<LabelingClass> {
    match (
        is_c_sound(labeling, incomplete),
        is_c_complete(labeling, incomplete),
    ) {
        (true, true) => Some(LabelingClass::CCorrect),
        (true, false) => Some(LabelingClass::CSound),
        (false, true) => Some(LabelingClass::CComplete),
        (false, false) => None,
    }
}

/// Count labeling errors for set-like semirings: `(false_negatives,
/// false_positives)` where a false negative is a certain tuple labeled
/// below its certain annotation and a false positive a tuple labeled above
/// it. Used by the experiment harness (paper Figures 15, 17, 19, 20).
pub fn label_errors<K: LSemiring>(
    labeling: &Labeling<K>,
    incomplete: &IncompleteDb<K>,
    name: &str,
) -> (usize, usize) {
    let mut false_negatives = 0;
    let mut false_positives = 0;
    for t in all_support_tuples(labeling, incomplete, name) {
        let l = labeling
            .get(name)
            .map(|r| r.annotation(&t))
            .unwrap_or_else(K::zero);
        let cert = incomplete.certain_annotation(name, &t);
        if l == cert {
            continue;
        }
        if l.natural_leq(&cert) {
            false_negatives += 1;
        } else {
            false_positives += 1;
        }
    }
    (false_negatives, false_positives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::incomplete_from_relations;
    use ua_data::relation::{bag_relation, Relation};
    use ua_data::schema::Schema;
    use ua_data::tuple;
    use ua_data::value::Value;

    fn two_world_db() -> IncompleteDb<u64> {
        let d1 = bag_relation(
            "r",
            &["a"],
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        );
        let d2 = bag_relation("r", &["a"], vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
        incomplete_from_relations("r", vec![d1, d2])
    }

    fn labeling(pairs: Vec<(i64, u64)>) -> Labeling<u64> {
        let mut db = Database::new();
        db.insert(
            "r",
            Relation::from_annotated(
                Schema::qualified("r", ["a"]),
                pairs.into_iter().map(|(v, k)| (tuple![v], k)),
            ),
        );
        db
    }

    #[test]
    fn exact_labeling_is_c_correct() {
        let db = two_world_db();
        let exact = db.certain_database();
        assert!(is_c_correct(&exact, &db));
        assert_eq!(classify(&exact, &db), Some(LabelingClass::CCorrect));
    }

    #[test]
    fn under_labeling_is_c_sound() {
        let db = two_world_db();
        // cert: {1 ↦ 1}. Label nothing certain.
        let empty = labeling(vec![]);
        assert!(is_c_sound(&empty, &db));
        assert!(!is_c_complete(&empty, &db));
        assert_eq!(classify(&empty, &db), Some(LabelingClass::CSound));
    }

    #[test]
    fn over_labeling_is_c_complete() {
        let db = two_world_db();
        // Label 1↦2 and 2↦1 and 3↦1: everything at or above cert.
        let over = labeling(vec![(1, 2), (2, 1), (3, 1)]);
        assert!(!is_c_sound(&over, &db));
        assert!(is_c_complete(&over, &db));
        assert_eq!(classify(&over, &db), Some(LabelingClass::CComplete));
    }

    #[test]
    fn incomparable_labeling_is_neither() {
        let db = two_world_db();
        // 1 ↦ 0 (under) but 2 ↦ 5 (over): neither sound nor complete.
        let mixed = labeling(vec![(2, 5)]);
        assert_eq!(classify(&mixed, &db), None);
    }

    #[test]
    fn error_counting() {
        let db = two_world_db();
        // cert = {1 ↦ 1}. Labeling misses 1 (FN) and over-claims 2 (FP).
        let mixed = labeling(vec![(2, 5)]);
        let (fn_, fp) = label_errors(&mixed, &db, "r");
        assert_eq!((fn_, fp), (1, 1));
        let exact = db.certain_database();
        assert_eq!(label_errors(&exact, &db, "r"), (0, 0));
    }
}
