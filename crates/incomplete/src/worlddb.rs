//! `K^W`-databases: the pivoted encoding of an incomplete K-database.
//!
//! Instead of `n` separate worlds, a single database annotates each tuple
//! with the vector of its annotations across all worlds (paper Section 3.2).
//! Because `K^W` is itself a semiring and `pw_i` is a homomorphism
//! (Lemma 1), ordinary K-relational query evaluation over a
//! `K^W`-database *is* possible-world semantics — Proposition 1's
//! isomorphism, which the tests of this module exercise directly.

use crate::worlds::IncompleteDb;
use ua_data::algebra::{eval, RaError, RaExpr};
use ua_data::relation::{Database, Relation};
use ua_data::tuple::Tuple;
use ua_semiring::hom::pw;
use ua_semiring::world::WorldVec;
use ua_semiring::{LSemiring, Semiring};

/// A database annotated with per-world vectors.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldDb<K: Semiring> {
    db: Database<WorldVec<K>>,
    n_worlds: usize,
    probabilities: Option<Vec<f64>>,
}

impl<K: Semiring> WorldDb<K> {
    /// Wrap an already-pivoted database.
    ///
    /// # Panics
    /// Panics when `n_worlds` is zero.
    pub fn new(db: Database<WorldVec<K>>, n_worlds: usize) -> WorldDb<K> {
        assert!(n_worlds > 0, "need at least one possible world");
        WorldDb {
            db,
            n_worlds,
            probabilities: None,
        }
    }

    /// Pivot an [`IncompleteDb`] into its `K^W` encoding.
    pub fn from_incomplete(incomplete: &IncompleteDb<K>) -> WorldDb<K> {
        let n = incomplete.n_worlds();
        let mut out = Database::new();
        for name in incomplete.world(0).names() {
            let schema = incomplete.world(0).get(name).expect("name listed").schema();
            let mut rel: Relation<WorldVec<K>> = Relation::new(schema.clone());
            // Union of supports across worlds.
            let mut support: Vec<Tuple> = Vec::new();
            for i in 0..n {
                if let Some(r) = incomplete.world(i).get(name) {
                    for (t, _) in r.iter() {
                        support.push(t.clone());
                    }
                }
            }
            support.sort();
            support.dedup();
            for t in support {
                let vector: Vec<K> = (0..n)
                    .map(|i| {
                        incomplete
                            .world(i)
                            .get(name)
                            .map(|r| r.annotation(&t))
                            .unwrap_or_else(K::zero)
                    })
                    .collect();
                rel.set(t, WorldVec::from_worlds(vector));
            }
            out.insert(name.clone(), rel);
        }
        let mut world_db = WorldDb::new(out, n);
        if (0..n).map(|i| incomplete.probability(i)).sum::<f64>() > 0.0 {
            world_db.probabilities = Some((0..n).map(|i| incomplete.probability(i)).collect());
        }
        world_db
    }

    /// Unpivot into an explicit set of worlds (the other direction of
    /// Proposition 1's isomorphism).
    pub fn to_incomplete(&self) -> IncompleteDb<K> {
        let worlds: Vec<Database<K>> = (0..self.n_worlds).map(|i| self.world(i)).collect();
        let incomplete = IncompleteDb::new(worlds);
        match &self.probabilities {
            Some(p) => incomplete.with_probabilities(p.clone()),
            None => incomplete,
        }
    }

    /// Number of worlds.
    pub fn n_worlds(&self) -> usize {
        self.n_worlds
    }

    /// The underlying `K^W`-database.
    pub fn database(&self) -> &Database<WorldVec<K>> {
        &self.db
    }

    /// Extract world `i` via the homomorphism `pw_i` (paper Eq. 5).
    pub fn world(&self, i: usize) -> Database<K> {
        assert!(i < self.n_worlds, "world index out of range");
        self.db.map_annotations(&pw::<K>(i))
    }

    /// Attach a probability distribution over worlds.
    pub fn with_probabilities(mut self, probabilities: Vec<f64>) -> WorldDb<K> {
        assert_eq!(probabilities.len(), self.n_worlds);
        self.probabilities = Some(probabilities);
        self
    }

    /// The probability of world `i` (uniform when unset).
    pub fn probability(&self, i: usize) -> f64 {
        match &self.probabilities {
            Some(p) => p[i],
            None => 1.0 / self.n_worlds as f64,
        }
    }

    /// The index of a most-probable world.
    pub fn best_guess_world(&self) -> usize {
        match &self.probabilities {
            None => 0,
            Some(p) => {
                let mut best = 0;
                for (i, q) in p.iter().enumerate() {
                    if *q > p[best] {
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Evaluate a query directly over the `K^W` encoding. By Lemma 1 /
    /// Proposition 1 this coincides with per-world evaluation.
    pub fn query(&self, query: &RaExpr) -> Result<WorldDb<K>, RaError> {
        let result = eval(query, &self.db)?;
        let mut out = Database::new();
        out.insert("result", result);
        Ok(WorldDb {
            db: out,
            n_worlds: self.n_worlds,
            probabilities: self.probabilities.clone(),
        })
    }

    /// `cert_K(𝒟, t)` for a tuple of relation `name` (paper Section 3.2).
    pub fn certain_annotation(&self, name: &str, t: &Tuple) -> K
    where
        K: LSemiring,
    {
        match self.db.get(name) {
            Some(r) if r.contains(t) => r.annotation(t).cert(),
            _ => K::zero(),
        }
    }

    /// `poss_K(𝒟, t)`.
    pub fn possible_annotation(&self, name: &str, t: &Tuple) -> K
    where
        K: LSemiring,
    {
        match self.db.get(name) {
            Some(r) if r.contains(t) => r.annotation(t).poss(),
            _ => K::zero(),
        }
    }

    /// The c-correct labeling: every tuple mapped to its certain annotation.
    pub fn certain_database(&self) -> Database<K>
    where
        K: LSemiring,
    {
        self.db.map_annotations(&|v: &WorldVec<K>| v.cert())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::incomplete_from_relations;
    use ua_data::relation::bag_relation;
    use ua_data::value::Value;
    use ua_data::{tuple, Expr};

    fn example7() -> IncompleteDb<u64> {
        let mk = |rows: Vec<(&str, &str, usize)>| {
            bag_relation(
                "loc",
                &["locale", "state"],
                rows.into_iter()
                    .flat_map(|(l, s, n)| {
                        std::iter::repeat_with(move || vec![Value::str(l), Value::str(s)]).take(n)
                    })
                    .collect::<Vec<_>>(),
            )
        };
        incomplete_from_relations(
            "loc",
            vec![
                mk(vec![("Lasalle", "NY", 3), ("Tucson", "AZ", 2)]),
                mk(vec![
                    ("Lasalle", "NY", 2),
                    ("Tucson", "AZ", 1),
                    ("Greenville", "IN", 5),
                ]),
            ],
        )
    }

    #[test]
    fn example8_pivot() {
        // Paper Example 8: the ℕ²-relation.
        let wdb = example7().to_world_db();
        let rel = wdb.database().get("loc").unwrap();
        assert_eq!(
            rel.annotation(&tuple!["Lasalle", "NY"]),
            WorldVec::from_worlds(vec![3u64, 2])
        );
        assert_eq!(
            rel.annotation(&tuple!["Greenville", "IN"]),
            WorldVec::from_worlds(vec![0u64, 5])
        );
    }

    #[test]
    fn proposition1_round_trip() {
        let original = example7();
        let round_tripped = original.to_world_db().to_incomplete();
        for i in 0..original.n_worlds() {
            assert_eq!(
                original.world(i).get("loc").unwrap(),
                round_tripped.world(i).get("loc").unwrap(),
                "world {i} must survive the pivot round-trip"
            );
        }
    }

    #[test]
    fn queries_commute_with_pw_lemma1() {
        // pw_i(Q(D)) = Q(pw_i(D)) for every world.
        let wdb = example7().to_world_db();
        let q = RaExpr::table("loc")
            .select(Expr::named("state").eq(Expr::lit("NY")))
            .project(["locale"]);
        let on_pivot = wdb.query(&q).unwrap();
        for i in 0..wdb.n_worlds() {
            let via_pivot = on_pivot.world(i);
            let mut world_db = Database::new();
            world_db.insert("loc", wdb.world(i).get("loc").unwrap().clone());
            let direct = eval(&q, &world_db).unwrap();
            assert_eq!(
                via_pivot.get("result").unwrap(),
                &direct,
                "Lemma 1 violated in world {i}"
            );
        }
    }

    #[test]
    fn certain_annotations_match_incomplete_form() {
        let inc = example7();
        let wdb = inc.to_world_db();
        for t in [
            tuple!["Lasalle", "NY"],
            tuple!["Tucson", "AZ"],
            tuple!["Greenville", "IN"],
        ] {
            assert_eq!(
                inc.certain_annotation("loc", &t),
                wdb.certain_annotation("loc", &t)
            );
            assert_eq!(
                inc.possible_annotation("loc", &t),
                wdb.possible_annotation("loc", &t)
            );
        }
    }

    #[test]
    fn world_extraction() {
        let wdb = example7().to_world_db();
        let w0 = wdb.world(0);
        assert_eq!(
            w0.get("loc").unwrap().annotation(&tuple!["Lasalle", "NY"]),
            3
        );
        assert_eq!(
            w0.get("loc")
                .unwrap()
                .annotation(&tuple!["Greenville", "IN"]),
            0
        );
    }

    #[test]
    fn certain_database_is_c_correct_labeling() {
        let wdb = example7().to_world_db();
        let cert = wdb.certain_database();
        let rel = cert.get("loc").unwrap();
        assert_eq!(rel.annotation(&tuple!["Lasalle", "NY"]), 2);
        assert_eq!(rel.annotation(&tuple!["Greenville", "IN"]), 0);
        assert_eq!(rel.support_size(), 2);
    }
}
