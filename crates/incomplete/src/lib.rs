//! Incomplete K-databases, `K^W`-databases and uncertainty labelings.
//!
//! This crate implements Sections 3 and 6 of the UA-DB paper:
//!
//! * [`worlds::IncompleteDb`] — explicit possible-world sets with
//!   possible-world query semantics, certain/possible annotations
//!   (GLB/LUB over the semiring's natural order), and optional world
//!   probabilities;
//! * [`worlddb::WorldDb`] — the pivoted `K^W` encoding, isomorphic to the
//!   explicit form (Proposition 1), over which ordinary K-relational query
//!   evaluation *is* possible-world semantics (Lemma 1);
//! * [`labeling`] — uncertainty labelings with c-soundness / c-completeness
//!   / c-correctness predicates (Definitions 4–6) used as test oracles
//!   throughout the workspace.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod labeling;
pub mod worlddb;
pub mod worlds;

pub use labeling::{
    classify, is_c_complete, is_c_correct, is_c_sound, label_errors, Labeling, LabelingClass,
};
pub use worlddb::WorldDb;
pub use worlds::{incomplete_from_relations, IncompleteDb};
