//! Incomplete K-databases: explicit sets of possible worlds.
//!
//! An incomplete K-database is a finite set `{D₁, …, Dₙ}` of K-databases
//! (paper Definition 1). Queries follow possible-world semantics: evaluate
//! over every world independently (paper Eq. 1). An optional probability
//! distribution over worlds turns the database into a probabilistic one
//! (paper Section 3.2, "Probabilistic Data").

use crate::worlddb::WorldDb;
use ua_data::algebra::{eval, RaError, RaExpr};
use ua_data::relation::{Database, Relation};
use ua_data::tuple::Tuple;
use ua_semiring::world::WorldVec;
use ua_semiring::{LSemiring, Semiring};

/// An incomplete K-database: one [`Database`] per possible world.
#[derive(Clone, Debug, PartialEq)]
pub struct IncompleteDb<K: Semiring> {
    worlds: Vec<Database<K>>,
    probabilities: Option<Vec<f64>>,
}

impl<K: Semiring> IncompleteDb<K> {
    /// Build from possible worlds.
    ///
    /// # Panics
    /// Panics when `worlds` is empty.
    pub fn new(worlds: Vec<Database<K>>) -> IncompleteDb<K> {
        assert!(
            !worlds.is_empty(),
            "an incomplete database needs at least one possible world"
        );
        IncompleteDb {
            worlds,
            probabilities: None,
        }
    }

    /// Attach a probability distribution over the worlds.
    ///
    /// # Panics
    /// Panics when the length does not match or the masses do not sum to ~1.
    pub fn with_probabilities(mut self, probabilities: Vec<f64>) -> IncompleteDb<K> {
        assert_eq!(
            probabilities.len(),
            self.worlds.len(),
            "one probability per world"
        );
        let total: f64 = probabilities.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "world probabilities must sum to 1 (got {total})"
        );
        self.probabilities = Some(probabilities);
        self
    }

    /// Number of possible worlds.
    pub fn n_worlds(&self) -> usize {
        self.worlds.len()
    }

    /// The `i`-th possible world.
    pub fn world(&self, i: usize) -> &Database<K> {
        &self.worlds[i]
    }

    /// All worlds.
    pub fn worlds(&self) -> &[Database<K>] {
        &self.worlds
    }

    /// The probability of world `i` (uniform when no distribution is set).
    pub fn probability(&self, i: usize) -> f64 {
        match &self.probabilities {
            Some(p) => p[i],
            None => 1.0 / self.worlds.len() as f64,
        }
    }

    /// The index of a most-probable world (the *best-guess world* of
    /// probabilistic best-guess query processing). Ties break to the lowest
    /// index; without a distribution, world 0 (paper: "In classical
    /// incomplete databases … any possible world can serve as a BGW").
    pub fn best_guess_world(&self) -> usize {
        match &self.probabilities {
            None => 0,
            Some(p) => {
                let mut best = 0;
                for (i, q) in p.iter().enumerate() {
                    if *q > p[best] {
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// Possible-world query semantics: `Q(𝒟) = { Q(D) | D ∈ 𝒟 }`
    /// (paper Eq. 1). The world distribution carries over unchanged.
    pub fn query(&self, query: &RaExpr) -> Result<IncompleteDb<K>, RaError> {
        let mut result_worlds = Vec::with_capacity(self.worlds.len());
        for world in &self.worlds {
            let mut out = Database::new();
            out.insert("result", eval(query, world)?);
            result_worlds.push(out);
        }
        Ok(IncompleteDb {
            worlds: result_worlds,
            probabilities: self.probabilities.clone(),
        })
    }

    /// The certain annotation `cert_K(𝒟, t) = ⊓ᵢ Dᵢ(t)` of a tuple in
    /// relation `name` (paper Section 3.1).
    pub fn certain_annotation(&self, name: &str, t: &Tuple) -> K
    where
        K: LSemiring,
    {
        let per_world: Vec<K> = self
            .worlds
            .iter()
            .map(|w| w.get(name).map(|r| r.annotation(t)).unwrap_or_else(K::zero))
            .collect();
        K::glb_all(per_world.iter()).expect("at least one world")
    }

    /// The possible annotation `poss_K(𝒟, t) = ⊔ᵢ Dᵢ(t)`.
    pub fn possible_annotation(&self, name: &str, t: &Tuple) -> K
    where
        K: LSemiring,
    {
        let per_world: Vec<K> = self
            .worlds
            .iter()
            .map(|w| w.get(name).map(|r| r.annotation(t)).unwrap_or_else(K::zero))
            .collect();
        K::lub_all(per_world.iter()).expect("at least one world")
    }

    /// The relation of certain annotations: every tuple annotated with its
    /// GLB across worlds (zero-annotated tuples omitted). This is the
    /// c-correct labeling — exactly what PTIME labeling schemes
    /// under-approximate.
    pub fn certain_relation(&self, name: &str) -> Option<Relation<K>>
    where
        K: LSemiring,
    {
        let first = self.worlds[0].get(name)?;
        let mut out = Relation::new(first.schema().clone());
        'tuples: for (t, _) in first.iter() {
            let mut acc: Option<K> = None;
            for w in &self.worlds {
                let k = match w.get(name) {
                    Some(r) => r.annotation(t),
                    None => K::zero(),
                };
                if k.is_zero() {
                    continue 'tuples; // glb with 0 is 0
                }
                acc = Some(match acc {
                    None => k,
                    Some(a) => a.glb(&k),
                });
            }
            if let Some(k) = acc {
                out.set(t.clone(), k);
            }
        }
        Some(out)
    }

    /// The relation of possible annotations (support = union of all worlds).
    pub fn possible_relation(&self, name: &str) -> Option<Relation<K>>
    where
        K: LSemiring,
    {
        let first = self.worlds[0].get(name)?;
        let mut out: Relation<K> = Relation::new(first.schema().clone());
        for w in &self.worlds {
            if let Some(r) = w.get(name) {
                for (t, k) in r.iter() {
                    let current = out.annotation(t);
                    out.set(t.clone(), current.lub(k));
                }
            }
        }
        Some(out)
    }

    /// The database of certain annotations across all relations.
    pub fn certain_database(&self) -> Database<K>
    where
        K: LSemiring,
    {
        let mut out = Database::new();
        for name in self.worlds[0].names() {
            if let Some(rel) = self.certain_relation(name) {
                out.insert(name.clone(), rel);
            }
        }
        out
    }

    /// Pivot into the equivalent `K^W`-database (paper Proposition 1).
    pub fn to_world_db(&self) -> WorldDb<K> {
        WorldDb::from_incomplete(self)
    }
}

/// Convenience: an incomplete database holding one relation per world.
pub fn incomplete_from_relations<K: Semiring>(
    name: &str,
    relations: Vec<Relation<K>>,
) -> IncompleteDb<K> {
    IncompleteDb::new(
        relations
            .into_iter()
            .map(|r| {
                let mut db = Database::new();
                db.insert(name, r);
                db
            })
            .collect(),
    )
}

/// Re-export for construction of `K^W` annotations by callers.
pub type WorldAnnotation<K> = WorldVec<K>;

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::relation::bag_relation;
    use ua_data::value::Value;
    use ua_data::{tuple, Expr};

    /// Paper Example 7: the two-world bag database over LOC.
    pub(crate) fn example7() -> IncompleteDb<u64> {
        let d1 = bag_relation(
            "loc",
            &["locale", "state"],
            vec![
                vec![Value::str("Lasalle"), Value::str("NY")],
                vec![Value::str("Lasalle"), Value::str("NY")],
                vec![Value::str("Lasalle"), Value::str("NY")],
                vec![Value::str("Tucson"), Value::str("AZ")],
                vec![Value::str("Tucson"), Value::str("AZ")],
            ],
        );
        let d2 = bag_relation(
            "loc",
            &["locale", "state"],
            vec![
                vec![Value::str("Lasalle"), Value::str("NY")],
                vec![Value::str("Lasalle"), Value::str("NY")],
                vec![Value::str("Tucson"), Value::str("AZ")],
                vec![Value::str("Greenville"), Value::str("IN")],
                vec![Value::str("Greenville"), Value::str("IN")],
                vec![Value::str("Greenville"), Value::str("IN")],
                vec![Value::str("Greenville"), Value::str("IN")],
                vec![Value::str("Greenville"), Value::str("IN")],
            ],
        );
        incomplete_from_relations("loc", vec![d1, d2])
    }

    #[test]
    fn example7_certain_annotations() {
        let db = example7();
        assert_eq!(db.certain_annotation("loc", &tuple!["Lasalle", "NY"]), 2);
        assert_eq!(db.certain_annotation("loc", &tuple!["Tucson", "AZ"]), 1);
        assert_eq!(db.certain_annotation("loc", &tuple!["Greenville", "IN"]), 0);
        assert_eq!(
            db.possible_annotation("loc", &tuple!["Greenville", "IN"]),
            5
        );
    }

    #[test]
    fn certain_relation_support() {
        let db = example7();
        let cert = db.certain_relation("loc").unwrap();
        assert_eq!(cert.support_size(), 2);
        assert_eq!(cert.annotation(&tuple!["Lasalle", "NY"]), 2);
        let poss = db.possible_relation("loc").unwrap();
        assert_eq!(poss.support_size(), 3);
        assert_eq!(poss.annotation(&tuple!["Greenville", "IN"]), 5);
    }

    #[test]
    fn query_has_possible_world_semantics() {
        // Paper Example 4 / Figure 6: σ_{state='NY'} evaluated per world.
        let db = example7();
        let q = RaExpr::table("loc").select(Expr::named("state").eq(Expr::lit("NY")));
        let result = db.query(&q).unwrap();
        assert_eq!(result.n_worlds(), 2);
        assert_eq!(
            result
                .world(0)
                .get("result")
                .unwrap()
                .annotation(&tuple!["Lasalle", "NY"]),
            3
        );
        assert_eq!(
            result
                .world(1)
                .get("result")
                .unwrap()
                .annotation(&tuple!["Lasalle", "NY"]),
            2
        );
    }

    #[test]
    fn best_guess_world_prefers_probability() {
        let db = example7().with_probabilities(vec![0.3, 0.7]);
        assert_eq!(db.best_guess_world(), 1);
        assert_eq!(example7().best_guess_world(), 0);
        assert!((db.probability(0) - 0.3).abs() < 1e-12);
        assert!((example7().probability(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_survive_queries() {
        let db = example7().with_probabilities(vec![0.3, 0.7]);
        let q = RaExpr::table("loc").project(["state"]);
        let result = db.query(&q).unwrap();
        assert!((result.probability(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_probabilities_rejected() {
        let _ = example7().with_probabilities(vec![0.3, 0.3]);
    }
}
