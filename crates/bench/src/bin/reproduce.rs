//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p ua-bench --bin reproduce            # everything
//! cargo run --release -p ua-bench --bin reproduce -- fig11   # one experiment
//! cargo run --release -p ua-bench --bin reproduce -- quick   # smaller sizes
//! ```
//!
//! Results are printed and written to `results/<experiment>.txt`.

use std::fs;
use std::path::Path;
use ua_bench::experiments::*;

struct Profile {
    pdbench_scale: f64,
    pdbench_scales: Vec<f64>,
    fig10_rows: usize,
    fig10_per_complexity: usize,
    fnr_rows_cap: usize,
    fnr_queries: usize,
    real_scale: usize,
    utility_rows: usize,
    prob_blocks: usize,
}

impl Profile {
    fn full() -> Profile {
        Profile {
            pdbench_scale: 0.002,
            pdbench_scales: vec![0.0005, 0.005, 0.05],
            fig10_rows: 24,
            fig10_per_complexity: 3,
            fnr_rows_cap: 6000,
            fnr_queries: 10,
            real_scale: 2000,
            utility_rows: 4000,
            prob_blocks: 800,
        }
    }

    fn quick() -> Profile {
        Profile {
            pdbench_scale: 0.0005,
            pdbench_scales: vec![0.0002, 0.001, 0.005],
            fig10_rows: 14,
            fig10_per_complexity: 2,
            fnr_rows_cap: 1200,
            fnr_queries: 5,
            real_scale: 60,
            utility_rows: 1000,
            prob_blocks: 250,
        }
    }
}

fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    fs::write(dir.join(format!("{name}.txt")), content).expect("write result file");
    eprintln!("[reproduce] wrote results/{name}.txt");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let profile = if quick {
        Profile::quick()
    } else {
        Profile::full()
    };
    let only: Vec<&str> = args
        .iter()
        .filter(|a| *a != "quick")
        .map(String::as_str)
        .collect();
    let want = |name: &str| only.is_empty() || only.contains(&name);
    let seed = 2019;

    let uncertainties = [0.02, 0.05, 0.10, 0.30];

    if want("fig10") {
        let points = fig10::run(profile.fig10_rows, 7, profile.fig10_per_complexity, seed);
        emit("fig10", &fig10::format(&points));
    }
    if want("fig11") {
        emit(
            "fig11",
            &pdbench_suite::figure11(profile.pdbench_scale, &uncertainties, seed),
        );
    }
    if want("fig12") {
        emit(
            "fig12",
            &pdbench_suite::figure12(profile.pdbench_scale, &uncertainties, seed),
        );
    }
    if want("fig13") {
        emit(
            "fig13",
            &pdbench_suite::figure13(profile.pdbench_scale, &uncertainties, seed),
        );
    }
    if want("fig14") {
        emit(
            "fig14",
            &pdbench_suite::figure14(&profile.pdbench_scales, seed),
        );
    }
    if want("fig15") {
        emit(
            "fig15",
            &fnr::figure15(profile.fnr_rows_cap, profile.fnr_queries, seed),
        );
    }
    if want("fig16") {
        emit("fig16", &fnr::figure16(profile.fnr_rows_cap, seed));
    }
    if want("fig17") {
        let results = real_queries::run(profile.real_scale, seed);
        emit("fig17", &real_queries::format(&results));
    }
    if want("fig18") {
        emit(
            "fig18",
            &utility_exp::figure18(profile.utility_rows, &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5], seed),
        );
    }
    if want("fig19") {
        let points = probabilistic::run(profile.prob_blocks, &[2, 5, 10, 20], seed);
        emit("fig19", &probabilistic::format(&points));
    }
    if want("fig20") {
        emit(
            "fig20",
            &fnr::figure20(profile.fnr_rows_cap, profile.fnr_queries, seed),
        );
    }
    if want("fig21") {
        emit(
            "fig21",
            &access::figure21(
                profile.fnr_rows_cap.min(2500),
                &[1, 3, 5, 7, 9],
                &[0.01, 0.05, 0.10, 0.15],
                3,
                seed,
            ),
        );
    }
    eprintln!("[reproduce] done");
}
