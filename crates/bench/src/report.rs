//! Timing and table-formatting helpers for the experiment harness.

use std::time::{Duration, Instant};

/// Time a closure, returning `(duration, result)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Time a closure averaged over `n` runs (first run included — the harness
/// materializes everything, so warm-up effects are negligible).
pub fn time_avg<T>(n: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(n >= 1);
    let start = Instant::now();
    let mut out = f();
    for _ in 1..n {
        out = f();
    }
    (start.elapsed() / n as u32, out)
}

/// Format a duration in adaptive units (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1_000_000.0)
    }
}

/// A plain-text table builder producing the paper-style rows.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given header.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(c);
                for _ in c.chars().count()..widths[i] {
                    line.push(' ');
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// One bench's JSON artifact, replacing the ad-hoc hand-formatted writers
/// the benches used to carry individually: ordered `key: value` fields,
/// an optional embedded per-operator stats breakdown
/// ([`ua_obs::QueryStats`], from an instrumented run of the benched
/// query), written as `<bench>.json` next to the bench — the files CI
/// uploads as artifacts.
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    bench: String,
    /// Field values pre-rendered as JSON (numbers via `Display`, strings
    /// via [`ua_obs::json_string`]).
    fields: Vec<(String, String)>,
    operator_stats: Vec<(String, ua_obs::QueryStats)>,
}

impl BenchReport {
    /// A report for the bench named `bench`.
    pub fn new(bench: impl Into<String>) -> BenchReport {
        BenchReport {
            bench: bench.into(),
            ..BenchReport::default()
        }
    }

    /// Append a numeric field.
    pub fn num(mut self, key: impl Into<String>, value: f64) -> BenchReport {
        self.fields.push((key.into(), format!("{value}")));
        self
    }

    /// Append an integer field.
    pub fn int(mut self, key: impl Into<String>, value: u64) -> BenchReport {
        self.fields.push((key.into(), value.to_string()));
        self
    }

    /// Append a string field.
    pub fn text(mut self, key: impl Into<String>, value: impl AsRef<str>) -> BenchReport {
        self.fields
            .push((key.into(), ua_obs::json_string(value.as_ref())));
        self
    }

    /// Embed an instrumented run's per-operator breakdown under
    /// `operator_stats.<label>` (typically one label per engine).
    pub fn operator_stats(
        mut self,
        label: impl Into<String>,
        stats: ua_obs::QueryStats,
    ) -> BenchReport {
        self.operator_stats.push((label.into(), stats));
        self
    }

    /// Render the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"bench\": {}", ua_obs::json_string(&self.bench));
        for (k, v) in &self.fields {
            out.push_str(&format!(",\n  {}: {v}", ua_obs::json_string(k)));
        }
        if !self.operator_stats.is_empty() {
            out.push_str(",\n  \"operator_stats\": {");
            for (i, (label, stats)) in self.operator_stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {}: {}",
                    ua_obs::json_string(label),
                    stats.to_json()
                ));
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// The artifact path: `BENCH_<name>.json` at the repository root, so
    /// successive bench runs (and CI artifact uploads) always land on the
    /// same trajectory file regardless of the bench's working directory.
    pub fn artifact_path(bench: &str) -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{bench}.json"))
    }

    /// Write `BENCH_<name>.json` at the repo root (the CI artifact path)
    /// and log it. When a previous artifact exists, its numeric fields are
    /// diffed against the new run first ([`compare`]) so the bench output
    /// shows the trajectory (`throughput: 1.2e6 -> 1.4e6 (+16.7%)`).
    pub fn write(&self) {
        let path = BenchReport::artifact_path(&self.bench);
        let prev = std::fs::read_to_string(&path).ok();
        let json = self.to_json();
        std::fs::write(&path, &json).expect("write bench json");
        println!("wrote {}", path.display());
        if let Some(prev) = prev {
            for line in compare(&prev, &json) {
                println!("  {line}");
            }
        }
    }
}

/// Diff the top-level numeric fields of two [`BenchReport`] JSON artifacts
/// (previous run vs current), returning one `key: old -> new (±x%)` line
/// per field present in both. Non-numeric fields and the embedded
/// `operator_stats` trees are skipped — the helper reports the trajectory
/// of the headline figures, not a structural diff.
pub fn compare(prev: &str, cur: &str) -> Vec<String> {
    let fields = |json: &str| -> Vec<(String, f64)> {
        json.lines()
            .filter_map(|line| {
                // Top-level fields render as `  "key": value,?` — two
                // spaces of indent, nothing deeper.
                let rest = line.strip_prefix("  \"")?;
                let (key, rest) = rest.split_once("\": ")?;
                let value: f64 = rest.trim_end_matches(',').trim().parse().ok()?;
                Some((key.to_string(), value))
            })
            .collect()
    };
    let old = fields(prev);
    fields(cur)
        .into_iter()
        .filter_map(|(key, new)| {
            let (_, prev) = old.iter().find(|(k, _)| *k == key)?;
            let pct = if *prev != 0.0 {
                format!(" ({:+.1}%)", (new - prev) / prev * 100.0)
            } else {
                String::new()
            };
            Some(format!("{key}: {prev} -> {new}{pct}"))
        })
        .collect()
}

/// Run `query` once with session stats collection on and hand back the
/// per-operator breakdown for [`BenchReport::operator_stats`]. The
/// previous stats setting is restored.
pub fn instrumented_stats(
    session: &ua_engine::UaSession,
    query: impl FnOnce(),
) -> Option<ua_obs::QueryStats> {
    let was = session.stats_enabled();
    session.set_stats_enabled(true);
    query();
    session.set_stats_enabled(was);
    session.last_query_stats()
}

/// Quartile summary of a sample (min, q1, median, q3, max) — the paper's
/// Figure 15 box rows.
pub fn quartiles(samples: &mut [f64]) -> (f64, f64, f64, f64, f64) {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let at = |q: f64| -> f64 {
        let pos = q * (samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            samples[lo]
        } else {
            samples[lo] + (samples[hi] - samples[lo]) * (pos - lo as f64)
        }
    };
    (at(0.0), at(0.25), at(0.5), at(0.75), at(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering() {
        let mut t = TextTable::new(["a", "long_header"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let s = t.render();
        assert!(s.contains("a    long_header"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn quartile_math() {
        let mut xs = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        let (min, q1, med, q3, max) = quartiles(&mut xs);
        assert_eq!((min, q1, med, q3, max), (1.0, 2.0, 3.0, 4.0, 5.0));
    }

    #[test]
    fn bench_report_json_shape() {
        let stats = ua_obs::QueryStats {
            engine: "row".into(),
            semantics: "det".into(),
            root: ua_obs::OperatorStats {
                name: "Scan".into(),
                rows_out: 3,
                ..ua_obs::OperatorStats::default()
            },
            pool: None,
            peak_mem_bytes: 0,
        };
        let json = BenchReport::new("demo")
            .int("rows", 100)
            .num("t_s", 0.5)
            .text("engine", "row")
            .operator_stats("row", stats)
            .to_json();
        assert!(json.starts_with("{\n  \"bench\": \"demo\""));
        assert!(json.contains("\"rows\": 100"));
        assert!(json.contains("\"t_s\": 0.5"));
        assert!(json.contains("\"engine\": \"row\""));
        assert!(json.contains("\"operator_stats\": {"));
        assert!(json.contains("\"op\": \"Scan\""));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn compare_reports_numeric_deltas() {
        let prev = BenchReport::new("demo")
            .int("rows", 100)
            .num("t_s", 2.0)
            .text("engine", "row")
            .to_json();
        let cur = BenchReport::new("demo")
            .int("rows", 100)
            .num("t_s", 1.0)
            .text("engine", "row")
            .num("fresh", 7.0)
            .to_json();
        let lines = compare(&prev, &cur);
        assert_eq!(
            lines,
            vec!["rows: 100 -> 100 (+0.0%)", "t_s: 2 -> 1 (-50.0%)"]
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }
}
