//! Experiment harness reproducing every table and figure of the UA-DB
//! paper's evaluation (Section 11). See `DESIGN.md` for the experiment
//! index and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Run everything with `cargo run --release -p ua-bench --bin reproduce`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
