//! Figure 17: the five "real" queries — UA overhead vs deterministic
//! processing, and false-negative rates against exact certain answers.
//!
//! Ground truth exploits that every query projects a key (crime id,
//! street address, …): each result tuple is derived from exactly one
//! x-tuple (or one pair, for Q5), so it is certain iff **all** alternatives
//! of its witnesses produce it. That criterion is exact here and PTIME.

use crate::report::{time_avg, TextTable};
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::FxHashSet;
use ua_datagen::opendata::{crime_table, food_table, graffiti_table, real_queries};
use ua_datagen::pdbench::{inject, PdbenchConfig};
use ua_engine::exec::execute;
use ua_engine::plan::Plan;
use ua_engine::sql::{parse, plan_query, RejectAnnotations};
use ua_engine::storage::{Catalog, Table};
use ua_engine::ua::UaSession;
use ua_models::{XDb, XRelation};

/// Per-query results.
#[derive(Clone, Debug)]
pub struct RealQueryResult {
    /// Query label (Q1–Q5).
    pub name: &'static str,
    /// Relative UA overhead (`ua/det − 1`).
    pub overhead: f64,
    /// False-negative rate against exact certain answers.
    pub error_rate: f64,
    /// Result size (rows).
    pub rows: usize,
}

struct TestBed {
    det: Catalog,
    ua: UaSession,
    xdb: XDb,
}

fn build_testbed(rows_scale: usize, seed: u64) -> TestBed {
    let tables: Vec<(&str, Table, &[&str])> = vec![
        (
            "crime",
            crime_table(8 * rows_scale, seed),
            &["iucr", "longitude", "latitude"],
        ),
        (
            "graffiti",
            graffiti_table(3 * rows_scale, seed + 1),
            &["status", "community_area"],
        ),
        (
            "foodinspections",
            food_table(3 * rows_scale, seed + 2),
            &["results", "risk"],
        ),
    ];
    let det = Catalog::new();
    let ua = UaSession::new();
    let mut xdb = XDb::new();
    for (name, table, eligible) in tables {
        let u = inject(
            name,
            &table,
            eligible,
            &PdbenchConfig {
                // Matches the real datasets' low attribute-uncertainty
                // (Figure 16: 0.1–1.5% of values).
                uncertainty: 0.015,
                max_values: 3,
                max_alternatives: 4,
                seed,
            },
        );
        det.register(name, u.bgw[name].clone());
        ua.register_table(name, u.encoded[name].clone());
        xdb.insert(name, u.xdb.get(name).expect("injected").clone());
    }
    TestBed { det, ua, xdb }
}

/// Exact certain answers of a single-table SPJ query: evaluate the plan on
/// each alternative of each non-optional x-tuple in isolation; the x-tuple
/// certainly contributes the tuples all alternatives agree on.
fn certain_single_table(plan: &Plan, table_name: &str, xrel: &XRelation) -> FxHashSet<Tuple> {
    let mut certain = FxHashSet::default();
    let catalog = Catalog::new();
    for xt in xrel.xtuples() {
        if xt.optional {
            continue;
        }
        let mut agreed: Option<Vec<Tuple>> = None;
        let mut all_agree = true;
        for alt in &xt.alternatives {
            catalog.register(
                table_name,
                Table::from_rows(xrel.schema().clone(), vec![alt.tuple.clone()]),
            );
            let result = execute(plan, &catalog).expect("singleton eval");
            let rows = result.sorted_rows();
            match &agreed {
                None => agreed = Some(rows),
                Some(prev) => {
                    if *prev != rows {
                        all_agree = false;
                        break;
                    }
                }
            }
        }
        if all_agree {
            if let Some(rows) = agreed {
                certain.extend(rows);
            }
        }
    }
    certain
}

/// Exact certain answers of Q5 (the crime ⋈ graffiti query): the join
/// predicate touches only deterministic columns, so the matched pairs are
/// fixed; a pair certainly contributes iff all alternative combinations
/// project identically.
fn certain_q5(crime: &XRelation, graffiti: &XRelation) -> FxHashSet<Tuple> {
    let cs = crime.schema();
    let gs = graffiti.schema();
    let col = |s: &ua_data::Schema, n: &str| s.resolve(n).expect("column");
    let (c_district, c_x, c_y) = (
        col(cs, "district"),
        col(cs, "x_coordinate"),
        col(cs, "y_coordinate"),
    );
    let (g_district, g_x, g_y) = (
        col(gs, "police_district"),
        col(gs, "x_coordinate"),
        col(gs, "y_coordinate"),
    );
    let proj_c = [col(cs, "id"), col(cs, "case_number"), col(cs, "iucr")];
    let proj_g = [
        col(gs, "status"),
        col(gs, "service_request_number"),
        col(gs, "community_area"),
    ];

    let int_of = |v: &Value| match v {
        Value::Int(i) => *i,
        other => panic!("expected int, got {other}"),
    };

    let mut certain = FxHashSet::default();
    for g in graffiti.xtuples().iter().filter(|x| !x.optional) {
        let g0 = &g.alternatives[0].tuple;
        if int_of(&g0[g_district]) != 8 {
            continue;
        }
        for c in crime.xtuples().iter().filter(|x| !x.optional) {
            let c0 = &c.alternatives[0].tuple;
            if c0[c_district] != Value::str("008") {
                continue;
            }
            let (gx, gy) = (int_of(&g0[g_x]), int_of(&g0[g_y]));
            let (cx, cy) = (int_of(&c0[c_x]), int_of(&c0[c_y]));
            if !((cx - gx).abs() < 100 && (cy - gy).abs() < 100) {
                continue;
            }
            // Matched pair: check all alternative combos agree on the
            // projection.
            let mut tuples: FxHashSet<Tuple> = FxHashSet::default();
            for ca in &c.alternatives {
                for ga in &g.alternatives {
                    let mut values: Vec<Value> =
                        proj_c.iter().map(|&i| ca.tuple[i].clone()).collect();
                    values.extend(proj_g.iter().map(|&i| ga.tuple[i].clone()));
                    tuples.insert(Tuple::new(values));
                }
            }
            if tuples.len() == 1 {
                certain.extend(tuples);
            }
        }
    }
    certain
}

/// Run the Figure 17 experiment.
pub fn run(rows_scale: usize, seed: u64) -> Vec<RealQueryResult> {
    let bed = build_testbed(rows_scale, seed);
    let mut out = Vec::new();
    for (name, sql) in real_queries() {
        let ast = parse(sql).expect("paper query parses");
        let det_plan = ua_engine::optimize::push_filters(
            plan_query(&ast, &bed.det, &RejectAnnotations).expect("det plan"),
            &bed.det,
        );
        let (det_time, det_result) = time_avg(3, || execute(&det_plan, &bed.det).expect("det run"));
        let (ua_time, ua_result) = time_avg(3, || bed.ua.query_ua(sql).expect("ua run"));

        // Ground truth.
        let certain: FxHashSet<Tuple> = match name {
            "Q5" => certain_q5(
                bed.xdb.get("crime").expect("crime"),
                bed.xdb.get("graffiti").expect("graffiti"),
            ),
            _ => {
                let table_name = match name {
                    "Q1" | "Q2" => "crime",
                    "Q3" => "graffiti",
                    _ => "foodinspections",
                };
                certain_single_table(
                    &det_plan,
                    table_name,
                    bed.xdb.get(table_name).expect("relation"),
                )
            }
        };
        let labeled: FxHashSet<Tuple> = ua_result
            .rows_with_certainty()
            .into_iter()
            .filter(|(_, c)| *c)
            .map(|(t, _)| t)
            .collect();
        // c-soundness sanity: everything labeled certain must be certain.
        for t in &labeled {
            debug_assert!(certain.contains(t), "label not c-sound for {t} in {name}");
        }
        let missed = certain.iter().filter(|t| !labeled.contains(*t)).count();
        let error_rate = if certain.is_empty() {
            0.0
        } else {
            missed as f64 / certain.len() as f64
        };
        out.push(RealQueryResult {
            name,
            overhead: ua_time.as_secs_f64() / det_time.as_secs_f64().max(1e-12) - 1.0,
            error_rate,
            rows: det_result.len(),
        });
    }
    out
}

/// Render the Figure 17 table.
pub fn format(results: &[RealQueryResult]) -> String {
    let mut t = TextTable::new(["", "Q1", "Q2", "Q3", "Q4", "Q5"]);
    t.row(
        std::iter::once("Overhead".to_string()).chain(
            results
                .iter()
                .map(|r| format!("{:.2}%", r.overhead * 100.0)),
        ),
    );
    t.row(
        std::iter::once("Error Rate".to_string()).chain(
            results
                .iter()
                .map(|r| format!("{:.2}%", r.error_rate * 100.0)),
        ),
    );
    t.row(
        std::iter::once("Result rows".to_string())
            .chain(results.iter().map(|r| r.rows.to_string())),
    );
    format!(
        "Figure 17: real queries — UA overhead and error rate\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_run_with_low_error() {
        let results = run(60, 5);
        assert_eq!(results.len(), 5);
        for r in &results {
            assert!(
                r.error_rate <= 0.25,
                "{}: error rate {} suspiciously high",
                r.name,
                r.error_rate
            );
            assert!(r.error_rate >= 0.0);
        }
    }
}
