//! Figure 21: UA-DBs over the access-control semiring `A`.
//!
//! Tuples carry clearance annotations (`0 < T < S < C < P`); a heuristic
//! classifier assigns labels with a controlled error rate. Random
//! projections run under `A`-relational semantics on both the true and the
//! perturbed annotations; the reported error is the mean chain distance
//! between the two result annotations (e.g. `dist(C, T) = 0.4`), as in the
//! paper.

use crate::report::TextTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ua_data::relation::{Database, Relation};
use ua_data::{eval, RaExpr};
use ua_datagen::opendata::{generate, DatasetSpec, DATASETS};
use ua_datagen::queries::random_projection;
use ua_semiring::access::Access;

/// Build an `A`-annotated relation from a dataset's best-guess table, with
/// random clearance labels.
fn access_relation(table: &ua_engine::storage::Table, rng: &mut StdRng) -> Relation<Access> {
    let labels = [
        Access::TopSecret,
        Access::Secret,
        Access::Confidential,
        Access::Public,
    ];
    Relation::from_annotated(
        table.schema().clone(),
        table
            .rows()
            .iter()
            .map(|t| (t.clone(), labels[rng.gen_range(0..labels.len())])),
    )
}

/// Perturb a fraction of the annotations to a random different clearance.
fn perturb(rel: &Relation<Access>, error_rate: f64, rng: &mut StdRng) -> Relation<Access> {
    Relation::from_annotated(
        rel.schema().clone(),
        rel.iter().map(|(t, &a)| {
            let label = if rng.gen::<f64>() < error_rate {
                let mut candidate = a;
                while candidate == a {
                    candidate = Access::ALL[rng.gen_range(1..Access::ALL.len())];
                }
                candidate
            } else {
                a
            };
            (t.clone(), label)
        }),
    )
}

/// Mean annotation distance between projections of the true and perturbed
/// relations.
pub fn projection_label_error(
    truth: &Relation<Access>,
    perturbed: &Relation<Access>,
    query: &RaExpr,
    name: &str,
) -> f64 {
    let mut db_true: Database<Access> = Database::new();
    db_true.insert(name, truth.clone());
    let mut db_pert: Database<Access> = Database::new();
    db_pert.insert(name, perturbed.clone());
    let r_true = eval(query, &db_true).expect("true eval");
    let r_pert = eval(query, &db_pert).expect("perturbed eval");
    let mut total = 0.0;
    let mut n = 0usize;
    for (t, &a) in r_true.iter() {
        let b = r_pert.annotation(t);
        total += a.distance(b);
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

/// Run Figure 21: mean label error per projection width, per input error
/// rate, averaged over datasets and queries.
pub fn figure21(
    rows_cap: usize,
    widths: &[usize],
    error_rates: &[f64],
    queries_per_cell: usize,
    seed: u64,
) -> String {
    let mut t = TextTable::new(
        std::iter::once("#attrs".to_string()).chain(
            error_rates
                .iter()
                .map(|e| format!("{:.0}% errors", e * 100.0)),
        ),
    );
    let datasets: Vec<_> = DATASETS[..5]
        .iter()
        .map(|spec| {
            let capped = DatasetSpec {
                rows: spec.rows.min(rows_cap),
                ..*spec
            };
            generate(&capped, seed)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x21);
    for &width in widths {
        let mut cells = vec![0.0f64; error_rates.len()];
        let mut counts = vec![0usize; error_rates.len()];
        for d in &datasets {
            if width >= d.spec.cols {
                continue;
            }
            let truth = access_relation(&d.bgw, &mut rng);
            for (i, &rate) in error_rates.iter().enumerate() {
                let perturbed = perturb(&truth, rate, &mut rng);
                for _ in 0..queries_per_cell {
                    let (_, q, _) = random_projection(&d.bgw.schema().clone(), width, &mut rng);
                    cells[i] += projection_label_error(&truth, &perturbed, &q, d.spec.name);
                    counts[i] += 1;
                }
            }
        }
        t.row(
            std::iter::once(width.to_string()).chain(
                cells
                    .iter()
                    .zip(&counts)
                    .map(|(c, &n)| format!("{:.5}", c / n.max(1) as f64)),
            ),
        );
    }
    format!(
        "Figure 21: access-control semiring — mean label error of projections\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ua_data::schema::Schema;
    use ua_data::tuple;

    #[test]
    fn zero_perturbation_zero_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let table = ua_engine::storage::Table::from_rows(
            Schema::qualified("t", ["a", "b"]),
            (0..50).map(|i| tuple![i as i64, (i % 5) as i64]).collect(),
        );
        let truth = access_relation(&table, &mut rng);
        let same = perturb(&truth, 0.0, &mut rng);
        let q = RaExpr::table("t").project(["b"]);
        assert_eq!(projection_label_error(&truth, &same, &q, "t"), 0.0);
    }

    #[test]
    fn error_grows_with_perturbation() {
        let mut rng = StdRng::seed_from_u64(2);
        let table = ua_engine::storage::Table::from_rows(
            Schema::qualified("t", ["a", "b"]),
            (0..300).map(|i| tuple![i as i64, (i % 7) as i64]).collect(),
        );
        let truth = access_relation(&table, &mut rng);
        let small = perturb(&truth, 0.02, &mut rng);
        let large = perturb(&truth, 0.30, &mut rng);
        let q = RaExpr::table("t").project(["a"]);
        let e_small = projection_label_error(&truth, &small, &q, "t");
        let e_large = projection_label_error(&truth, &large, &q, "t");
        assert!(
            e_large > e_small,
            "more input errors must mean more output error: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn projections_can_mask_errors() {
        // Aggressive projection merges tuples with ⊕ = max, which can hide
        // under-labeling — the mechanism behind the paper's low rates.
        let mut rng = StdRng::seed_from_u64(3);
        let table = ua_engine::storage::Table::from_rows(
            Schema::qualified("t", ["a", "b"]),
            (0..200).map(|i| tuple![i as i64, (i % 2) as i64]).collect(),
        );
        let truth = access_relation(&table, &mut rng);
        let perturbed = perturb(&truth, 0.10, &mut rng);
        let narrow = RaExpr::table("t").project(["b"]);
        let e = projection_label_error(&truth, &perturbed, &narrow, "t");
        assert!(e <= 0.5);
    }
}
