//! One module per paper table/figure (see DESIGN.md's experiment index).

pub mod access;
pub mod fig10;
pub mod fnr;
pub mod pdbench_suite;
pub mod probabilistic;
pub mod real_queries;
pub mod utility_exp;
