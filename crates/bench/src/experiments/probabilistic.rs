//! Figure 19: UA-DBs vs MayBMS-style confidence computation on BI-DBs with
//! 2/5/10/20 alternatives per block.
//!
//! UA-DB work is independent of the number of alternatives (only the
//! best-guess alternative and a label per block are touched); MayBMS pays
//! for every alternative — and for `conf()`, whose exact computation blows
//! up with lineage width (QP3's self-join). The approximate variant runs
//! Monte-Carlo sampling at the paper's error bound 0.3.

use crate::report::{fmt_duration, time_it, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use ua_baselines::UDb;
use ua_core::UaDb;
use ua_data::FxHashMap;
use ua_data::Tuple;
use ua_datagen::bidb::{generate, qp_queries, BidbConfig};

/// One (query × alternatives) measurement.
#[derive(Clone, Debug)]
pub struct ProbPoint {
    /// Query label.
    pub query: &'static str,
    /// Alternatives per block.
    pub alternatives: usize,
    /// UA-DB time.
    pub uadb_time: Duration,
    /// UA-DB misclassification rate vs exact probability-1 ground truth.
    pub uadb_error: f64,
    /// MayBMS time with exact conf().
    pub maybms_exact: Duration,
    /// MayBMS time with approximate conf() (ε = 0.3, δ = 0.05).
    pub maybms_approx: Duration,
    /// Approximate conf misclassification rate.
    pub approx_error: f64,
}

/// Run the experiment.
pub fn run(blocks: usize, alternative_counts: &[usize], seed: u64) -> Vec<ProbPoint> {
    let mut out = Vec::new();
    for &alts in alternative_counts {
        let xdb = generate(&BidbConfig {
            blocks,
            alternatives: alts,
            seed,
        });
        let udb = UDb::from_xdb(&xdb);
        let ua = UaDb::from_xdb(&xdb);

        for (name, q) in qp_queries() {
            // UA-DB: query the pair-annotated database; a tuple is claimed
            // certain iff fully labeled.
            let (uadb_time, ua_result) = time_it(|| ua.query(&q).expect("ua"));

            // MayBMS exact.
            let (maybms_exact, exact_conf) = time_it(|| {
                let rel = udb.query(&q).expect("maybms");
                udb.confidences(&rel)
            });
            // MayBMS approximate (paper's ε = 0.3).
            let mut rng = StdRng::seed_from_u64(seed ^ 0xa11);
            let (maybms_approx, approx_conf) = time_it(|| {
                let rel = udb.query(&q).expect("maybms");
                udb.confidences_approx(&rel, 0.3, 0.05, &mut rng)
            });

            let exact: FxHashMap<Tuple, f64> = exact_conf.into_iter().collect();
            let certain_truth = |t: &Tuple| exact.get(t).copied().unwrap_or(0.0) >= 1.0 - 1e-9;

            // UA error: labeled-certain vs truly-certain, over the result.
            let mut errors = 0usize;
            let mut total = 0usize;
            for (t, ann) in ua_result.iter() {
                total += 1;
                let claimed = ann.is_fully_certain();
                if claimed != certain_truth(t) {
                    errors += 1;
                }
            }
            let uadb_error = if total == 0 {
                0.0
            } else {
                errors as f64 / total as f64
            };

            // Approximation error: misclassification of certainty at p ≥ 1.
            let mut approx_errors = 0usize;
            for (t, p) in &approx_conf {
                if (*p >= 1.0 - 1e-9) != certain_truth(t) {
                    approx_errors += 1;
                }
            }
            let approx_error = if approx_conf.is_empty() {
                0.0
            } else {
                approx_errors as f64 / approx_conf.len() as f64
            };

            out.push(ProbPoint {
                query: name,
                alternatives: alts,
                uadb_time,
                uadb_error,
                maybms_exact,
                maybms_approx,
                approx_error,
            });
        }
    }
    out
}

/// Render the Figure 19 table.
pub fn format(points: &[ProbPoint]) -> String {
    let mut t = TextTable::new([
        "query",
        "alts",
        "UADB time",
        "UADB err",
        "MayBMS exact",
        "MayBMS approx",
        "approx err",
    ]);
    for p in points {
        t.row([
            p.query.to_string(),
            format!("{:02}", p.alternatives),
            fmt_duration(p.uadb_time),
            format!("{:.1}%", p.uadb_error * 100.0),
            fmt_duration(p.maybms_exact),
            fmt_duration(p.maybms_approx),
            format!("{:.1}%", p.approx_error * 100.0),
        ]);
    }
    format!(
        "Figure 19: probabilistic databases — UADB vs MayBMS conf()\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uadb_time_independent_of_alternatives() {
        let points = run(300, &[2, 10], 3);
        let q1_2 = points
            .iter()
            .find(|p| p.query == "QP1" && p.alternatives == 2)
            .expect("point");
        let q1_10 = points
            .iter()
            .find(|p| p.query == "QP1" && p.alternatives == 10)
            .expect("point");
        // MayBMS work grows ≈linearly in alternatives; UA-DB stays flat.
        // Compare growth ratios rather than absolute times (CI noise).
        let ua_growth = q1_10.uadb_time.as_secs_f64() / q1_2.uadb_time.as_secs_f64().max(1e-9);
        let mb_growth =
            q1_10.maybms_exact.as_secs_f64() / q1_2.maybms_exact.as_secs_f64().max(1e-9);
        assert!(
            mb_growth > ua_growth * 0.8,
            "MayBMS should scale worse: ua {ua_growth:.2} vs mb {mb_growth:.2}"
        );
    }

    #[test]
    fn errors_are_small_rates() {
        for p in run(200, &[2, 5], 7) {
            assert!((0.0..=0.2).contains(&p.uadb_error), "{p:?}");
            assert!((0.0..=0.2).contains(&p.approx_error), "{p:?}");
        }
    }
}
