//! Figures 11–14: the PDBench performance suite.
//!
//! One injection drives all five systems:
//!
//! * **Det** — deterministic BGQP on the engine;
//! * **UA-DB** — rewritten queries over the encoded tables;
//! * **Libkin** — null-aware under-approximation (same executor);
//! * **MayBMS** — possible answers over U-relations;
//! * **MCDB** — tuple bundles with 10 samples.

use crate::report::{fmt_duration, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;
use ua_baselines::{certain_subset, BundleDb, UDb};
use ua_datagen::pdbench::{inject_db, PdbenchConfig, UncertainDb};
use ua_datagen::queries::{pdbench_queries, pdbench_uncertain_columns};
use ua_datagen::tpch::{generate, TpchConfig};
use ua_engine::plan::Plan;
use ua_engine::storage::{Catalog, Table};
use ua_engine::ua::UaSession;

/// Per-query, per-system measurements.
#[derive(Clone, Debug)]
pub struct QueryMeasurement {
    /// Query name (Q1/Q2/Q3).
    pub query: &'static str,
    /// Deterministic runtime.
    pub det: Duration,
    /// UA-DB runtime.
    pub uadb: Duration,
    /// Libkin runtime.
    pub libkin: Duration,
    /// MayBMS runtime (possible answers, no probabilities — footnote 5).
    pub maybms: Duration,
    /// MCDB runtime (10 samples).
    pub mcdb: Duration,
    /// UA-DB result rows.
    pub uadb_rows: usize,
    /// MayBMS result rows (possible answers).
    pub maybms_rows: usize,
    /// Certain rows in the UA-DB result.
    pub uadb_certain: usize,
}

/// One full suite run at a given scale/uncertainty.
pub struct SuiteRun {
    /// The scale factor used.
    pub scale: f64,
    /// The injected uncertainty.
    pub uncertainty: f64,
    /// Per-query measurements.
    pub queries: Vec<QueryMeasurement>,
}

/// Build all system views for one configuration.
pub fn prepare(scale: f64, uncertainty: f64, seed: u64) -> (UncertainDb, Catalog, UaSession) {
    let data = generate(&TpchConfig::new(scale, seed));
    let tables: Vec<(&str, &Table, &[&str])> = data
        .tables()
        .into_iter()
        .map(|(name, table)| (name, table, pdbench_uncertain_columns(name)))
        .collect();
    let uncertain = inject_db(
        &tables,
        &PdbenchConfig {
            uncertainty,
            seed,
            ..Default::default()
        },
    );
    // Deterministic + Libkin catalogs.
    let det_catalog = Catalog::new();
    for (name, table) in &uncertain.bgw {
        det_catalog.register(name.clone(), table.clone());
    }
    for (name, table) in &uncertain.nulls {
        det_catalog.register(format!("{name}__nulls"), table.clone());
    }
    // UA session over the encoded tables.
    let ua = UaSession::new();
    for (name, table) in &uncertain.encoded {
        ua.register_table(name.clone(), table.clone());
    }
    (uncertain, det_catalog, ua)
}

/// Run the suite once.
pub fn run(scale: f64, uncertainty: f64, seed: u64) -> SuiteRun {
    let (uncertain, det_catalog, ua) = prepare(scale, uncertainty, seed);
    let udb = UDb::from_xdb(&uncertain.xdb);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let bundles = BundleDb::from_xdb(&uncertain.xdb, 10, &mut rng);

    let mut queries = Vec::new();
    for (name, q) in pdbench_queries() {
        let plan = Plan::from_ra(&q);
        let (det, det_result) =
            crate::report::time_it(|| ua_engine::exec::execute(&plan, &det_catalog).expect("det"));
        let (uadb, ua_result) = crate::report::time_it(|| ua.query_ua_ra(&q).expect("ua"));
        // Libkin runs the same plan against the nulled tables.
        let null_q = rename_tables(&q, "__nulls");
        let null_plan = Plan::from_ra(&null_q);
        let (libkin, _libkin_result) =
            crate::report::time_it(|| certain_subset(&null_plan, &det_catalog).expect("libkin"));
        let (maybms, maybms_result) = crate::report::time_it(|| udb.query(&q).expect("maybms"));
        let (mcdb, _mcdb_result) = crate::report::time_it(|| bundles.query(&q).expect("mcdb"));

        let (certain, total) = ua_result.certainty_counts();
        debug_assert_eq!(total, ua_result.table.len());
        let _ = det_result;
        queries.push(QueryMeasurement {
            query: name,
            det,
            uadb,
            libkin,
            maybms,
            mcdb,
            uadb_rows: total,
            maybms_rows: maybms_result.possible_tuples().len(),
            uadb_certain: certain,
        });
    }
    SuiteRun {
        scale,
        uncertainty,
        queries,
    }
}

/// Rewrite base-table names `t` to `t<suffix>` (to aim a query at the
/// nulled copies).
fn rename_tables(q: &ua_data::RaExpr, suffix: &str) -> ua_data::RaExpr {
    use ua_data::RaExpr as E;
    match q {
        E::Table(name) => {
            // Re-alias so qualified column references keep resolving.
            E::Table(format!("{name}{suffix}")).alias(name.clone())
        }
        E::Alias { input, name } => E::Alias {
            input: Box::new(rename_tables(input, suffix)),
            name: name.clone(),
        },
        E::Select { input, predicate } => E::Select {
            input: Box::new(rename_tables(input, suffix)),
            predicate: predicate.clone(),
        },
        E::Project { input, columns } => E::Project {
            input: Box::new(rename_tables(input, suffix)),
            columns: columns.clone(),
        },
        E::Join {
            left,
            right,
            predicate,
        } => E::Join {
            left: Box::new(rename_tables(left, suffix)),
            right: Box::new(rename_tables(right, suffix)),
            predicate: predicate.clone(),
        },
        E::Union { left, right } => E::Union {
            left: Box::new(rename_tables(left, suffix)),
            right: Box::new(rename_tables(right, suffix)),
        },
    }
}

/// Figure 11: runtime vs amount of uncertainty.
pub fn figure11(scale: f64, uncertainties: &[f64], seed: u64) -> String {
    let mut out = String::from(
        "Figure 11: PDBench query runtime vs uncertainty (Det / UA-DB / Libkin / MayBMS / MCDB)\n",
    );
    let mut tables: Vec<TextTable> = pdbench_queries()
        .iter()
        .map(|(name, _)| {
            TextTable::new([
                format!("{name} uncert"),
                "Det".into(),
                "UA-DB".into(),
                "Libkin".into(),
                "MayBMS".into(),
                "MCDB".into(),
            ])
        })
        .collect();
    for &u in uncertainties {
        let run = run(scale, u, seed);
        for (i, m) in run.queries.iter().enumerate() {
            tables[i].row([
                format!("{:.0}%", u * 100.0),
                fmt_duration(m.det),
                fmt_duration(m.uadb),
                fmt_duration(m.libkin),
                fmt_duration(m.maybms),
                fmt_duration(m.mcdb),
            ]);
        }
    }
    for t in tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Figure 12: result sizes (#rows), UA-DB vs MayBMS.
pub fn figure12(scale: f64, uncertainties: &[f64], seed: u64) -> String {
    let mut t = TextTable::new([
        "uncert", "UA-Q1", "UA-Q2", "UA-Q3", "MB-Q1", "MB-Q2", "MB-Q3",
    ]);
    for &u in uncertainties {
        let run = run(scale, u, seed);
        t.row([
            format!("{:.0}%", u * 100.0),
            run.queries[0].uadb_rows.to_string(),
            run.queries[1].uadb_rows.to_string(),
            run.queries[2].uadb_rows.to_string(),
            run.queries[0].maybms_rows.to_string(),
            run.queries[1].maybms_rows.to_string(),
            run.queries[2].maybms_rows.to_string(),
        ]);
    }
    format!("Figure 12: query result sizes (#rows)\n{}", t.render())
}

/// Figure 13: percentage of certain answers per query.
pub fn figure13(scale: f64, uncertainties: &[f64], seed: u64) -> String {
    let mut t = TextTable::new(["uncert", "Q1", "Q2", "Q3"]);
    for &u in uncertainties {
        let run = run(scale, u, seed);
        let cell = |m: &QueryMeasurement| {
            if m.uadb_rows == 0 {
                "0 (—)".to_string()
            } else {
                format!(
                    "{} ({:.0}%)",
                    m.uadb_certain,
                    100.0 * m.uadb_certain as f64 / m.uadb_rows as f64
                )
            }
        };
        t.row([
            format!("{:.0}%", u * 100.0),
            cell(&run.queries[0]),
            cell(&run.queries[1]),
            cell(&run.queries[2]),
        ]);
    }
    format!("Figure 13: certain answers in the result\n{}", t.render())
}

/// Figure 14: runtime vs database size at fixed 2% uncertainty.
pub fn figure14(scales: &[f64], seed: u64) -> String {
    let mut out =
        String::from("Figure 14: PDBench query runtime vs database size (2% uncertainty)\n");
    let mut tables: Vec<TextTable> = pdbench_queries()
        .iter()
        .map(|(name, _)| {
            TextTable::new([
                format!("{name} scale"),
                "rows".into(),
                "Det".into(),
                "UA-DB".into(),
                "Libkin".into(),
                "MayBMS".into(),
                "MCDB".into(),
            ])
        })
        .collect();
    for &scale in scales {
        let data_rows = generate(&TpchConfig::new(scale, seed)).total_rows();
        let run = run(scale, 0.02, seed);
        for (i, m) in run.queries.iter().enumerate() {
            tables[i].row([
                format!("{scale}"),
                data_rows.to_string(),
                fmt_duration(m.det),
                fmt_duration(m.uadb),
                fmt_duration(m.libkin),
                fmt_duration(m.maybms),
                fmt_duration(m.mcdb),
            ]);
        }
    }
    for t in tables {
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_end_to_end() {
        let run = run(0.0005, 0.05, 3);
        assert_eq!(run.queries.len(), 3);
        for m in &run.queries {
            assert!(
                m.uadb_certain <= m.uadb_rows,
                "{}: certain {} > rows {}",
                m.query,
                m.uadb_certain,
                m.uadb_rows
            );
            assert!(
                m.maybms_rows >= m.uadb_rows.min(1),
                "{}: possible answers can't be fewer than best-guess rows",
                m.query
            );
        }
    }

    #[test]
    fn certain_fraction_decreases_with_uncertainty() {
        let low = run(0.0005, 0.02, 9);
        let high = run(0.0005, 0.30, 9);
        let frac = |r: &SuiteRun, i: usize| {
            let m = &r.queries[i];
            if m.uadb_rows == 0 {
                1.0
            } else {
                m.uadb_certain as f64 / m.uadb_rows as f64
            }
        };
        // Q2 (pure selection) shows the paper's monotone drop most clearly.
        assert!(frac(&high, 1) < frac(&low, 1) + 1e-9);
    }

    #[test]
    fn maybms_result_grows_with_uncertainty() {
        let low = run(0.0005, 0.02, 5);
        let high = run(0.0005, 0.30, 5);
        assert!(
            high.queries[0].maybms_rows > low.queries[0].maybms_rows,
            "possible-answer blowup (Figure 12) not visible: {} vs {}",
            high.queries[0].maybms_rows,
            low.queries[0].maybms_rows
        );
    }
}
