//! Figure 18: utility of best-guess answers vs certain answers.
//!
//! For each dataset and uncertainty level, a selection+projection query
//! runs over (a) the imputed best-guess world — "UADB(BGQP)", (b) a random
//! repair — "UADB(RGQP)", and (c) the null-carrying incomplete database via
//! the Libkin under-approximation. Precision/recall are measured against
//! the ground-truth world. The paper's claim: best-guess answers trade a
//! little precision for much better recall than certain answers.

use crate::report::TextTable;
use ua_baselines::certain_subset;
use ua_datagen::utility::{build, ground_truth, precision_recall, UTILITY_DATASETS};
use ua_engine::exec::execute;
use ua_engine::plan::Plan;
use ua_engine::sql::{parse, plan_query, RejectAnnotations};
use ua_engine::storage::{Catalog, Table};

/// One measurement point.
#[derive(Clone, Copy, Debug)]
pub struct UtilityPoint {
    /// Fraction of attribute values nulled.
    pub rate: f64,
    /// BGQP precision / recall.
    pub bgqp: (f64, f64),
    /// RGQP precision / recall.
    pub rgqp: (f64, f64),
    /// Libkin precision / recall.
    pub libkin: (f64, f64),
}

fn query_for(dataset: &str) -> (&'static str, &'static str) {
    match dataset {
        "income_survey" => (
            "survey",
            "SELECT id, age_group, source FROM survey WHERE income >= 30000",
        ),
        "buffalo_news" => (
            "shootings",
            "SELECT id, district, type FROM shootings WHERE victims >= 2",
        ),
        _ => (
            "licenses",
            "SELECT id, kind, ward FROM licenses WHERE status = 'AAI'",
        ),
    }
}

fn run_on(table: &Table, name: &str, sql: &str) -> Table {
    let catalog = Catalog::new();
    catalog.register(name, table.clone());
    let ast = parse(sql).expect("utility query parses");
    let plan = plan_query(&ast, &catalog, &RejectAnnotations).expect("plan");
    execute(&plan, &catalog).expect("run")
}

fn run_libkin(table: &Table, name: &str, sql: &str) -> Table {
    let catalog = Catalog::new();
    catalog.register(name, table.clone());
    let ast = parse(sql).expect("utility query parses");
    let plan = plan_query(&ast, &catalog, &RejectAnnotations).expect("plan");
    certain_subset(&Plan::from_ra(&plan.to_ra().expect("SPJ")), &catalog).expect("libkin")
}

/// Run the experiment for one dataset across uncertainty levels.
pub fn run(dataset: &str, rows: usize, rates: &[f64], seed: u64) -> Vec<UtilityPoint> {
    let ground = ground_truth(dataset, rows, seed);
    let (name, sql) = query_for(dataset);
    let truth = run_on(&ground, name, sql);
    rates
        .iter()
        .map(|&rate| {
            let inst = build(&ground, rate, seed ^ (rate * 1000.0) as u64);
            let bgqp = precision_recall(&run_on(&inst.imputed, name, sql), &truth);
            let rgqp = precision_recall(&run_on(&inst.random_repair, name, sql), &truth);
            let libkin = precision_recall(&run_libkin(&inst.incomplete, name, sql), &truth);
            UtilityPoint {
                rate,
                bgqp,
                rgqp,
                libkin,
            }
        })
        .collect()
}

/// Render Figure 18 for all three datasets.
pub fn figure18(rows: usize, rates: &[f64], seed: u64) -> String {
    let mut out = String::from("Figure 18: utility (precision/recall vs ground truth)\n");
    for dataset in UTILITY_DATASETS {
        let points = run(dataset, rows, rates, seed);
        let mut t = TextTable::new([
            "uncert",
            "BGQP prec",
            "BGQP rec",
            "RGQP prec",
            "RGQP rec",
            "Libkin prec",
            "Libkin rec",
        ]);
        for p in points {
            t.row([
                format!("{:.0}%", p.rate * 100.0),
                format!("{:.3}", p.bgqp.0),
                format!("{:.3}", p.bgqp.1),
                format!("{:.3}", p.rgqp.0),
                format!("{:.3}", p.rgqp.1),
                format!("{:.3}", p.libkin.0),
                format!("{:.3}", p.libkin.1),
            ]);
        }
        out.push_str(&format!("\n({dataset})\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libkin_has_perfect_precision() {
        for p in run("income_survey", 600, &[0.1, 0.3], 11) {
            assert!(
                p.libkin.0 > 0.999,
                "under-approximation must be precise, got {}",
                p.libkin.0
            );
        }
    }

    #[test]
    fn bgqp_recall_beats_libkin() {
        // The paper's headline: certain answers lose recall fast; the
        // best-guess world keeps it high.
        for p in run("business_license", 800, &[0.2, 0.4], 13) {
            assert!(
                p.bgqp.1 >= p.libkin.1,
                "BGQP recall {} below Libkin recall {} at rate {}",
                p.bgqp.1,
                p.libkin.1,
                p.rate
            );
        }
    }

    #[test]
    fn bgqp_beats_random_repair() {
        let pts = run("buffalo_news", 800, &[0.3], 17);
        let p = pts[0];
        assert!(
            p.bgqp.0 + p.bgqp.1 >= p.rgqp.0 + p.rgqp.1 - 0.05,
            "imputation should not lose to random repair: {:?} vs {:?}",
            p.bgqp,
            p.rgqp
        );
    }

    #[test]
    fn zero_uncertainty_is_perfect() {
        let pts = run("income_survey", 400, &[0.0], 19);
        assert_eq!(pts[0].bgqp, (1.0, 1.0));
        assert_eq!(pts[0].libkin, (1.0, 1.0));
    }
}
