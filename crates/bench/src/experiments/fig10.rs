//! Figure 10: per-tuple cost of exact certain answers over C-tables vs the
//! UA-DB approximation, by query complexity.

use crate::report::{time_it, TextTable};
use std::time::Duration;
use ua_conditions::Solver;
use ua_core::UaDb;
use ua_datagen::ctables::{query_batch, random_cdb, CtableConfig};
use ua_models::eval_symbolic;

/// One complexity level's averages.
#[derive(Clone, Copy, Debug)]
pub struct Fig10Point {
    /// Number of operators in the query.
    pub complexity: usize,
    /// UA-DB per-result-tuple time.
    pub uadb_per_tuple: Duration,
    /// Exact C-table per-result-tuple time.
    pub ctable_per_tuple: Duration,
}

/// Run the experiment.
pub fn run(
    rows: usize,
    max_complexity: usize,
    per_complexity: usize,
    seed: u64,
) -> Vec<Fig10Point> {
    let cdb = random_cdb(&CtableConfig {
        rows,
        attrs: 8,
        seed,
    });
    let ua = UaDb::from_cdb(&cdb);
    let solver = Solver::with_limit(500_000);

    let mut out = Vec::new();
    for complexity in 1..=max_complexity {
        let mut ua_total = Duration::ZERO;
        let mut ua_tuples = 0usize;
        let mut ct_total = Duration::ZERO;
        let mut ct_tuples = 0usize;
        for (_, q) in query_batch(complexity, per_complexity, 8, seed + complexity as u64)
            .into_iter()
            .filter(|(c, _)| *c == complexity)
        {
            // UA-DB side: K²-relational evaluation over the BGW + labels.
            // Averaged over repeats: single-shot µs timings are noise.
            let (d, result) = crate::report::time_avg(5, || ua.query(&q).expect("ua query"));
            ua_total += d;
            ua_tuples += result.support_size().max(1);

            // Exact side: symbolic evaluation + per-tuple tautology checks.
            // Solver work is capped per tuple (assignment limit + variable
            // cap): undecidable-within-budget tuples still count as checked,
            // slightly *under*-stating the exact method's cost — the
            // conservative direction for the comparison.
            let (d, checked) = time_it(|| {
                let table = eval_symbolic(&q, &cdb).expect("symbolic eval");
                let mut candidates: Vec<ua_data::Tuple> = table
                    .tuples()
                    .iter()
                    .filter(|r| r.is_constant())
                    .map(|r| r.values.clone())
                    .collect();
                candidates.sort();
                candidates.dedup();
                candidates.truncate(25); // cap per-query solver work
                let mut decided = 0usize;
                for t in &candidates {
                    let cond = table.membership_condition(t);
                    decided += 1;
                    if cond.vars().len() > 6 {
                        continue; // out of budget: counted, not solved
                    }
                    let _ = solver.try_is_valid(&cond);
                }
                decided.max(1)
            });
            ct_total += d;
            ct_tuples += checked;
        }
        out.push(Fig10Point {
            complexity,
            uadb_per_tuple: ua_total / ua_tuples.max(1) as u32,
            ctable_per_tuple: ct_total / ct_tuples.max(1) as u32,
        });
    }
    out
}

/// Format the paper-style series.
pub fn format(points: &[Fig10Point]) -> String {
    let mut t = TextTable::new(["complexity", "UA-DB /tuple", "C-tables /tuple", "slowdown"]);
    for p in points {
        let ratio = p.ctable_per_tuple.as_secs_f64() / p.uadb_per_tuple.as_secs_f64().max(1e-12);
        t.row([
            p.complexity.to_string(),
            crate::report::fmt_duration(p.uadb_per_tuple),
            crate::report::fmt_duration(p.ctable_per_tuple),
            format!("{ratio:.0}×"),
        ]);
    }
    format!(
        "Figure 10: per-tuple certain-answer cost, C-tables (exact) vs UA-DB\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_is_slower_and_grows_with_complexity() {
        let points = run(12, 3, 2, 21);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(
                p.ctable_per_tuple >= p.uadb_per_tuple,
                "complexity {}: exact {:?} should dominate UA {:?}",
                p.complexity,
                p.ctable_per_tuple,
                p.uadb_per_tuple
            );
        }
    }
}
