//! Figures 15, 16 and 20: dataset statistics and false-negative rates of
//! random projections over the open-data corpus.
//!
//! A *false negative* is a certain answer the UA-DB labels uncertain — the
//! only misclassification direction a c-sound labeling admits. Projection
//! onto attribute subsets is the worst case (paper Theorem 6's discussion):
//! distinct alternatives that agree on the projected attributes become
//! certain without the labeling noticing.

use crate::report::{quartiles, TextTable};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ua_datagen::opendata::{generate, DatasetSpec, OpenDataset, DATASETS};
use ua_datagen::queries::random_projection;
use ua_semiring::Semiring;

/// FNR distribution for one projection width.
#[derive(Clone, Debug)]
pub struct FnrRow {
    /// Number of projection attributes.
    pub width: usize,
    /// (min, q1, median, q3, max) of the FNR across sampled queries.
    pub quartiles: (f64, f64, f64, f64, f64),
}

/// Compute the set-semantics FNR of one projection.
pub fn projection_fnr(dataset: &OpenDataset, positions: &[usize]) -> f64 {
    let rel = dataset
        .xdb
        .get(dataset.spec.name)
        .expect("dataset relation");
    let certain = rel.projection_certain_set(positions);
    if certain.is_empty() {
        return 0.0;
    }
    let labeled = rel.projection_labeled_bag(positions);
    let missed = certain
        .iter()
        .filter(|t| labeled.annotation(t).is_zero())
        .count();
    missed as f64 / certain.len() as f64
}

/// Compute the bag-semantics misclassification rate (Figure 20): the
/// fraction of certain tuples whose labeled multiplicity underestimates the
/// certain multiplicity.
pub fn projection_bag_error(dataset: &OpenDataset, positions: &[usize]) -> f64 {
    let rel = dataset
        .xdb
        .get(dataset.spec.name)
        .expect("dataset relation");
    let certain = rel.projection_certain_bag(positions);
    if certain.is_empty() {
        return 0.0;
    }
    let labeled = rel.projection_labeled_bag(positions);
    let wrong = certain
        .iter()
        .filter(|(t, &m)| labeled.annotation(t) < m)
        .count();
    wrong as f64 / certain.support_size() as f64
}

/// Figure 15 for one dataset: FNR quartiles per projection width.
pub fn figure15_dataset(
    spec: &DatasetSpec,
    rows_cap: usize,
    queries_per_width: usize,
    seed: u64,
) -> Vec<FnrRow> {
    let capped = DatasetSpec {
        rows: spec.rows.min(rows_cap),
        ..*spec
    };
    let dataset = generate(&capped, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf15);
    let schema = dataset.bgw.schema().clone();
    let mut out = Vec::new();
    let step = (spec.cols / 10).max(1);
    for width in (1..=spec.cols.saturating_sub(1).max(1)).step_by(step) {
        let mut samples = Vec::with_capacity(queries_per_width);
        for _ in 0..queries_per_width {
            let (positions, _, _) = random_projection(&schema, width, &mut rng);
            samples.push(projection_fnr(&dataset, &positions));
        }
        out.push(FnrRow {
            width,
            quartiles: quartiles(&mut samples),
        });
    }
    out
}

/// Render Figure 15 across all nine datasets.
pub fn figure15(rows_cap: usize, queries_per_width: usize, seed: u64) -> String {
    let mut out =
        String::from("Figure 15: FNR (misclassified certain answers) of random projections\n");
    for spec in &DATASETS {
        let rows = figure15_dataset(spec, rows_cap, queries_per_width, seed);
        let mut t = TextTable::new(["#attrs", "min", "q1", "median", "q3", "max"]);
        for r in rows {
            let (min, q1, med, q3, max) = r.quartiles;
            t.row([
                r.width.to_string(),
                format!("{min:.4}"),
                format!("{q1:.4}"),
                format!("{med:.4}"),
                format!("{q3:.4}"),
                format!("{max:.4}"),
            ]);
        }
        out.push_str(&format!("\n({})\n{}", spec.name, t.render()));
    }
    out
}

/// Figure 16: the dataset statistics table.
pub fn figure16(rows_cap: usize, seed: u64) -> String {
    let mut t = TextTable::new([
        "dataset",
        "paper rows",
        "gen rows",
        "cols",
        "U_attr tgt",
        "U_attr got",
        "U_row tgt",
        "U_row got",
    ]);
    for spec in &DATASETS {
        let capped = DatasetSpec {
            rows: spec.rows.min(rows_cap),
            ..*spec
        };
        let d = generate(&capped, seed);
        t.row([
            spec.name.to_string(),
            spec.paper_rows.to_string(),
            capped.rows.to_string(),
            spec.cols.to_string(),
            format!("{:.2}%", spec.attr_uncertainty * 100.0),
            format!("{:.2}%", d.measured_attr_uncertainty * 100.0),
            format!("{:.1}%", spec.row_uncertainty * 100.0),
            format!("{:.1}%", d.measured_row_uncertainty * 100.0),
        ]);
    }
    format!("Figure 16: dataset statistics\n{}", t.render())
}

/// Figure 20: bag-semantics mean error rate for three datasets.
pub fn figure20(rows_cap: usize, queries_per_width: usize, seed: u64) -> String {
    let names = ["shootings_buffalo", "food_inspections", "building_permits"];
    let mut out = String::from("Figure 20: bag semantics — mean mislabeling rate\n");
    for name in names {
        let spec = ua_datagen::opendata::spec(name).expect("known dataset");
        let capped = DatasetSpec {
            rows: spec.rows.min(rows_cap),
            ..*spec
        };
        let dataset = generate(&capped, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x20);
        let schema = dataset.bgw.schema().clone();
        let mut t = TextTable::new(["#attrs", "mean error"]);
        let step = (spec.cols / 8).max(1);
        for width in (1..spec.cols).step_by(step) {
            let mut total = 0.0;
            for _ in 0..queries_per_width {
                let (positions, _, _) = random_projection(&schema, width, &mut rng);
                total += projection_bag_error(&dataset, &positions);
            }
            t.row([
                width.to_string(),
                format!("{:.4}", total / queries_per_width as f64),
            ]);
        }
        out.push_str(&format!("\n({name})\n{}", t.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> OpenDataset {
        let spec = DatasetSpec {
            rows: 800,
            ..DATASETS[2] // business_licenses: highest uncertainty
        };
        generate(&spec, 77)
    }

    #[test]
    fn fnr_is_a_rate() {
        let d = small_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        for width in [1, 3, 8] {
            let (positions, _, _) = random_projection(&d.bgw.schema().clone(), width, &mut rng);
            let fnr = projection_fnr(&d, &positions);
            assert!((0.0..=1.0).contains(&fnr));
        }
    }

    #[test]
    fn fnr_decreases_with_width_on_average() {
        // Projecting *all* columns keeps alternatives distinct, so no
        // misclassification can occur beyond genuinely-different rows;
        // narrow projections collapse alternatives and create FNs.
        let d = small_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let avg = |w: usize, rng: &mut StdRng| {
            let mut total = 0.0;
            for _ in 0..8 {
                let (p, _, _) = random_projection(&d.bgw.schema().clone(), w, rng);
                total += projection_fnr(&d, &p);
            }
            total / 8.0
        };
        let narrow = avg(2, &mut rng);
        let wide = avg(d.spec.cols - 1, &mut rng);
        assert!(
            wide <= narrow + 0.02,
            "wide {wide} should not exceed narrow {narrow}"
        );
    }

    #[test]
    fn full_projection_has_zero_fnr() {
        // Projecting all columns: a certain tuple needs all alternatives
        // equal, which after dedup means a single alternative — exactly
        // what the labeling reports.
        let d = small_dataset();
        let all: Vec<usize> = (0..d.spec.cols).collect();
        assert_eq!(projection_fnr(&d, &all), 0.0);
    }

    #[test]
    fn bag_error_behaves() {
        let d = small_dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let (positions, _, _) = random_projection(&d.bgw.schema().clone(), 2, &mut rng);
        let e = projection_bag_error(&d, &positions);
        assert!((0.0..=1.0).contains(&e));
    }
}
