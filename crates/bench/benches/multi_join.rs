//! Statistics-driven join reordering: a star-schema 3-way comma-join
//! written in a deliberately bad order must be replanned to join through
//! the small/selective relation first.
//!
//! `FROM big1, big2, small WHERE big1.k = big2.k AND big2.k = small.k` at
//! 100k rows per big side lowers, as written, to the left-deep plan
//! `(big1 ⋈ big2) ⋈ small` — whose first join produces a multi-million-row
//! intermediate that the second join then throws almost entirely away. The
//! cost-based reorder (`OptimizerPasses::reorder_joins`, fed by
//! `TableStats` ndv/histograms) re-associates to `big1 ⋈ (big2 ⋈ small)`,
//! whose selective inner join keeps intermediates tiny.
//!
//! Measures both plans on both engines (the as-written baseline via
//! `reorder_joins: false`, i.e. the pre-reordering optimizer), asserts the
//! ≥5x acceptance bar on each engine, prints `MULTI_JOIN SPEEDUP` lines
//! for the CI smoke grep, and writes `BENCH_multi_join.json` next to
//! `BENCH_join_planning.json` at the repo root (both uploaded as CI artifacts).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_bench::report::{instrumented_stats, BenchReport};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// Rows per big table.
const N: usize = 100_000;
/// Key domain of the big tables (as-written intermediate ≈ N²/D = 4M rows).
const D: i64 = 2_500;
/// Rows in the small relation (distinct keys 0..S).
const S: i64 = 50;

const SQL: &str = "SELECT big1.v, big2.w, small.t FROM big1, big2, small \
                   WHERE big1.k = big2.k AND big2.k = small.k";

fn session(reorder: bool) -> UaSession {
    let mut rng = StdRng::seed_from_u64(0x3107);
    let s = UaSession::new();
    s.set_optimizer_enabled(true);
    // The as-written baseline disables only the reordering pass — filter
    // pushdown and hash-join planning stay on, so the comparison isolates
    // the join order (a cross-product baseline would be the join_planning
    // bench's job, and would not finish at this scale).
    s.set_reorder_joins_enabled(reorder);
    let big = |rng: &mut StdRng, name: &str, val: &str| {
        Table::from_rows(
            Schema::qualified(name, ["k", val]),
            (0..N as i64)
                .map(|i| Tuple::new(vec![Value::Int(rng.gen_range(0..D)), Value::Int(i)]))
                .collect(),
        )
    };
    s.register_table("big1", big(&mut rng, "big1", "v"));
    s.register_table("big2", big(&mut rng, "big2", "w"));
    s.register_table(
        "small",
        Table::from_rows(
            Schema::qualified("small", ["k", "t"]),
            (0..S)
                .map(|k| Tuple::new(vec![Value::Int(k), Value::Int(k + 1000)]))
                .collect(),
        ),
    );
    s
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_multi_join(c: &mut Criterion) {
    ua_vecexec::install();

    let reordered = session(true);
    let as_written = session(false);

    // Correctness gates before timing: the reordered plan must join
    // through `small` first (shown structurally: the selective join is the
    // *inner* join), and both plans must produce identical results on both
    // engines.
    let explain = reordered.explain_det(SQL).expect("explain");
    let physical = explain.lines().last().expect("physical plan").trim();
    assert!(
        physical.contains("HashJoin[big2.k=small.k") && physical.contains("Scan(big1), HashJoin"),
        "expected the reorder to join big2 ⋈ small first:\n{explain}"
    );
    let baseline_explain = as_written.explain_det(SQL).expect("explain baseline");
    assert!(
        baseline_explain
            .lines()
            .last()
            .expect("plan")
            .contains("HashJoin[big1.k=big2.k"),
        "baseline must keep the as-written big1 ⋈ big2 first:\n{baseline_explain}"
    );
    let mut results: Vec<usize> = Vec::new();
    for s in [&reordered, &as_written] {
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            s.set_exec_mode(mode);
            let mut t = s.query_det(SQL).expect("run").sorted_rows();
            results.push(t.len());
            t.clear();
        }
    }
    assert!(
        results.iter().all(|&n| n == results[0]) && results[0] > 0,
        "plans disagree on the result: {results:?}"
    );
    println!(
        "join output: {} rows from {N} x {N} x {S} (star schema)",
        results[0]
    );

    let mut group = c.benchmark_group("multi_join");
    group.sample_size(10);
    for (label, s) in [("reordered", &reordered), ("as_written", &as_written)] {
        for (mode_label, mode) in [("row", ExecMode::Row), ("vectorized", ExecMode::Vectorized)] {
            // The as-written row plan materializes a ~4M-row intermediate;
            // criterion's 10 samples are enough and keep CI time sane.
            group.bench_function(BenchmarkId::new(format!("{label}_{mode_label}"), N), |b| {
                s.set_exec_mode(mode);
                b.iter(|| s.query_det(SQL).expect("run").len())
            });
        }
    }
    group.finish();

    let time = |s: &UaSession, mode: ExecMode, samples: usize| {
        s.set_exec_mode(mode);
        median_secs(|| s.query_det(SQL).expect("run").len(), samples)
    };
    let t_reordered_row = time(&reordered, ExecMode::Row, 5);
    let t_reordered_vec = time(&reordered, ExecMode::Vectorized, 5);
    let t_as_written_row = time(&as_written, ExecMode::Row, 3);
    let t_as_written_vec = time(&as_written, ExecMode::Vectorized, 3);

    let speedup_row = t_as_written_row / t_reordered_row;
    let speedup_vec = t_as_written_vec / t_reordered_vec;
    println!(
        "MULTI_JOIN SPEEDUP (row, {N}/big side): as-written {:.1} ms, reordered {:.1} ms => {:.1}x",
        t_as_written_row * 1e3,
        t_reordered_row * 1e3,
        speedup_row
    );
    println!(
        "MULTI_JOIN SPEEDUP (vectorized, {N}/big side): as-written {:.1} ms, reordered {:.1} ms => {:.1}x",
        t_as_written_vec * 1e3,
        t_reordered_vec * 1e3,
        speedup_vec
    );
    assert!(
        speedup_row >= 5.0,
        "join reordering must be >= 5x over the as-written order on the row \
         engine, got {speedup_row:.1}x"
    );
    // The vectorized bar is lower than the row engine's since the
    // morsel-pipeline driver landed: stacked hash joins now *stream* the
    // probe side through both probes instead of materializing the
    // as-written plan's ~4M-row intermediate, which made the bad order
    // several times cheaper on the vectorized engine (measured ~5x; the
    // row engine still materializes and stays >25x). Reordering still has
    // to win clearly — the bar guards the pass, not the old architecture.
    assert!(
        speedup_vec >= 4.0,
        "join reordering must be >= 4x over the as-written order on the \
         vectorized engine, got {speedup_vec:.1}x"
    );

    let mut report = BenchReport::new("multi_join")
        .int("rows_per_big_side", N as u64)
        .int("key_domain", D as u64)
        .int("small_rows", S as u64)
        .num("t_as_written_row_s", t_as_written_row)
        .num("t_as_written_vectorized_s", t_as_written_vec)
        .num("t_reordered_row_s", t_reordered_row)
        .num("t_reordered_vectorized_s", t_reordered_vec)
        .num("speedup_row", speedup_row)
        .num("speedup_vectorized", speedup_vec);
    // Operator breakdowns for the reordered plan on both engines — the
    // est-vs-actual columns are exactly what the reordering pass consumed.
    for (label, mode) in [("row", ExecMode::Row), ("vectorized", ExecMode::Vectorized)] {
        reordered.set_exec_mode(mode);
        if let Some(stats) = instrumented_stats(&reordered, || {
            reordered.query_det(SQL).expect("stats run");
        }) {
            report = report.operator_stats(format!("reordered_{label}"), stats);
        }
    }
    report.write();
}

criterion_group!(benches, bench_multi_join);
criterion_main!(benches);
