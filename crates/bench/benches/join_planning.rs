//! Cost-aware join planning: comma-join SQL (`FROM r, s WHERE r.k = s.k`)
//! must run as a hash join, not a cross product + filter.
//!
//! Measures, on a selective equi-join over `r(k, v) ⋈ s(k, w)`:
//!
//! * the optimized plan (HashJoin) at 100k rows per side, on both engines;
//! * the unoptimized cross-join baseline at a matched smaller scale
//!   (4k rows per side — the 100k cross product is 10¹⁰ pairs, which is
//!   precisely why the pass exists), asserting the ≥10x acceptance bar on
//!   directly measured, matched-scale numbers;
//! * the 100k-equivalent baseline by quadratic extrapolation (a cross join
//!   scales with |r|·|s|), reported alongside.
//!
//! Prints `JOIN_PLANNING SPEEDUP ...` lines for the CI smoke grep and
//! writes `BENCH_join_planning.json` at the repo root (uploaded as a CI
//! artifact).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_bench::report::{instrumented_stats, BenchReport};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// Full scale for the optimized plan (per side).
const N: usize = 100_000;
/// Matched scale for the measured cross-join baseline (per side).
const M: usize = 4_000;

const SQL: &str = "SELECT r.v, s.w FROM r, s WHERE r.k = s.k AND r.v < 250";

/// `r(k, v)` and `s(k, w)` with `rows` rows each: keys are a permutation-ish
/// draw over `0..rows` (≈1 match per probe row), `v`/`w` uniform in 0..1000
/// (so `r.v < 250` keeps ~25%).
fn session(rows: usize, optimizer: bool) -> UaSession {
    let mut rng = StdRng::seed_from_u64(0x10B5);
    let s = UaSession::new();
    s.set_optimizer_enabled(optimizer);
    s.register_table(
        "r",
        Table::from_rows(
            Schema::qualified("r", ["k", "v"]),
            (0..rows as i64)
                .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(rng.gen_range(0..1000))]))
                .collect(),
        ),
    );
    s.register_table(
        "s",
        Table::from_rows(
            Schema::qualified("s", ["k", "w"]),
            (0..rows as i64)
                .map(|_| {
                    Tuple::new(vec![
                        Value::Int(rng.gen_range(0..rows as i64)),
                        Value::Int(rng.gen_range(0..1000)),
                    ])
                })
                .collect(),
        ),
    );
    s
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_join_planning(c: &mut Criterion) {
    ua_vecexec::install();

    // Correctness gates before timing: the optimizer must not change the
    // result (matched scale, where the cross join is feasible), the plan
    // must actually contain a HashJoin, and the engines must agree at full
    // scale.
    let small_opt = session(M, true);
    let small_raw = session(M, false);
    let opt_result = small_opt.query_det(SQL).expect("optimized");
    let raw_result = small_raw.query_det(SQL).expect("unoptimized");
    assert_eq!(
        opt_result.sorted_rows(),
        raw_result.sorted_rows(),
        "optimizer changed the join result"
    );
    let explain = small_opt.explain_det(SQL).expect("explain");
    assert!(
        explain.contains("HashJoin"),
        "comma-join did not plan to a hash join:\n{explain}"
    );

    let full = session(N, true);
    full.set_exec_mode(ExecMode::Row);
    let row = full.query_det(SQL).expect("row");
    full.set_exec_mode(ExecMode::Vectorized);
    let vec = full.query_det(SQL).expect("vec");
    assert_eq!(row.rows(), vec.rows(), "engines disagree at full scale");
    println!(
        "join output: {} rows from {N} x {N} (selective equi-join)",
        row.len()
    );

    let mut group = c.benchmark_group("join_planning");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("hash_row", N), |b| {
        full.set_exec_mode(ExecMode::Row);
        b.iter(|| full.query_det(SQL).expect("row").len())
    });
    group.bench_function(BenchmarkId::new("hash_vectorized", N), |b| {
        full.set_exec_mode(ExecMode::Vectorized);
        b.iter(|| full.query_det(SQL).expect("vec").len())
    });
    group.bench_function(BenchmarkId::new("cross_baseline_row", M), |b| {
        b.iter(|| small_raw.query_det(SQL).expect("raw").len())
    });
    group.finish();

    full.set_exec_mode(ExecMode::Row);
    let t_hash_full_row = median_secs(|| full.query_det(SQL).expect("row").len(), 5);
    full.set_exec_mode(ExecMode::Vectorized);
    let t_hash_full_vec = median_secs(|| full.query_det(SQL).expect("vec").len(), 5);
    let t_hash_small = median_secs(|| small_opt.query_det(SQL).expect("opt").len(), 5);
    let t_cross_small = median_secs(|| small_raw.query_det(SQL).expect("raw").len(), 3);

    let matched_speedup = t_cross_small / t_hash_small;
    // A cross join is Θ(|r|·|s|): scale the measured baseline quadratically
    // to the full size for the 100k-per-side comparison.
    let scale = (N as f64 / M as f64) * (N as f64 / M as f64);
    let t_cross_full_est = t_cross_small * scale;
    let full_speedup = t_cross_full_est / t_hash_full_row;

    println!(
        "JOIN_PLANNING SPEEDUP (matched {M}/side): cross {:.1} ms, hash {:.2} ms => {:.1}x",
        t_cross_small * 1e3,
        t_hash_small * 1e3,
        matched_speedup
    );
    println!(
        "JOIN_PLANNING SPEEDUP ({N}/side): cross est {:.1} s (measured at {M}/side x {scale:.0}), \
         hash row {:.1} ms, hash vectorized {:.1} ms => {:.0}x",
        t_cross_full_est,
        t_hash_full_row * 1e3,
        t_hash_full_vec * 1e3,
        full_speedup
    );
    assert!(
        matched_speedup >= 10.0,
        "join planning must be >= 10x over the cross-join baseline at matched scale, \
         got {matched_speedup:.1}x"
    );
    assert!(
        full_speedup >= 10.0,
        "join planning must be >= 10x at {N} rows per side, got {full_speedup:.1}x"
    );

    let mut report = BenchReport::new("join_planning")
        .int("rows_per_side", N as u64)
        .int("baseline_rows_per_side", M as u64)
        .num(format!("t_cross_{M}_s"), t_cross_small)
        .num(format!("t_hash_{M}_s"), t_hash_small)
        .num(format!("t_hash_{N}_row_s"), t_hash_full_row)
        .num(format!("t_hash_{N}_vectorized_s"), t_hash_full_vec)
        .num(format!("t_cross_{N}_extrapolated_s"), t_cross_full_est)
        .num("speedup_matched", matched_speedup)
        .num(format!("speedup_{N}"), full_speedup);
    for (label, mode) in [("row", ExecMode::Row), ("vectorized", ExecMode::Vectorized)] {
        full.set_exec_mode(mode);
        if let Some(stats) = instrumented_stats(&full, || {
            full.query_det(SQL).expect("stats run");
        }) {
            report = report.operator_stats(label, stats);
        }
    }
    report.write();
}

criterion_group!(benches, bench_join_planning);
criterion_main!(benches);
