//! Row vs. vectorized executor on the paper-style workloads, at a scale
//! where throughput differences matter (≥ 100k rows through a
//! selection + hash-join + projection pipeline).
//!
//! Run with `cargo bench --bench vecexec -p ua-bench`. Besides the criterion
//! groups, the bench prints the measured row/vectorized speedup factors and
//! asserts the two engines return identical results before timing anything.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::{Expr, RaExpr};
use ua_engine::plan::Plan;
use ua_engine::{execute, Catalog, ExecMode, ExecOptions, Table, UaSession};
use ua_vecexec::{execute_vectorized, execute_vectorized_opts};

const ORDERS: usize = 200_000;
const CUSTOMERS: usize = 20_000;

/// `orders(okey, custkey, total)` ⋈ `customers(custkey, name, nation)`.
fn build_catalog() -> Catalog {
    let mut rng = StdRng::seed_from_u64(42);
    let catalog = Catalog::new();
    catalog.register(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["okey", "custkey", "total"]),
            (0..ORDERS as i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int(rng.gen_range(0..CUSTOMERS as i64)),
                        Value::Int(rng.gen_range(1..1000)),
                    ])
                })
                .collect(),
        ),
    );
    catalog.register(
        "customers",
        Table::from_rows(
            Schema::qualified("customers", ["custkey", "name", "nation"]),
            (0..CUSTOMERS as i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::str(format!("cust{i}")),
                        Value::Int(rng.gen_range(0..25)),
                    ])
                })
                .collect(),
        ),
    );
    catalog
}

/// The acceptance pipeline: selection + equi-join + projection.
fn pipeline() -> Plan {
    Plan::from_ra(
        &RaExpr::table("orders")
            .select(Expr::named("total").ge(Expr::lit(500i64)))
            .join(
                RaExpr::table("customers"),
                Expr::named("orders.custkey").eq(Expr::named("customers.custkey")),
            )
            .project(["okey", "name", "total"]),
    )
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_sel_join_proj(c: &mut Criterion) {
    let catalog = build_catalog();
    let plan = pipeline();

    // Correctness gate before timing.
    let row = execute(&plan, &catalog).expect("row");
    let vec = execute_vectorized(&plan, &catalog).expect("vec");
    assert_eq!(row.rows(), vec.rows(), "engines disagree");
    println!(
        "pipeline output: {} rows from {} x {}",
        row.len(),
        ORDERS,
        CUSTOMERS
    );

    let mut group = c.benchmark_group("vecexec_sel_join_proj");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("row", ORDERS), &plan, |b, plan| {
        b.iter(|| execute(plan, &catalog).expect("row"))
    });
    group.bench_with_input(BenchmarkId::new("vectorized", ORDERS), &plan, |b, plan| {
        b.iter(|| execute_vectorized(plan, &catalog).expect("vec"))
    });
    group.finish();

    let t_row = median_secs(|| execute(&plan, &catalog).expect("row").len(), 7);
    let t_vec = median_secs(
        || execute_vectorized(&plan, &catalog).expect("vec").len(),
        7,
    );
    println!(
        "SPEEDUP sel+join+proj @ {ORDERS} rows: row {:.1} ms, vectorized {:.1} ms => {:.2}x",
        t_row * 1e3,
        t_vec * 1e3,
        t_row / t_vec
    );
}

fn bench_ua_labels(c: &mut Criterion) {
    // UA path: same pipeline over a TI-style uncertain orders table —
    // rewritten row plan vs. bitmap-propagating vectorized path.
    let mut rng = StdRng::seed_from_u64(43);
    let raw = Table::from_rows(
        Schema::qualified("orders", ["okey", "custkey", "total", "p"]),
        (0..ORDERS as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::Int(rng.gen_range(0..CUSTOMERS as i64)),
                    Value::Int(rng.gen_range(1..1000)),
                    Value::float(if rng.gen_bool(0.1) { 0.8 } else { 1.0 }),
                ])
            })
            .collect(),
    );
    let cust = Table::from_rows(
        Schema::qualified("customers", ["custkey", "name", "p"]),
        (0..CUSTOMERS as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(format!("cust{i}")),
                    Value::float(1.0),
                ])
            })
            .collect(),
    );
    let sql = "SELECT okey, name, total \
               FROM orders IS TI WITH PROBABILITY (p) \
               JOIN customers IS TI WITH PROBABILITY (p) \
                 ON orders.custkey = customers.custkey \
               WHERE total >= 500";

    let session = UaSession::new();
    session.register_table("orders", raw);
    session.register_table("customers", cust);
    ua_vecexec::install();

    session.set_exec_mode(ExecMode::Row);
    let row = session.query_ua(sql).expect("row ua");
    session.set_exec_mode(ExecMode::Vectorized);
    let vec = session.query_ua(sql).expect("vec ua");
    assert_eq!(row.table.rows(), vec.table.rows(), "UA engines disagree");
    println!(
        "UA pipeline output: {} rows, {} certain",
        row.certainty_counts().1,
        row.certainty_counts().0
    );

    let mut group = c.benchmark_group("vecexec_ua_labels");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("row_rewritten", ORDERS), |b| {
        session.set_exec_mode(ExecMode::Row);
        b.iter(|| session.query_ua(sql).expect("row ua"))
    });
    group.bench_function(BenchmarkId::new("vectorized_bitmaps", ORDERS), |b| {
        session.set_exec_mode(ExecMode::Vectorized);
        b.iter(|| session.query_ua(sql).expect("vec ua"))
    });
    group.finish();

    session.set_exec_mode(ExecMode::Row);
    let t_row = median_secs(|| session.query_ua(sql).expect("row").table.len(), 5);
    session.set_exec_mode(ExecMode::Vectorized);
    let t_vec = median_secs(|| session.query_ua(sql).expect("vec").table.len(), 5);
    println!(
        "SPEEDUP UA sel+join+proj @ {ORDERS} rows: row {:.1} ms, vectorized {:.1} ms => {:.2}x",
        t_row * 1e3,
        t_vec * 1e3,
        t_row / t_vec
    );
}

/// Morsel-parallel pipeline: the same sel+join+proj plan at threads=1 vs
/// threads=4. Output is asserted byte-identical first (the determinism
/// contract), then the wall-clock ratio is measured; the ≥2x acceptance
/// gate only applies on machines with ≥4 cores — a single-core container
/// can't exhibit parallel speedup, so the gate prints as skipped there.
fn bench_parallel_pipeline(c: &mut Criterion) {
    let catalog = build_catalog();
    let plan = pipeline();
    let opts = |threads: usize| ExecOptions {
        threads,
        batch_rows: 0,
        collect_stats: false,
        collect_trace: false,
    };

    // Determinism gate: parallel output must be byte-identical to serial.
    let serial = execute_vectorized_opts(&plan, &catalog, opts(1)).expect("serial");
    for threads in [2usize, 4, 8] {
        let parallel = execute_vectorized_opts(&plan, &catalog, opts(threads)).expect("parallel");
        assert_eq!(
            serial.rows(),
            parallel.rows(),
            "threads={threads}: parallel output differs from serial"
        );
    }

    let mut group = c.benchmark_group("vecexec_parallel");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new(format!("threads_{threads}"), ORDERS),
            &plan,
            |b, plan| {
                b.iter(|| execute_vectorized_opts(plan, &catalog, opts(threads)).expect("vec"))
            },
        );
    }
    group.finish();

    let t_serial = median_secs(
        || {
            execute_vectorized_opts(&plan, &catalog, opts(1))
                .expect("vec")
                .len()
        },
        7,
    );
    let t_parallel = median_secs(
        || {
            execute_vectorized_opts(&plan, &catalog, opts(4))
                .expect("vec")
                .len()
        },
        7,
    );
    let speedup = t_serial / t_parallel;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "PARALLEL SPEEDUP sel+join+proj @ {ORDERS} rows: serial {:.1} ms, threads=4 {:.1} ms => {:.2}x ({cores} cores)",
        t_serial * 1e3,
        t_parallel * 1e3,
        speedup
    );
    if cores >= 4 {
        assert!(
            speedup >= 2.0,
            "threads=4 must beat serial vectorized by >= 2x on a {cores}-core \
             machine, got {speedup:.2}x"
        );
    } else {
        println!("PARALLEL SPEEDUP gate (>= 2x) skipped: only {cores} core(s) available");
    }

    ua_bench::report::BenchReport::new("vecexec")
        .int("rows", ORDERS as u64)
        .int("cores", cores as u64)
        .num("t_serial_s", t_serial)
        .num("t_parallel4_s", t_parallel)
        .num("speedup_parallel_threads4", speedup)
        .write();
}

criterion_group!(
    benches,
    bench_sel_join_proj,
    bench_ua_labels,
    bench_parallel_pipeline
);
criterion_main!(benches);
