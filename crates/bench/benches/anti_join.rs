//! Anti-join at scale: the `NOT EXISTS` idiom over 1M rows must run as a
//! vectorized hash **anti-probe**, not a nested rejection loop.
//!
//! The planner lowers `NOT IN` / `NOT EXISTS` (and users write the classic
//! idiom directly) to `LEFT JOIN ... ON equi-key` + `WHERE pad IS NULL`:
//! the outer join hash-indexes the subquery side, every probe *miss*
//! NULL-pads, and the filter keeps exactly the pads — one O(|R| + |S|)
//! hash pass. The naive alternative — what a pre-hash executor would run —
//! rejects each probe row by scanning the subquery side: O(|R| · |S|).
//!
//! Both strategies live in the same engine, so the baseline is measured
//! honestly in-engine: the same anti-join query with the ON predicate
//! written as `orders.k = blocked.k OR blocked.k IS NULL`. The disjunct is
//! dead (blocked.k is never NULL in the data), so the output is identical,
//! but equi-key extraction cannot see through the OR and the operator
//! takes its nested-loop path — the naive nested rejection.
//!
//! Correctness gates before timing: the anti-probe plan agrees byte-for-
//! byte across {row, vectorized} × {optimizer on, off} and with the naive
//! plan, and on a 20k-row slice the `NOT IN` lowering produces the same
//! rows as the hand-written idiom on both engines. Then the ≥3x
//! acceptance bar on the vectorized engine, `ANTI_JOIN SPEEDUP` lines for
//! the CI smoke grep, and `BENCH_anti_join.json` at the repo root next to the other bench
//! artifacts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_bench::report::{instrumented_stats, BenchReport};
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_engine::{ExecMode, Table, UaSession};

/// Probe-side rows.
const N: usize = 1_000_000;
/// Key domain (expected rejections ≈ N · B / D ≈ 256 rows).
const D: i64 = 1_000_000;
/// Distinct keys in the blocklist (the subquery side).
const B: usize = 256;
/// Probe rows for the NOT IN consistency slice (kept small: the
/// three-valued NOT IN predicate nested-loops by design).
const N_SMALL: usize = 20_000;

/// The anti-join idiom: equi ON key, so both engines hash anti-probe.
const ANTI: &str = "SELECT orders.k, orders.v FROM orders \
                    LEFT JOIN blocked ON orders.k = blocked.k \
                    WHERE blocked.k IS NULL";

/// Same output, but the OR hides the equi key from `extract_equi_keys`
/// and forces the operator's nested-loop path (blocked.k is never NULL,
/// so the extra disjunct matches nothing).
const NAIVE: &str = "SELECT orders.k, orders.v FROM orders \
                     LEFT JOIN blocked ON orders.k = blocked.k OR blocked.k IS NULL \
                     WHERE blocked.k IS NULL";

const ANTI_SMALL: &str = "SELECT orders_small.k, orders_small.v FROM orders_small \
                          LEFT JOIN blocked ON orders_small.k = blocked.k \
                          WHERE blocked.k IS NULL";

const NOT_IN_SMALL: &str = "SELECT orders_small.k, orders_small.v FROM orders_small \
                            WHERE orders_small.k NOT IN (SELECT blocked.k FROM blocked)";

fn session() -> UaSession {
    let mut rng = StdRng::seed_from_u64(0x0a17);
    let s = UaSession::new();
    s.set_optimizer_enabled(true);
    let orders: Vec<Tuple> = (0..N as i64)
        .map(|i| Tuple::new(vec![Value::Int(rng.gen_range(0..D)), Value::Int(i)]))
        .collect();
    s.register_table(
        "orders_small",
        Table::from_rows(
            Schema::qualified("orders_small", ["k", "v"]),
            orders[..N_SMALL].to_vec(),
        ),
    );
    s.register_table(
        "orders",
        Table::from_rows(Schema::qualified("orders", ["k", "v"]), orders),
    );
    let mut blocked: Vec<i64> = Vec::new();
    while blocked.len() < B {
        let k = rng.gen_range(0..D);
        if !blocked.contains(&k) {
            blocked.push(k);
        }
    }
    s.register_table(
        "blocked",
        Table::from_rows(
            Schema::qualified("blocked", ["k"]),
            blocked
                .into_iter()
                .map(|k| Tuple::new(vec![Value::Int(k)]))
                .collect(),
        ),
    );
    s
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_anti_join(c: &mut Criterion) {
    ua_vecexec::install();
    let s = session();

    // Correctness gates first. The anti-probe must survive the optimizer
    // untouched (filters are never pushed into an outer join's padded
    // side) and agree across engines.
    let mut results = Vec::new();
    for opt in [true, false] {
        s.set_optimizer_enabled(opt);
        for mode in [ExecMode::Row, ExecMode::Vectorized] {
            s.set_exec_mode(mode);
            results.push(s.query_det(ANTI).expect("anti").sorted_rows());
        }
    }
    s.set_optimizer_enabled(true);
    s.set_exec_mode(ExecMode::Vectorized);
    results.push(s.query_det(NAIVE).expect("naive").sorted_rows());
    assert!(
        results.iter().all(|r| *r == results[0]),
        "anti-probe and nested rejection disagree"
    );
    let kept = results[0].len();
    assert!(
        kept < N && kept > 0,
        "degenerate blocklist: {kept} of {N} rows kept"
    );
    println!("anti-join keeps {kept} of {N} rows ({} rejected)", N - kept);

    // The planner's NOT IN lowering is the same anti-join shape; on a
    // NULL-free slice it must produce exactly the hand-written idiom's
    // rows on both engines.
    let mut small = Vec::new();
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        s.set_exec_mode(mode);
        small.push(s.query_det(ANTI_SMALL).expect("anti small").sorted_rows());
        small.push(s.query_det(NOT_IN_SMALL).expect("not in").sorted_rows());
    }
    assert!(
        small.iter().all(|r| *r == small[0]) && !small[0].is_empty(),
        "NOT IN lowering disagrees with the anti-join idiom"
    );

    let mut group = c.benchmark_group("anti_join");
    group.sample_size(10);
    for (label, mode) in [("row", ExecMode::Row), ("vectorized", ExecMode::Vectorized)] {
        group.bench_function(BenchmarkId::new(format!("anti_probe_{label}"), N), |b| {
            s.set_exec_mode(mode);
            b.iter(|| s.query_det(ANTI).expect("run").len())
        });
    }
    // The naive loop visits ~N·B pairs; criterion sampling at that cost
    // would dominate CI, so it is timed only by the median loop below.
    group.finish();

    let time = |sql: &str, mode: ExecMode, samples: usize| {
        s.set_exec_mode(mode);
        median_secs(|| s.query_det(sql).expect("run").len(), samples)
    };
    let t_anti_row = time(ANTI, ExecMode::Row, 5);
    let t_anti_vec = time(ANTI, ExecMode::Vectorized, 5);
    let t_naive_vec = time(NAIVE, ExecMode::Vectorized, 3);

    let speedup_vec = t_naive_vec / t_anti_vec;
    println!(
        "ANTI_JOIN SPEEDUP (vectorized, {N} rows x {B} blocklist): \
         nested rejection {:.1} ms, hash anti-probe {:.1} ms => {:.1}x",
        t_naive_vec * 1e3,
        t_anti_vec * 1e3,
        speedup_vec
    );
    println!(
        "ANTI_JOIN row-engine anti-probe: {:.1} ms (hash path, unbenched baseline)",
        t_anti_row * 1e3
    );
    assert!(
        speedup_vec >= 3.0,
        "the hash anti-probe must be >= 3x over nested rejection on the \
         vectorized engine, got {speedup_vec:.1}x"
    );

    let mut report = BenchReport::new("anti_join")
        .int("probe_rows", N as u64)
        .int("blocklist_rows", B as u64)
        .int("key_domain", D as u64)
        .int("rows_kept", kept as u64)
        .num("t_anti_probe_row_s", t_anti_row)
        .num("t_anti_probe_vectorized_s", t_anti_vec)
        .num("t_nested_rejection_vectorized_s", t_naive_vec)
        .num("speedup_vectorized", speedup_vec);
    for (label, mode) in [("row", ExecMode::Row), ("vectorized", ExecMode::Vectorized)] {
        s.set_exec_mode(mode);
        if let Some(stats) = instrumented_stats(&s, || {
            s.query_det(ANTI).expect("stats run");
        }) {
            report = report.operator_stats(format!("anti_probe_{label}"), stats);
        }
    }
    report.write();
}

criterion_group!(benches, bench_anti_join);
criterion_main!(benches);
