//! Criterion benches for the timing-sensitive experiments of the paper,
//! plus the ablations called out in DESIGN.md §5.
//!
//! These run scaled-down configurations so `cargo bench` completes in
//! minutes; the `reproduce` binary regenerates the full paper-style tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ua_baselines::{certain_subset, BundleDb, UDb};
use ua_bench::experiments::pdbench_suite;
use ua_core::UaDb;
use ua_datagen::bidb::{self, BidbConfig};
use ua_datagen::ctables::{query_batch, random_cdb, CtableConfig};
use ua_datagen::queries::pdbench_queries;
use ua_engine::plan::Plan;
use ua_models::eval_symbolic;

/// Figure 10: UA-DB vs exact C-table certain answers per complexity.
fn bench_fig10(c: &mut Criterion) {
    let cdb = random_cdb(&CtableConfig {
        rows: 12,
        attrs: 8,
        seed: 17,
    });
    let ua = UaDb::from_cdb(&cdb);
    let solver = ua_conditions::Solver::with_limit(2_000_000);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for complexity in [1usize, 3, 5] {
        let queries = query_batch(complexity, 1, 8, 23 + complexity as u64);
        let (_, q) = queries
            .into_iter()
            .find(|(cx, _)| *cx == complexity)
            .expect("query generated");
        group.bench_with_input(BenchmarkId::new("uadb", complexity), &q, |b, q| {
            b.iter(|| ua.query(q).expect("ua"))
        });
        group.bench_with_input(BenchmarkId::new("ctables_exact", complexity), &q, |b, q| {
            b.iter(|| {
                let table = eval_symbolic(q, &cdb).expect("symbolic");
                let mut n = 0usize;
                for row in table.tuples().iter().take(10) {
                    if row.is_constant() {
                        let cond = table.membership_condition(&row.values);
                        if solver.try_is_valid(&cond) == Some(true) {
                            n += 1;
                        }
                    }
                }
                n
            })
        });
    }
    group.finish();
}

/// Figures 11/14: the five systems on PDBench Q1–Q3.
fn bench_pdbench(c: &mut Criterion) {
    let (uncertain, det_catalog, ua) = pdbench_suite::prepare(0.0005, 0.05, 7);
    let udb = UDb::from_xdb(&uncertain.xdb);
    let mut rng = StdRng::seed_from_u64(99);
    let bundles = BundleDb::from_xdb(&uncertain.xdb, 10, &mut rng);

    let mut group = c.benchmark_group("fig11_fig14_pdbench");
    group.sample_size(10);
    for (name, q) in pdbench_queries() {
        let plan = Plan::from_ra(&q);
        group.bench_function(BenchmarkId::new("det", name), |b| {
            b.iter(|| ua_engine::exec::execute(&plan, &det_catalog).expect("det"))
        });
        group.bench_function(BenchmarkId::new("uadb", name), |b| {
            b.iter(|| ua.query_ua_ra(&q).expect("ua"))
        });
        group.bench_function(BenchmarkId::new("libkin", name), |b| {
            b.iter(|| certain_subset(&plan, &det_catalog).expect("libkin"))
        });
        group.bench_function(BenchmarkId::new("maybms", name), |b| {
            b.iter(|| udb.query(&q).expect("maybms"))
        });
        group.bench_function(BenchmarkId::new("mcdb", name), |b| {
            b.iter(|| bundles.query(&q).expect("mcdb"))
        });
    }
    group.finish();
}

/// Figure 19: conf() computation vs UA querying as alternatives grow.
fn bench_fig19(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig19_probabilistic");
    group.sample_size(10);
    for alts in [2usize, 10] {
        let xdb = bidb::generate(&BidbConfig {
            blocks: 200,
            alternatives: alts,
            seed: 5,
        });
        let udb = UDb::from_xdb(&xdb);
        let ua = UaDb::from_xdb(&xdb);
        let q = bidb::qp2();
        group.bench_with_input(BenchmarkId::new("uadb", alts), &q, |b, q| {
            b.iter(|| ua.query(q).expect("ua"))
        });
        group.bench_with_input(BenchmarkId::new("maybms_conf", alts), &q, |b, q| {
            b.iter(|| {
                let rel = udb.query(q).expect("maybms");
                udb.confidences(&rel)
            })
        });
    }
    group.finish();
}

/// Ablation 1 (DESIGN.md §5): native K²-evaluation vs Enc + rewriting.
fn bench_ablation_native_vs_rewrite(c: &mut Criterion) {
    let (uncertain, _, ua_session) = pdbench_suite::prepare(0.0005, 0.05, 13);
    let ua_native = UaDb::from_xdb(&uncertain.xdb);
    let q = ua_datagen::queries::pdbench_q2();
    let mut group = c.benchmark_group("ablation_native_vs_rewrite");
    group.sample_size(10);
    group.bench_function("native_pair_semiring", |b| {
        b.iter(|| ua_native.query(&q).expect("native"))
    });
    group.bench_function("encoded_rewritten", |b| {
        b.iter(|| ua_session.query_ua_ra(&q).expect("rewritten"))
    });
    group.finish();
}

/// Ablation 2 (DESIGN.md §5): annotation-map K-relations vs row-vector bag
/// tables executing the same query.
fn bench_ablation_storage(c: &mut Criterion) {
    let (uncertain, det_catalog, _) = pdbench_suite::prepare(0.0005, 0.02, 31);
    let q = ua_datagen::queries::pdbench_q1();
    let mut db: ua_data::Database<u64> = ua_data::Database::new();
    for name in ["customer", "orders", "lineitem", "supplier"] {
        db.insert(name, uncertain.bgw[name].to_relation());
    }
    let mut group = c.benchmark_group("ablation_storage");
    group.sample_size(10);
    group.bench_function("annotation_map_relation", |b| {
        b.iter(|| ua_data::eval(&q, &db).expect("map eval"))
    });
    group.bench_function("row_vector_table", |b| {
        let plan = Plan::from_ra(&q);
        b.iter(|| ua_engine::exec::execute(&plan, &det_catalog).expect("row exec"))
    });
    group.finish();
}

/// Ablation 3 (DESIGN.md §5): hash join vs forced nested loops.
fn bench_ablation_join(c: &mut Criterion) {
    use ua_data::Expr;
    let (_, det_catalog, _) = pdbench_suite::prepare(0.0005, 0.02, 3);
    let equi = ua_data::RaExpr::table("orders").join(
        ua_data::RaExpr::table("lineitem"),
        Expr::named("orders.orderkey").eq(Expr::named("lineitem.orderkey")),
    );
    // Hiding the equality inside an OR defeats extraction → nested loops.
    let nested = ua_data::RaExpr::table("orders").join(
        ua_data::RaExpr::table("lineitem"),
        Expr::named("orders.orderkey")
            .eq(Expr::named("lineitem.orderkey"))
            .or(Expr::lit(false)),
    );
    let mut group = c.benchmark_group("ablation_join_strategy");
    group.sample_size(10);
    group.bench_function("hash_join", |b| {
        let plan = Plan::from_ra(&equi);
        b.iter(|| ua_engine::exec::execute(&plan, &det_catalog).expect("hash"))
    });
    group.bench_function("nested_loop", |b| {
        let plan = Plan::from_ra(&nested);
        b.iter(|| ua_engine::exec::execute(&plan, &det_catalog).expect("nl"))
    });
    group.finish();

    // Trajectory artifact: the ablation's headline ratio, diffed against
    // the previous run's BENCH_paper.json by `BenchReport::write`.
    let avg_of = |plan: &Plan| {
        let (d, _) = ua_bench::report::time_avg(5, || {
            ua_engine::exec::execute(plan, &det_catalog).expect("timed run")
        });
        d.as_secs_f64()
    };
    let t_hash = avg_of(&Plan::from_ra(&equi));
    let t_nested = avg_of(&Plan::from_ra(&nested));
    ua_bench::report::BenchReport::new("paper")
        .num("t_hash_join_s", t_hash)
        .num("t_nested_loop_s", t_nested)
        .num("hash_join_speedup", t_nested / t_hash)
        .write();
}

/// Ablation 4 (DESIGN.md §5): PTIME CNF labeling vs exact solver labeling —
/// the mechanism behind Figure 10's gap, measured in isolation.
fn bench_ablation_labeling(c: &mut Criterion) {
    let cdb = random_cdb(&CtableConfig {
        rows: 30,
        attrs: 8,
        seed: 29,
    });
    let table = cdb.get("ct").expect("table").clone();
    let solver = ua_conditions::Solver::with_limit(2_000_000);
    let mut group = c.benchmark_group("ablation_labeling_cost");
    group.sample_size(10);
    group.bench_function("cnf_ptime_labeling", |b| b.iter(|| table.labeling()));
    group.bench_function("exact_solver_labeling", |b| {
        b.iter(|| {
            table
                .tuples()
                .iter()
                .filter(|t| t.is_constant())
                .filter(|t| {
                    solver.try_is_valid(&table.membership_condition(&t.values)) == Some(true)
                })
                .count()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig10,
    bench_pdbench,
    bench_fig19,
    bench_ablation_native_vs_rewrite,
    bench_ablation_storage,
    bench_ablation_join,
    bench_ablation_labeling
);
criterion_main!(benches);
