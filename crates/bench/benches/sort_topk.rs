//! Columnar-native Sort / fused Top-K vs the row engine's Sort+Limit.
//!
//! 1M rows, Top-100: the row engine materializes the table, decorates
//! every row with its key vector, sorts all 1M and takes the prefix; the
//! vectorized engine's `TopK` operator keeps a bounded 100-row buffer and
//! never sorts (or materializes) the input. The acceptance bar is **≥ 3x**
//! over the row engine's `Limit(Sort(..))`.
//!
//! Also measured for context: the row engine's own bounded-heap `TopK`
//! (the fusion helps there too) and the vectorized full `Sort` (columnar,
//! no row materialization). Correctness gates assert all variants return
//! identical rows before timing. Writes `BENCH_sort_topk.json` at the repo root next to the other
//! bench artifacts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_bench::report::BenchReport;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::Expr;
use ua_engine::plan::{Plan, SortOrder};
use ua_engine::{execute, execute_with_stats, Catalog, ExecOptions, QueryStats, Table};
use ua_vecexec::{execute_vectorized, execute_vectorized_opts};

/// Rows in the scanned table.
const N: usize = 1_000_000;
/// The K of Top-K.
const K: usize = 100;

fn build_catalog() -> Catalog {
    let mut rng = StdRng::seed_from_u64(0x70CC);
    let catalog = Catalog::new();
    catalog.register(
        "events",
        Table::from_rows(
            Schema::qualified("events", ["id", "score", "grp"]),
            (0..N as i64)
                .map(|i| {
                    Tuple::new(vec![
                        Value::Int(i),
                        Value::Int(rng.gen_range(0..1_000_000)),
                        Value::Int(rng.gen_range(0..64)),
                    ])
                })
                .collect(),
        ),
    );
    catalog
}

fn keys() -> Vec<(Expr, SortOrder)> {
    vec![
        (Expr::named("score"), SortOrder::Desc),
        (Expr::named("id"), SortOrder::Asc),
    ]
}

/// The unfused plan (what executes with the optimizer off).
fn sort_limit_plan() -> Plan {
    Plan::Limit {
        input: Box::new(Plan::Sort {
            input: Box::new(Plan::Scan("events".into())),
            keys: keys(),
        }),
        limit: K,
    }
}

/// The fused plan (what `optimize::fuse_topk` rewrites the above into).
fn topk_plan() -> Plan {
    Plan::TopK {
        input: Box::new(Plan::Scan("events".into())),
        keys: keys(),
        limit: K,
    }
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_sort_topk(c: &mut Criterion) {
    let catalog = build_catalog();
    let sort_limit = sort_limit_plan();
    let topk = topk_plan();

    // The rewrite itself must produce the fused operator.
    assert_eq!(
        format!("{}", ua_engine::fuse_topk(sort_limit.clone())),
        format!("{topk}"),
        "fuse_topk must rewrite Limit(Sort(..)) into TopK"
    );

    // Correctness gates before timing: all four (engine × plan) variants
    // return identical rows, in identical order.
    let reference = execute(&sort_limit, &catalog).expect("row sort+limit");
    assert_eq!(reference.len(), K);
    for (label, table) in [
        ("row topk", execute(&topk, &catalog).expect("row topk")),
        (
            "vec sort+limit",
            execute_vectorized(&sort_limit, &catalog).expect("vec sort+limit"),
        ),
        (
            "vec topk",
            execute_vectorized(&topk, &catalog).expect("vec topk"),
        ),
    ] {
        assert_eq!(reference.rows(), table.rows(), "{label} disagrees");
    }

    let mut group = c.benchmark_group("sort_topk");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("row_sort_limit", N),
        &sort_limit,
        |b, plan| b.iter(|| execute(plan, &catalog).expect("row").len()),
    );
    group.bench_with_input(BenchmarkId::new("row_topk", N), &topk, |b, plan| {
        b.iter(|| execute(plan, &catalog).expect("row").len())
    });
    group.bench_with_input(
        BenchmarkId::new("vec_sort_limit", N),
        &sort_limit,
        |b, plan| b.iter(|| execute_vectorized(plan, &catalog).expect("vec").len()),
    );
    group.bench_with_input(BenchmarkId::new("vec_topk", N), &topk, |b, plan| {
        b.iter(|| execute_vectorized(plan, &catalog).expect("vec").len())
    });
    group.finish();

    let t_row_sort = median_secs(|| execute(&sort_limit, &catalog).expect("row").len(), 5);
    let t_row_topk = median_secs(|| execute(&topk, &catalog).expect("row").len(), 5);
    let t_vec_sort = median_secs(
        || {
            execute_vectorized(&sort_limit, &catalog)
                .expect("vec")
                .len()
        },
        5,
    );
    let t_vec_topk = median_secs(
        || execute_vectorized(&topk, &catalog).expect("vec").len(),
        5,
    );

    let speedup = t_row_sort / t_vec_topk;
    println!(
        "SORT_TOPK SPEEDUP (Top-{K} of {N}): row Sort+Limit {:.1} ms, vectorized TopK {:.1} ms => {:.1}x",
        t_row_sort * 1e3,
        t_vec_topk * 1e3,
        speedup
    );
    println!(
        "  context: row TopK {:.1} ms, vectorized Sort+Limit {:.1} ms",
        t_row_topk * 1e3,
        t_vec_sort * 1e3
    );
    assert!(
        speedup >= 3.0,
        "vectorized TopK must be >= 3x over the row engine's Sort+Limit at \
         {N} rows, got {speedup:.1}x"
    );

    let mut report = BenchReport::new("sort_topk")
        .int("rows", N as u64)
        .int("k", K as u64)
        .num("t_row_sort_limit_s", t_row_sort)
        .num("t_row_topk_s", t_row_topk)
        .num("t_vec_sort_limit_s", t_vec_sort)
        .num("t_vec_topk_s", t_vec_topk)
        .num("speedup_vec_topk_over_row_sort_limit", speedup);
    // Operator breakdowns for the fused TopK plan on both engines. These
    // run below the session layer, so the stats come straight from the
    // executor entry points instead of `instrumented_stats`.
    if let Ok((_, root)) = execute_with_stats(&topk, &catalog) {
        report = report.operator_stats(
            "topk_row",
            QueryStats {
                engine: "row".into(),
                semantics: "det".into(),
                root,
                pool: None,
                peak_mem_bytes: 0,
            },
        );
    }
    let stats_opts = ExecOptions {
        threads: 1,
        batch_rows: 0,
        collect_stats: true,
        collect_trace: false,
    };
    if execute_vectorized_opts(&topk, &catalog, stats_opts).is_ok() {
        if let Some(stats) = ua_obs::take_last_query_stats() {
            report = report.operator_stats("topk_vectorized", stats);
        }
    }
    report.write();
}

criterion_group!(benches, bench_sort_topk);
criterion_main!(benches);
