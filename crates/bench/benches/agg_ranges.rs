//! Grouped aggregation at 1M rows: deterministic vs UA vs AU.
//!
//! The scenario this PR opens: `GROUP BY` + aggregates over an uncertain
//! source. Under `⟦·⟧_UA` the query is *rejected* (not closed — asserted
//! below); under `⟦·⟧_AU` it executes on both engines with sound
//! attribute-level bounds. Measured:
//!
//! * deterministic grouped aggregation, row vs vectorized — the typed
//!   single-`Int`-key aggregation path; the acceptance bar is **≥ 3x**
//!   vectorized over row;
//! * parallel det-vec aggregation, threads=1 vs threads=4 — byte-equal
//!   output asserted at every thread count unconditionally; the >= 2x
//!   wall-clock gate arms only on hosts with >= 4 cores (the CI
//!   container has 1);
//! * AU grouped aggregation (range-annotated input, ~6% uncertain rows),
//!   row interpreter vs the batch-native range-triple executor — gated:
//!   the vectorized AU path must beat the row interpreter, stay within
//!   12x of deterministic vectorized aggregation (the columnar
//!   `agg_bounds` kernels over dense lb/bg/ub triples replaced the
//!   per-`RangeValue` fold that sat at ~13-18x; the pre-batch-native
//!   path was ~60x), and run with every `au.vec.fallback.*` counter —
//!   all eight, `distinct` and `union_all` included — pinned;
//! * UA selection+projection over the same data as context (the fragment
//!   UA *can* run).
//!
//! Correctness gates before timing: row and vectorized results identical
//! under every semantics. Writes `BENCH_agg_ranges.json` at the repo root next to the other
//! bench artifacts.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use ua_bench::report::BenchReport;
use ua_data::algebra::ProjColumn;
use ua_data::schema::Schema;
use ua_data::tuple::Tuple;
use ua_data::value::Value;
use ua_data::Expr;
use ua_engine::plan::{AggExpr, AggFunc, Plan};
use ua_engine::{
    execute, execute_au, execute_with_stats, Catalog, ExecMode, ExecOptions, QueryStats, Table,
    UaSession,
};
use ua_ranges::{AuRelation, AuTuple, Bound, MultBound, RangeValue};
use ua_vecexec::{
    execute_au_vectorized, execute_au_vectorized_opts, execute_vectorized, execute_vectorized_opts,
};

/// Rows in the scanned table.
const N: usize = 1_000_000;
/// Distinct groups.
const GROUPS: i64 = 64;

fn det_table() -> Table {
    let mut rng = StdRng::seed_from_u64(0xA66);
    Table::from_rows(
        Schema::qualified("events", ["grp", "val"]),
        (0..N)
            .map(|_| {
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..GROUPS)),
                    Value::Int(rng.gen_range(0..1000)),
                ])
            })
            .collect(),
    )
}

/// The same data range-annotated: ~1/16 of the rows carry a value span
/// and an uncertain presence, the rest are certain points.
fn au_relation(det: &Table) -> AuRelation {
    let mut rel = AuRelation::new(det.schema().clone());
    for (i, row) in det.rows().iter().enumerate() {
        let grp = row.get(0).expect("grp").clone();
        let val = row.get(1).expect("val").clone();
        let uncertain = i % 16 == 0;
        let val_range = if uncertain {
            let v = match val {
                Value::Int(v) => v,
                _ => unreachable!("int column"),
            };
            RangeValue::new(
                Bound::Val(Value::Int(v - 5)),
                Value::Int(v),
                Bound::Val(Value::Int(v + 5)),
            )
        } else {
            RangeValue::point(val)
        };
        rel.push(AuTuple {
            values: vec![RangeValue::point(grp), val_range],
            mult: if uncertain {
                MultBound::new(0, 1, 1)
            } else {
                MultBound::certain(1)
            },
        });
    }
    rel
}

fn agg_plan(table: &str) -> Plan {
    Plan::Aggregate {
        input: Box::new(Plan::Scan(table.into())),
        group_by: vec![ProjColumn::named("grp")],
        aggregates: vec![
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::named("val")),
                name: "s".into(),
            },
        ],
    }
}

fn median_secs<F: FnMut() -> usize>(mut f: F, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn bench_agg_ranges(c: &mut Criterion) {
    ua_vecexec::install();
    let det = det_table();
    let catalog = Catalog::new();
    catalog.register("events", det.clone());
    let au_rel = au_relation(&det);
    catalog.register("events_au", ua_engine::au_table(&au_rel));
    let det_plan = agg_plan("events");
    let au_plan = agg_plan("events_au");

    // Correctness gates: identical results per semantics across engines.
    let det_row = execute(&det_plan, &catalog).expect("det row agg");
    assert_eq!(det_row.len(), GROUPS as usize);
    let det_vec = execute_vectorized(&det_plan, &catalog).expect("det vec agg");
    assert_eq!(det_row.rows(), det_vec.rows(), "det engines disagree");
    // The AU vectorized runs (this gate and every timed iteration below)
    // must stay batch-native: scan → γ with no row-at-a-time fallback.
    let fallback_counters = [
        "au.vec.fallback.aggregate",
        "au.vec.fallback.join",
        "au.vec.fallback.hash_join",
        "au.vec.fallback.union_all",
        "au.vec.fallback.distinct",
        "au.vec.fallback.sort",
        "au.vec.fallback.limit",
        "au.vec.fallback.top_k",
    ];
    let fallbacks_before: Vec<u64> = fallback_counters
        .iter()
        .map(|c| ua_obs::global().counter(c).get())
        .collect();
    let au_row = ua_engine::au_table(&execute_au(&au_plan, &catalog).expect("AU row agg"));
    let au_vec = execute_au_vectorized(&au_plan, &catalog).expect("AU vec agg");
    assert_eq!(au_row.rows(), au_vec.rows(), "AU engines disagree");
    assert_eq!(au_row.len(), GROUPS as usize);

    // UA rejects the aggregation — the scenario AU opens.
    {
        let session = UaSession::new();
        session.register_table("events", det.clone());
        let err = session
            .query_ua("SELECT grp, count(*) FROM events IS TI WITH PROBABILITY (val) GROUP BY grp");
        assert!(err.is_err(), "UA must reject aggregation");
    }

    let mut group = c.benchmark_group("agg_ranges");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("det_row", N), &det_plan, |b, plan| {
        b.iter(|| execute(plan, &catalog).expect("row").len())
    });
    group.bench_with_input(BenchmarkId::new("det_vec", N), &det_plan, |b, plan| {
        b.iter(|| execute_vectorized(plan, &catalog).expect("vec").len())
    });
    group.finish();

    let t_det_row = median_secs(|| execute(&det_plan, &catalog).expect("row").len(), 5);
    let t_det_vec = median_secs(
        || execute_vectorized(&det_plan, &catalog).expect("vec").len(),
        5,
    );
    // Parallel pipeline breakers: the partitioned aggregation fold at
    // threads=1 vs threads=4. Byte-equality holds at every thread count
    // by construction (per-worker pre-aggregation partitions merge in
    // fixed order) and is asserted unconditionally; the wall-clock gate
    // arms only where 4 workers actually have 4 cores to run on.
    let par_opts = |threads: usize| ExecOptions {
        threads,
        batch_rows: 0,
        collect_stats: false,
        collect_trace: false,
    };
    for threads in [1usize, 2, 4, 8] {
        let out = execute_vectorized_opts(&det_plan, &catalog, par_opts(threads))
            .expect("parallel det agg");
        assert_eq!(
            det_row.rows(),
            out.rows(),
            "parallel aggregation must be byte-identical at threads={threads}"
        );
    }
    let t_par1 = median_secs(
        || {
            execute_vectorized_opts(&det_plan, &catalog, par_opts(1))
                .expect("threads=1")
                .len()
        },
        5,
    );
    let t_par4 = median_secs(
        || {
            execute_vectorized_opts(&det_plan, &catalog, par_opts(4))
                .expect("threads=4")
                .len()
        },
        5,
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let t_au_row = median_secs(
        || execute_au(&au_plan, &catalog).expect("au row").rows().len(),
        3,
    );
    let t_au_vec = median_secs(
        || {
            execute_au_vectorized(&au_plan, &catalog)
                .expect("au vec")
                .len()
        },
        3,
    );
    // UA context: the σ+π fragment UA can run, on both engines.
    let ua_session = UaSession::new();
    {
        use ua_data::relation::Relation;
        use ua_semiring::pair::Ua;
        let rel: Relation<Ua<u64>> = Relation::from_annotated(
            det.schema().clone(),
            det.rows()
                .iter()
                .enumerate()
                .map(|(i, t)| (t.clone(), Ua::new(u64::from(i % 16 != 0), 1))),
        );
        ua_session.register_ua_relation("events_ua", &rel);
    }
    let ua_sql = "SELECT grp, val FROM events_ua WHERE val >= 500";
    let t_ua_row = median_secs(
        || {
            ua_session.set_exec_mode(ExecMode::Row);
            ua_session.query_ua(ua_sql).expect("ua row").table.len()
        },
        3,
    );
    let t_ua_vec = median_secs(
        || {
            ua_session.set_exec_mode(ExecMode::Vectorized);
            ua_session.query_ua(ua_sql).expect("ua vec").table.len()
        },
        3,
    );

    let speedup = t_det_row / t_det_vec;
    let au_speedup = t_au_row / t_au_vec;
    println!(
        "AGG_RANGES SPEEDUP (group-by over {N} rows, {GROUPS} groups): \
         det row {:.1} ms, det vectorized {:.1} ms => {:.1}x",
        t_det_row * 1e3,
        t_det_vec * 1e3,
        speedup
    );
    println!(
        "  parallel aggregation: threads=1 {:.1} ms vs threads=4 {:.1} ms \
         => {:.2}x (cores={cores})",
        t_par1 * 1e3,
        t_par4 * 1e3,
        t_par1 / t_par4
    );
    println!(
        "  AU aggregation (closed under ⟦·⟧_AU, rejected by ⟦·⟧_UA): \
         row {:.1} ms, vectorized {:.1} ms => {:.1}x \
         ({:.1}x the det vectorized time)",
        t_au_row * 1e3,
        t_au_vec * 1e3,
        au_speedup,
        t_au_vec / t_det_vec
    );
    println!(
        "  UA σ+π context: row {:.1} ms, vectorized {:.1} ms",
        t_ua_row * 1e3,
        t_ua_vec * 1e3
    );
    assert!(
        speedup >= 3.0,
        "vectorized grouped aggregation must be >= 3x over the row engine \
         at {N} rows, got {speedup:.1}x"
    );
    if cores >= 4 {
        let par_speedup = t_par1 / t_par4;
        assert!(
            par_speedup >= 2.0,
            "partitioned parallel aggregation must be >= 2x over threads=1 \
             on a {cores}-core host, got {par_speedup:.2}x \
             ({:.1} ms vs {:.1} ms)",
            t_par1 * 1e3,
            t_par4 * 1e3
        );
    }
    // The tentpole's pay-as-you-go gates: the batch-native AU path must
    // beat the row interpreter outright and stay within a bounded tax of
    // deterministic vectorized aggregation. The columnar `agg_bounds`
    // kernels (dense Int/Float lb/bg/ub triples fed straight from the
    // canonical chunks, no per-row `RangeValue` gather) brought the
    // median down from the ~13-18x the row-shaped `aggregate_prepared`
    // fold measured; 12x absorbs single-core container noise while
    // failing any regression back to the row-shaped path.
    assert!(
        au_speedup > 1.0,
        "AU vectorized aggregation must beat the AU row engine at {N} rows, \
         got row {:.1} ms vs vectorized {:.1} ms",
        t_au_row * 1e3,
        t_au_vec * 1e3
    );
    assert!(
        t_au_vec <= 12.0 * t_det_vec,
        "AU vectorized aggregation must stay within 12x of deterministic \
         vectorized aggregation, got {:.1} ms vs {:.1} ms ({:.1}x)",
        t_au_vec * 1e3,
        t_det_vec * 1e3,
        t_au_vec / t_det_vec
    );
    let fallbacks_after: Vec<u64> = fallback_counters
        .iter()
        .map(|c| ua_obs::global().counter(c).get())
        .collect();
    assert_eq!(
        fallbacks_before, fallbacks_after,
        "the benched AU plan must run batch-native (no au.vec.fallback.* bumps)"
    );

    let mut report = BenchReport::new("agg_ranges")
        .int("rows", N as u64)
        .int("groups", GROUPS as u64)
        .num("t_det_row_s", t_det_row)
        .num("t_det_vec_s", t_det_vec)
        .num("t_au_row_s", t_au_row)
        .num("t_au_vec_s", t_au_vec)
        .num("t_ua_select_row_s", t_ua_row)
        .num("t_ua_select_vec_s", t_ua_vec)
        .num("t_det_vec_threads1_s", t_par1)
        .num("t_det_vec_threads4_s", t_par4)
        .num("speedup_parallel_agg_threads4", t_par1 / t_par4)
        .int("cores", cores as u64)
        .num("speedup_det_vec_over_row", speedup)
        .num("speedup_au_vec_over_row", au_speedup)
        .num("au_vec_over_det_vec", t_au_vec / t_det_vec);
    // Operator breakdowns: deterministic aggregation on both engines plus
    // the AU vectorized run (its fallback counters show which stages still
    // route through the row interpreter).
    let stats_opts = ExecOptions {
        threads: 1,
        batch_rows: 0,
        collect_stats: true,
        collect_trace: false,
    };
    if let Ok((_, root)) = execute_with_stats(&det_plan, &catalog) {
        report = report.operator_stats(
            "det_row",
            QueryStats {
                engine: "row".into(),
                semantics: "det".into(),
                root,
                pool: None,
                peak_mem_bytes: 0,
            },
        );
    }
    if execute_vectorized_opts(&det_plan, &catalog, stats_opts).is_ok() {
        if let Some(stats) = ua_obs::take_last_query_stats() {
            report = report.operator_stats("det_vectorized", stats);
        }
    }
    if execute_au_vectorized_opts(&au_plan, &catalog, stats_opts).is_ok() {
        if let Some(stats) = ua_obs::take_last_query_stats() {
            report = report.operator_stats("au_vectorized", stats);
        }
    }
    // The parallel breakers' phase accounting: an instrumented threads=4
    // run surfaces the pool's build/merge phases (partitioned hash-join
    // build tasks, partition-merge wait) both as top-level fields and in
    // the embedded `operator_stats.det_vectorized_threads4.pool`.
    let par_stats_opts = ExecOptions {
        threads: 4,
        batch_rows: 0,
        collect_stats: true,
        collect_trace: false,
    };
    if execute_vectorized_opts(&det_plan, &catalog, par_stats_opts).is_ok() {
        if let Some(stats) = ua_obs::take_last_query_stats() {
            if let Some(pool) = &stats.pool {
                report = report
                    .int("pool_build_tasks", pool.build_tasks)
                    .int("pool_build_wall_ns", pool.build_wall_ns)
                    .int("pool_partition_merge_ns", pool.partition_merge_ns)
                    .int("pool_merge_ns", pool.merge_ns);
            }
            report = report.operator_stats("det_vectorized_threads4", stats);
        }
    }
    report.write();
}

criterion_group!(benches, bench_agg_ranges);
criterion_main!(benches);
