//! Per-operator and per-query memory accounting.
//!
//! [`MemTracker`] is the per-operator instrument: a stateful operator
//! (hash-join build table, aggregation map, sort/Top-K buffer, except
//! budget map, AU triple-column materialization) creates one, records the
//! **estimated logical bytes** of the state it holds as it builds, and
//! reports `peak()` as a `mem_bytes` span extra. Byte figures are
//! *estimates computed from row/value shape* — never from the allocator —
//! so they are deterministic across runs and safe for golden snapshots.
//!
//! Alongside the per-operator view, every `alloc`/`free` also feeds a
//! thread-local **query accumulator** ([`mem_query_start`] /
//! [`mem_query_finish`]): the running sum of live tracked state across
//! the operators of one query, whose high-water mark becomes
//! `QueryStats::peak_mem_bytes` and the `mem.query.peak_bytes` gauge.
//! Like all instrumentation in this crate it is off the result path —
//! inactive (and free) unless a session armed it for the current query.

use std::cell::Cell;

thread_local! {
    static QUERY_CURRENT: Cell<u64> = const { Cell::new(0) };
    static QUERY_PEAK: Cell<u64> = const { Cell::new(0) };
    static QUERY_ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Arm the thread-local query accumulator (resets current and peak).
pub fn mem_query_start() {
    QUERY_CURRENT.with(|c| c.set(0));
    QUERY_PEAK.with(|p| p.set(0));
    QUERY_ACTIVE.with(|a| a.set(true));
}

/// Whether a query accumulator is armed on this thread.
pub fn mem_query_active() -> bool {
    QUERY_ACTIVE.with(Cell::get)
}

/// Disarm the accumulator and return the query's peak tracked bytes
/// (`None` when it was not armed).
pub fn mem_query_finish() -> Option<u64> {
    if !mem_query_active() {
        return None;
    }
    QUERY_ACTIVE.with(|a| a.set(false));
    QUERY_CURRENT.with(|c| c.set(0));
    Some(QUERY_PEAK.with(Cell::get))
}

fn query_alloc(bytes: u64) {
    if !mem_query_active() {
        return;
    }
    QUERY_CURRENT.with(|c| {
        let now = c.get().saturating_add(bytes);
        c.set(now);
        QUERY_PEAK.with(|p| p.set(p.get().max(now)));
    });
}

fn query_free(bytes: u64) {
    if !mem_query_active() {
        return;
    }
    QUERY_CURRENT.with(|c| c.set(c.get().saturating_sub(bytes)));
}

/// Current/peak byte accounting for one stateful operator.
///
/// Not `Clone`: the `Drop` impl releases whatever is still tracked back
/// to the query accumulator, so each tracker owns its bytes exactly once
/// — an operator that drops its state mid-query (a probed-out hash table)
/// can also `free` explicitly to model the release point precisely.
#[derive(Debug, Default)]
pub struct MemTracker {
    current: u64,
    peak: u64,
}

impl MemTracker {
    /// A fresh tracker with nothing tracked.
    pub fn new() -> MemTracker {
        MemTracker::default()
    }

    /// Record `bytes` of newly held state.
    pub fn alloc(&mut self, bytes: u64) {
        self.current = self.current.saturating_add(bytes);
        self.peak = self.peak.max(self.current);
        query_alloc(bytes);
    }

    /// Record the release of `bytes` of held state.
    pub fn free(&mut self, bytes: u64) {
        let bytes = bytes.min(self.current);
        self.current -= bytes;
        query_free(bytes);
    }

    /// Bytes currently tracked.
    pub fn current(&self) -> u64 {
        self.current
    }

    /// High-water mark of tracked bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }
}

impl Drop for MemTracker {
    fn drop(&mut self) {
        query_free(self.current);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_tracks_current_and_peak() {
        let mut t = MemTracker::new();
        t.alloc(100);
        t.alloc(50);
        t.free(120);
        assert_eq!(t.current(), 30);
        assert_eq!(t.peak(), 150);
        t.free(1_000);
        assert_eq!(t.current(), 0, "free saturates at zero");
    }

    #[test]
    fn query_accumulator_tracks_concurrent_operators() {
        assert!(mem_query_finish().is_none(), "inactive by default");
        mem_query_start();
        let mut a = MemTracker::new();
        let mut b = MemTracker::new();
        a.alloc(100);
        b.alloc(200); // live sum 300
        drop(a); // releases its 100
        b.alloc(50); // live sum 250
        drop(b);
        assert_eq!(mem_query_finish(), Some(300));
        assert!(mem_query_finish().is_none(), "finish disarms");
    }

    #[test]
    fn inactive_accumulator_costs_nothing_and_tracks_nothing() {
        let mut t = MemTracker::new();
        t.alloc(42);
        drop(t);
        mem_query_start();
        assert_eq!(mem_query_finish(), Some(0));
    }
}
