//! Structured query-lifetime tracing.
//!
//! A per-thread ring buffer of begin/end/instant/span events covering one
//! query's lifetime (parse → plan → optimize → bind → per-morsel stage
//! execution → merge), exported as chrome://tracing / Perfetto-compatible
//! JSON ([`to_perfetto_json`]).
//!
//! The collector is **thread-local and lock-free by construction**: the
//! session thread owns the ring for the whole synchronous query, and
//! events produced on pool workers are recorded by the pool itself (the
//! rayon shim's task spans) and *injected* afterwards by the driver via
//! [`trace_span_at`] with an explicit synthetic thread id — no worker
//! ever touches the ring concurrently.
//!
//! Tracing lives off the result path: every function here is a no-op
//! until [`trace_start`] arms the thread-local state, and nothing an
//! executor produces reads trace state — results are byte-identical with
//! tracing on or off (the differential trace tests assert it).

use crate::json_string;
use std::cell::RefCell;
use std::time::Instant;

/// Maximum events one query's ring retains; later events are dropped and
/// counted (the export reports the drop count as a final instant event).
pub const TRACE_RING_CAPACITY: usize = 65_536;

/// The synthetic thread id of the session (query-dispatching) thread.
pub const TRACE_TID_SESSION: u64 = 0;

/// One trace event. `ph` follows the chrome://tracing event format:
/// `B`/`E` bracket a nested span on a thread, `i` is an instant, `X` is a
/// complete span with an explicit duration (used for injected pool task
/// spans, which arrive after the fact).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (phase or operator label, `morsel 3`, …).
    pub name: String,
    /// Category tag (`session`, `operator`, `pool`, …).
    pub cat: &'static str,
    /// Phase character: `B`, `E`, `i` or `X`.
    pub ph: char,
    /// Nanoseconds since the trace epoch ([`trace_start`]).
    pub ts_ns: u64,
    /// Span duration in nanoseconds (`X` events only; 0 otherwise).
    pub dur_ns: u64,
    /// Synthetic thread id: [`TRACE_TID_SESSION`] for the session thread,
    /// `1 + worker` for pool workers.
    pub tid: u64,
}

struct TraceState {
    epoch: Instant,
    ring: Vec<TraceEvent>,
    dropped: u64,
}

impl TraceState {
    fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < TRACE_RING_CAPACITY {
            self.ring.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

thread_local! {
    static TRACE: RefCell<Option<TraceState>> = const { RefCell::new(None) };
}

/// Arm tracing on this thread with a fresh ring and epoch. Returns `true`
/// if this call started the trace, `false` if one was already active (the
/// active trace keeps collecting; the caller must not finish it).
pub fn trace_start() -> bool {
    TRACE.with(|t| {
        let mut t = t.borrow_mut();
        if t.is_some() {
            return false;
        }
        *t = Some(TraceState {
            epoch: Instant::now(),
            ring: Vec::new(),
            dropped: 0,
        });
        true
    })
}

/// Whether a trace is being collected on this thread.
pub fn trace_active() -> bool {
    TRACE.with(|t| t.borrow().is_some())
}

fn emit(name: &str, cat: &'static str, ph: char, tid: u64, ts_ns: Option<u64>, dur_ns: u64) {
    TRACE.with(|t| {
        if let Some(st) = t.borrow_mut().as_mut() {
            let ts_ns = ts_ns.unwrap_or_else(|| {
                u64::try_from(st.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            });
            st.push(TraceEvent {
                name: name.to_string(),
                cat,
                ph,
                ts_ns,
                dur_ns,
                tid,
            });
        }
    });
}

/// Open a nested span on the session thread (no-op when tracing is off).
pub fn trace_begin(name: &str, cat: &'static str) {
    emit(name, cat, 'B', TRACE_TID_SESSION, None, 0);
}

/// Close the innermost open span on the session thread.
pub fn trace_end(name: &str, cat: &'static str) {
    emit(name, cat, 'E', TRACE_TID_SESSION, None, 0);
}

/// Record an instant event on the session thread.
pub fn trace_instant(name: &str, cat: &'static str) {
    emit(name, cat, 'i', TRACE_TID_SESSION, None, 0);
}

/// Run `f` inside a `B`/`E` span pair (emitted only while tracing).
pub fn trace_scope<T>(name: &str, cat: &'static str, f: impl FnOnce() -> T) -> T {
    trace_begin(name, cat);
    let out = f();
    trace_end(name, cat);
    out
}

/// Inject a complete (`X`) span with an explicit timestamp and thread id
/// — how pool task spans recorded by the rayon shim (against `Instant`s)
/// enter the session thread's ring after the parallel section joined.
pub fn trace_span_at(name: &str, cat: &'static str, tid: u64, ts_ns: u64, dur_ns: u64) {
    emit(name, cat, 'X', tid, Some(ts_ns), dur_ns);
}

/// Nanoseconds from the trace epoch to `at` (`None` when tracing is off
/// or `at` predates the epoch — callers clamp to 0 in that case).
pub fn trace_ns_of(at: Instant) -> Option<u64> {
    TRACE.with(|t| {
        t.borrow().as_ref().map(|st| {
            u64::try_from(at.saturating_duration_since(st.epoch).as_nanos()).unwrap_or(u64::MAX)
        })
    })
}

/// Disarm tracing on this thread and return the collected events (plus a
/// final `dropped` instant when the ring overflowed). `None` when no
/// trace was active.
pub fn trace_finish() -> Option<Vec<TraceEvent>> {
    TRACE.with(|t| {
        t.borrow_mut().take().map(|st| {
            let mut events = st.ring;
            if st.dropped > 0 {
                let ts_ns = events.last().map_or(0, |e| e.ts_ns);
                events.push(TraceEvent {
                    name: format!("trace ring overflow: {} events dropped", st.dropped),
                    cat: "trace",
                    ph: 'i',
                    ts_ns,
                    dur_ns: 0,
                    tid: TRACE_TID_SESSION,
                });
            }
            events
        })
    })
}

/// Render events as chrome://tracing / Perfetto "JSON Array Format":
/// `{"traceEvents": [...], "displayTimeUnit": "ns"}` with timestamps in
/// fractional microseconds (Perfetto's native `ts` unit).
pub fn to_perfetto_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!(
            "\"name\": {}, \"cat\": {}, \"ph\": \"{}\", \"ts\": {}.{:03}, \"pid\": 1, \"tid\": {}",
            json_string(&e.name),
            json_string(e.cat),
            e.ph,
            e.ts_ns / 1_000,
            e.ts_ns % 1_000,
            e.tid
        ));
        if e.ph == 'X' {
            out.push_str(&format!(
                ", \"dur\": {}.{:03}",
                e.dur_ns / 1_000,
                e.dur_ns % 1_000
            ));
        }
        if e.ph == 'i' {
            out.push_str(", \"s\": \"t\"");
        }
        out.push('}');
    }
    out.push_str("\n], \"displayTimeUnit\": \"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_until_started() {
        trace_begin("x", "t");
        trace_instant("y", "t");
        assert!(!trace_active());
        assert!(trace_finish().is_none());
    }

    #[test]
    fn collects_balanced_spans_and_exports() {
        assert!(trace_start());
        assert!(!trace_start(), "nested start must not re-arm");
        trace_scope("parse", "session", || ());
        trace_span_at("morsel 0", "pool", 1, 500, 1_500);
        let events = trace_finish().expect("active trace");
        assert!(trace_finish().is_none(), "finish disarms");
        assert_eq!(events.len(), 3);
        assert_eq!((events[0].ph, events[1].ph, events[2].ph), ('B', 'E', 'X'));
        assert!(events[0].ts_ns <= events[1].ts_ns, "monotonic per thread");
        let json = to_perfetto_json(&events);
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.contains("\"name\": \"parse\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 1.500"));
        assert!(json.contains("\"tid\": 1"));
    }

    #[test]
    fn ring_overflow_is_counted_not_grown() {
        assert!(trace_start());
        for _ in 0..TRACE_RING_CAPACITY + 5 {
            trace_instant("tick", "t");
        }
        let events = trace_finish().expect("active");
        assert_eq!(events.len(), TRACE_RING_CAPACITY + 1);
        assert!(events.last().unwrap().name.contains("5 events dropped"));
    }

    #[test]
    fn ns_of_maps_instants_onto_the_epoch() {
        assert!(trace_ns_of(Instant::now()).is_none(), "off → None");
        assert!(trace_start());
        let ns = trace_ns_of(Instant::now()).expect("active");
        let later = trace_ns_of(Instant::now()).expect("active");
        assert!(later >= ns);
        trace_finish();
    }
}
