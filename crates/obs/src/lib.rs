//! **ua-obs** — zero-dependency observability for the UA-DB workspace.
//!
//! Built in the offline-shim style (std only, no crates.io), this crate
//! provides the two layers the engines instrument themselves with:
//!
//! * a process-wide **metrics registry** ([`Registry`], [`global`]) of
//!   named [`Counter`]s, [`Gauge`]s and wall-clock [`Histogram`]s — the
//!   home of cross-query signals like the planner's join-misestimation
//!   counters and the AU executor's per-operator fallback counters;
//! * a per-query **span hierarchy** ([`OperatorStats`]) mirroring the
//!   executed plan tree, carrying rows/batches out, cumulative wall time,
//!   the planner's estimated cardinality next to the actual one, and
//!   free-form `extra` counters (hash-join build/probe split, fallback
//!   markers). [`QueryStats`] wraps the root span together with the
//!   morsel-pool stats ([`PoolStats`]) of a vectorized run.
//!
//! Everything exports to JSON by hand ([`QueryStats::to_json`],
//! [`Registry::to_json`]) — no serde in the workspace.
//!
//! Two further layers ride on the same contract:
//!
//! * **structured tracing** ([`trace`]): a per-thread ring buffer of
//!   begin/end/instant/span events over one query's lifetime, exported as
//!   chrome://tracing / Perfetto JSON ([`to_perfetto_json`]);
//! * **memory accounting** ([`mem`]): per-operator [`MemTracker`]s whose
//!   deterministic byte estimates surface as `mem_bytes` span extras and
//!   roll up into [`QueryStats::peak_mem_bytes`].
//!
//! ## Determinism
//!
//! Instrumentation lives **off the result path**: executors time and count
//! alongside the data they were already producing and deposit the finished
//! tree in a thread-local handoff slot ([`set_last_query_stats`] /
//! [`take_last_query_stats`]), so query *results* are byte-identical
//! whether collection is on or off — the differential tests assert it.
//! Only the stats themselves (wall times, worker attribution) vary run to
//! run; row counts and tree shape are deterministic.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

pub mod mem;
pub mod trace;

pub use mem::{mem_query_active, mem_query_finish, mem_query_start, MemTracker};
pub use trace::{
    to_perfetto_json, trace_active, trace_begin, trace_end, trace_finish, trace_instant,
    trace_ns_of, trace_scope, trace_span_at, trace_start, TraceEvent, TRACE_RING_CAPACITY,
    TRACE_TID_SESSION,
};

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A monotonically increasing counter handle (cheap to clone; all clones
/// share the same cell).
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets a [`Histogram`] tracks (bucket `i` counts
/// samples in `[2^i, 2^(i+1))`, with the first and last buckets open).
pub const HISTOGRAM_BUCKETS: usize = 40;

struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A histogram of `u64` samples (typically wall-clock nanoseconds) over
/// power-of-two buckets. Cheap to clone; clones share the same cells.
#[derive(Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        let idx = (64 - u64::leading_zeros(v.max(1)) as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Per-bucket counts (bucket `i` ≈ samples in `[2^i, 2^(i+1))`).
    pub fn buckets(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named registry of metrics. Handles returned by [`Registry::counter`]
/// etc. stay valid for the registry's lifetime; requesting the same name
/// twice returns handles to the same cell.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(), // name collision across kinds: detached handle
        }
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// Snapshot every metric as `(name, rendered value)` pairs, sorted by
    /// name (counters/gauges as plain numbers; histograms as
    /// `count/sum/max`).
    pub fn snapshot(&self) -> Vec<(String, String)> {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.iter()
            .map(|(name, metric)| {
                let rendered = match metric {
                    Metric::Counter(c) => c.get().to_string(),
                    Metric::Gauge(g) => g.get().to_string(),
                    Metric::Histogram(h) => {
                        format!("count={} sum={} max={}", h.count(), h.sum(), h.max())
                    }
                };
                (name.clone(), rendered)
            })
            .collect()
    }

    /// Export every metric as a JSON object keyed by metric name.
    pub fn to_json(&self) -> String {
        let m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        let mut first = true;
        for (name, metric) in m.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n  {}: ", json_string(name)));
            match metric {
                Metric::Counter(c) => out.push_str(&c.get().to_string()),
                Metric::Gauge(g) => out.push_str(&g.get().to_string()),
                Metric::Histogram(h) => out.push_str(&format!(
                    "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.1}}}",
                    h.count(),
                    h.sum(),
                    h.max(),
                    h.mean()
                )),
            }
        }
        out.push_str("\n}");
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry both engines report cross-query metrics to
/// (planner misestimation counters, AU fallback counters, …).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Per-query span hierarchy
// ---------------------------------------------------------------------------

/// One operator's execution stats — a node in the span hierarchy that
/// mirrors the executed plan (row engine) or pipeline structure
/// (vectorized engine). `wall_ns` is cumulative: it includes the node's
/// children, exactly like a profiler span.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Operator kind (`Scan`, `Filter`, `HashJoin`, …).
    pub name: String,
    /// Operator-local detail (predicate, keys, table name) without children.
    pub detail: String,
    /// Rows this operator produced.
    pub rows_out: u64,
    /// Column batches this operator produced (0 on the row engine).
    pub batches_out: u64,
    /// Cumulative wall-clock time, children included.
    pub wall_ns: u64,
    /// The planner's cardinality estimate for this node, when statistics
    /// could produce one (`optimize::estimate_rows`).
    pub est_rows: Option<u64>,
    /// Free-form named counters (`build_rows`, `probe_rows`, `fallback`…).
    pub extra: Vec<(String, u64)>,
    /// Child spans (operator inputs, hash-join build sides).
    pub children: Vec<OperatorStats>,
}

impl OperatorStats {
    /// A fresh span for operator `name` with rendering `detail`.
    pub fn new(name: impl Into<String>, detail: impl Into<String>) -> OperatorStats {
        OperatorStats {
            name: name.into(),
            detail: detail.into(),
            ..OperatorStats::default()
        }
    }

    /// Append a named counter to this span.
    pub fn push_extra(&mut self, key: impl Into<String>, value: u64) {
        self.extra.push((key.into(), value));
    }

    /// Wall time exclusive of children (saturating — clock skew between
    /// parent and child timers cannot underflow).
    pub fn self_ns(&self) -> u64 {
        self.wall_ns
            .saturating_sub(self.children.iter().map(|c| c.wall_ns).sum())
    }

    /// Depth-first walk over the tree (self first).
    pub fn walk<'a>(&'a self, f: &mut dyn FnMut(&'a OperatorStats)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Render the annotated plan tree, one operator per line:
    ///
    /// ```text
    /// HashJoin[e.dept=d.name; build=right] rows=4 est=4 time=1.2ms (build_rows=2)
    ///   Scan[dept] rows=2 est=2 time=0.1ms
    /// ```
    ///
    /// `include_time` off drops the `time=…` token and any `*_ns` extras
    /// (e.g. a hash join's `build_ns`), the form golden-snapshot tests
    /// compare — everything kept is deterministic.
    pub fn render(&self, include_time: bool) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, include_time);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, include_time: bool) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if !self.detail.is_empty() {
            out.push_str(&format!("[{}]", self.detail));
        }
        out.push_str(&format!(" rows={}", self.rows_out));
        match self.est_rows {
            Some(est) => out.push_str(&format!(" est={est}")),
            None => out.push_str(" est=?"),
        }
        if self.batches_out > 0 {
            out.push_str(&format!(" batches={}", self.batches_out));
        }
        if include_time {
            out.push_str(&format!(" time={}", fmt_ns(self.wall_ns)));
        }
        let extras: Vec<&(String, u64)> = self
            .extra
            .iter()
            .filter(|(k, _)| include_time || !k.ends_with("_ns"))
            .collect();
        if !extras.is_empty() {
            out.push_str(" (");
            for (i, (k, v)) in extras.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push(')');
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1, include_time);
        }
    }

    /// Export this span (and its subtree) as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"op\": {}, \"detail\": {}, \"rows\": {}, \"batches\": {}, \"wall_ns\": {}",
            json_string(&self.name),
            json_string(&self.detail),
            self.rows_out,
            self.batches_out,
            self.wall_ns
        ));
        if let Some(est) = self.est_rows {
            out.push_str(&format!(", \"est_rows\": {est}"));
        }
        for (k, v) in &self.extra {
            out.push_str(&format!(", {}: {v}", json_string(k)));
        }
        out.push_str(", \"children\": [");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// Morsel-pool stats of one vectorized query (mirrors the rayon shim's
/// per-pool instrumentation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured worker count.
    pub workers: u64,
    /// Morsels dispatched through the pool.
    pub tasks: u64,
    /// Morsels claimed out of contiguous order — the moments the shared
    /// injector rebalanced work onto an idle worker.
    pub stolen: u64,
    /// Wall time of the parallel sections.
    pub wall_ns: u64,
    /// Time spent in the deterministic batch-index merge after the workers
    /// joined.
    pub merge_ns: u64,
    /// Per-worker busy time (task execution only).
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker task counts.
    pub worker_tasks: Vec<u64>,
    /// Pipeline-breaker build tasks (hash-join partition builds,
    /// aggregation partition folds) — disjoint from `tasks`.
    pub build_tasks: u64,
    /// Wall time of the build-phase parallel sections.
    pub build_wall_ns: u64,
    /// Time spent merging per-partition breaker state in fixed partition
    /// order.
    pub partition_merge_ns: u64,
}

impl PoolStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"workers\": {}, \"tasks\": {}, \"stolen\": {}, \"wall_ns\": {}, \
             \"merge_ns\": {}, \"worker_busy_ns\": {:?}, \"worker_tasks\": {:?}, \
             \"build_tasks\": {}, \"build_wall_ns\": {}, \"partition_merge_ns\": {}}}",
            self.workers,
            self.tasks,
            self.stolen,
            self.wall_ns,
            self.merge_ns,
            self.worker_busy_ns,
            self.worker_tasks,
            self.build_tasks,
            self.build_wall_ns,
            self.partition_merge_ns
        )
    }
}

/// Everything one query's execution reported: which engine and semantics
/// ran, the operator span tree, and (vectorized runs) the morsel-pool
/// stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// `"row"` or `"vectorized"`.
    pub engine: String,
    /// `"det"`, `"ua"` or `"au"`.
    pub semantics: String,
    /// Root of the operator span tree.
    pub root: OperatorStats,
    /// Morsel-pool instrumentation (vectorized runs only).
    pub pool: Option<PoolStats>,
    /// High-water mark of tracked operator-state bytes across the query
    /// (the [`mem`] accumulator's peak) — 0 when memory accounting did not
    /// run or nothing stateful executed. Deterministic: byte figures are
    /// estimated from row/value shape, never read from the allocator.
    pub peak_mem_bytes: u64,
}

impl QueryStats {
    /// Render the annotated tree plus the memory and pool summaries.
    pub fn render(&self, include_time: bool) -> String {
        let mut out = self.root.render(include_time);
        if self.peak_mem_bytes > 0 {
            out.push_str(&format!(
                "memory: query peak={} bytes\n",
                self.peak_mem_bytes
            ));
        }
        if let Some(pool) = &self.pool {
            out.push_str(&format!(
                "morsel pool: workers={} tasks={} stolen={} build_tasks={}",
                pool.workers, pool.tasks, pool.stolen, pool.build_tasks
            ));
            if include_time {
                out.push_str(&format!(
                    " wall={} merge={} build_wall={} partition_merge={}",
                    fmt_ns(pool.wall_ns),
                    fmt_ns(pool.merge_ns),
                    fmt_ns(pool.build_wall_ns),
                    fmt_ns(pool.partition_merge_ns)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"engine\": {}, \"semantics\": {}, \"peak_mem_bytes\": {}, \"plan\": {}",
            json_string(&self.engine),
            json_string(&self.semantics),
            self.peak_mem_bytes,
            self.root.to_json()
        );
        if let Some(pool) = &self.pool {
            out.push_str(&format!(", \"pool\": {}", pool.to_json()));
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------------
// Thread-local handoff
// ---------------------------------------------------------------------------

thread_local! {
    static LAST_QUERY_STATS: RefCell<Option<QueryStats>> = const { RefCell::new(None) };
}

/// Deposit a finished query's stats for the caller on this thread (query
/// execution is synchronous, so the session that dispatched the query
/// collects from the same thread). Executors call this; sessions call
/// [`take_last_query_stats`].
pub fn set_last_query_stats(stats: QueryStats) {
    LAST_QUERY_STATS.with(|s| *s.borrow_mut() = Some(stats));
}

/// Take (and clear) the stats deposited by the last instrumented execution
/// on this thread.
pub fn take_last_query_stats() -> Option<QueryStats> {
    LAST_QUERY_STATS.with(|s| s.borrow_mut().take())
}

// ---------------------------------------------------------------------------
// Small shared helpers
// ---------------------------------------------------------------------------

/// A started wall-clock span timer.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Nanoseconds since start (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// Human-readable duration (`…ns`, `…µs`, `…ms`, `…s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Escape `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(-5);
        assert_eq!(r.gauge("g").get(), -5);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(1);
        h.record(1_000);
        h.record(1_000_000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_001_001);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.buckets().iter().sum::<u64>(), 3);
    }

    #[test]
    fn registry_json_is_well_formed_ish() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.histogram("h").record(7);
        let json = r.to_json();
        assert!(json.contains("\"a.b\": 1"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn span_tree_renders_and_exports() {
        let mut scan = OperatorStats::new("Scan", "emp");
        scan.rows_out = 4;
        scan.est_rows = Some(4);
        let mut filter = OperatorStats::new("Filter", "(salary >= 80)");
        filter.rows_out = 2;
        filter.est_rows = Some(1);
        filter.wall_ns = 1500;
        filter.push_extra("evals", 4);
        filter.children.push(scan);
        let text = filter.render(false);
        assert_eq!(
            text,
            "Filter[(salary >= 80)] rows=2 est=1 (evals=4)\n  Scan[emp] rows=4 est=4\n"
        );
        let timed = filter.render(true);
        assert!(timed.contains("time="));
        let json = filter.to_json();
        assert!(json.contains("\"op\": \"Filter\""));
        assert!(json.contains("\"children\": [{\"op\": \"Scan\""));
        assert!(json.contains("\"evals\": 4"));
    }

    #[test]
    fn self_ns_subtracts_children() {
        let mut parent = OperatorStats::new("Sort", "");
        parent.wall_ns = 100;
        let mut child = OperatorStats::new("Scan", "t");
        child.wall_ns = 30;
        parent.children.push(child);
        assert_eq!(parent.self_ns(), 70);
    }

    #[test]
    fn handoff_slot_roundtrip() {
        assert!(take_last_query_stats().is_none());
        set_last_query_stats(QueryStats {
            engine: "row".into(),
            semantics: "det".into(),
            root: OperatorStats::new("Scan", "t"),
            ..QueryStats::default()
        });
        let got = take_last_query_stats().expect("deposited");
        assert_eq!(got.engine, "row");
        assert!(take_last_query_stats().is_none(), "take clears");
    }

    #[test]
    fn query_stats_json_includes_pool() {
        let stats = QueryStats {
            engine: "vectorized".into(),
            semantics: "ua".into(),
            root: OperatorStats::new("Scan", "t"),
            pool: Some(PoolStats {
                workers: 4,
                tasks: 16,
                stolen: 3,
                wall_ns: 1000,
                merge_ns: 10,
                worker_busy_ns: vec![1, 2, 3, 4],
                worker_tasks: vec![4, 4, 4, 4],
                build_tasks: 2,
                build_wall_ns: 200,
                partition_merge_ns: 5,
            }),
            peak_mem_bytes: 4096,
        };
        let json = stats.to_json();
        assert!(json.contains("\"peak_mem_bytes\": 4096"));
        assert!(json.contains("\"pool\": {\"workers\": 4"));
        assert!(json.contains("\"stolen\": 3"));
        assert!(json.contains("\"build_tasks\": 2"));
        assert!(json.contains("\"partition_merge_ns\": 5"));
        let text = stats.render(true);
        assert!(text.contains("memory: query peak=4096 bytes"));
        assert!(text.contains("morsel pool: workers=4 tasks=16 stolen=3"));
        assert!(text.contains("build_tasks=2"));
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_100_000_000), "3.10s");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
