//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (guards are recovered from poisoned locks instead of propagating panics),
//! which is the only part of the real crate this workspace relies on.

#![deny(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutual-exclusion lock whose accessor never returns poison errors.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn default_is_available() {
        let lock: RwLock<Vec<i32>> = RwLock::default();
        assert!(lock.read().is_empty());
    }
}
