//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! (small) subset of the real `rand` 0.8 API that the workspace uses:
//! [`Rng`] with `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (a xoshiro256** generator seeded via splitmix64), and
//! [`seq::SliceRandom`] with `choose`/`shuffle`. Everything is deterministic
//! for a given seed, which is all the seeded experiment generators need.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods (blanket-implemented for every
/// [`RngCore`], mirroring the real crate's design).
pub trait Rng: RngCore {
    /// A random value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full RNG state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types with a canonical "standard" distribution (`Rng::gen`).
pub trait Standard {
    /// Draw one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// Ranges that can produce a uniform sample (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly chosen element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let y = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = vec![1, 2, 3, 4, 5, 6, 7, 8];
        ys.shuffle(&mut rng);
        let mut sorted = ys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn generic_rng_param_accepts_mut_ref() {
        fn takes_impl(rng: &mut impl Rng) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(takes_impl(&mut rng) < 10);
    }
}
