//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API that the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map`,
//! `prop_recursive` and `boxed`; range/tuple/`Just`/`collection::vec`
//! strategies; `prop_oneof!`; and the [`proptest!`] macro with
//! `ProptestConfig::with_cases`. Generation is seeded deterministically per
//! test case (no shrinking — failures report the values via panic messages,
//! which is enough for a reproduction codebase with fixed seeds).

#![deny(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a recursive strategy: `f` receives the strategy for the
        /// smaller structure and returns the strategy for the bigger one;
        /// recursion is unrolled `depth` times (leaves at the bottom).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = f(current).boxed();
            }
            current
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, runner: &mut TestRunner) -> V {
            self.0.generate(runner)
        }
    }

    /// The `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union of the given alternatives (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, runner: &mut TestRunner) -> V {
            let i = runner.below(self.arms.len());
            self.arms[i].generate(runner)
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (runner.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, runner: &mut TestRunner) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = (runner.next_u64() as u128) % span;
                    (lo as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod test_runner {
    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generation state for one test case.
    pub struct TestRunner {
        rng: rand::rngs::StdRng,
    }

    impl TestRunner {
        /// A runner seeded from the test's name and case index, so every run
        /// of the suite explores the same inputs.
        pub fn deterministic_for(test_name: &str, case: u64) -> TestRunner {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
            use rand::SeedableRng;
            TestRunner {
                rng: rand::rngs::StdRng::seed_from_u64(
                    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.rng.next_u64()
        }

        /// A uniform index in `0..n`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use std::ops::{Range, RangeInclusive};

    /// Admissible size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec`s whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + runner.below(span);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Strategy for uniform booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assertion inside a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each function runs `config.cases` times over
/// freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..u64::from(config.cases) {
                    let mut __runner = $crate::test_runner::TestRunner::deterministic_for(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __runner);)+
                    $body
                }
            }
        )*
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_tree() -> impl Strategy<Value = usize> {
        // Leaves are 0..4; each recursion level may double.
        (0usize..4).prop_recursive(2, 8, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| a + b),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..5, y in 0usize..3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i64..10, 1..=4)) {
            prop_assert!((1..=4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }

        #[test]
        fn oneof_and_map(b in crate::bool::ANY, t in small_tree()) {
            let _ = b;
            prop_assert!(t <= 4 * 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let s = crate::collection::vec(0i64..100, 3..=3);
        let a = s.generate(&mut TestRunner::deterministic_for("t", 1));
        let b = s.generate(&mut TestRunner::deterministic_for("t", 1));
        assert_eq!(a, b);
    }
}
