//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — backed by a small but real
//! measuring harness: per benchmark it warms up, auto-scales the iteration
//! count to a target sample duration, takes `sample_size` samples, and
//! reports the median / mean / min per-iteration time to stdout.

#![deny(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare id without a parameter component.
    pub fn from_name(name: impl Into<String>) -> BenchmarkId {
        BenchmarkId { id: name.into() }
    }
}

/// Things accepted as benchmark ids (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_name(self)
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::from_name(self)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`, auto-scaling iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes ≥ ~2ms.
        let mut iters: u64 = 1;
        let calibration = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters *= 4;
        };
        let _ = calibration;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<60} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        println!(
            "{label:<60} median {:>12} mean {:>12} min {:>12}",
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min)
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Finish the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        b.report(id);
        self
    }
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; a bench-only
            // shim can ignore every argument except `--test`, which asks for
            // a smoke run (still fine to execute: benches are fast here).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("sum", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        group.bench_with_input("sum_input", &200u64, |b, &n| b.iter(|| (0..n).sum::<u64>()));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
