//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate exposes the
//! small API subset the workspace's morsel-driven pipelines use: a
//! [`ThreadPoolBuilder`]/[`ThreadPool`] pair and an order-preserving
//! parallel map ([`ThreadPool::map_in_order`]).
//!
//! Work distribution is a single shared injector queue (an atomic cursor
//! over the item list) drained by scoped worker threads — idle workers
//! "steal" the next unclaimed item, so load balances like rayon's deque
//! stealing for the coarse, similarly-sized morsels this workspace feeds
//! it. Results are reassembled **by item index**, which is what makes the
//! parallel output of a deterministic per-item function byte-identical to
//! a serial run — the determinism contract `ua-vecexec`'s differential
//! tests assert.

#![deny(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One executed task, timestamped with the wall clock. Recorded only when
/// span recording is on ([`ThreadPool::set_spans_recorded`]); callers map
/// the `Instant`s onto their own trace epoch (this shim mirrors the real
/// `rayon` API and takes no workspace dependencies).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSpan {
    /// Worker that executed the task.
    pub worker: usize,
    /// Item index within the `map_in_order`/`map_build` call.
    pub index: usize,
    /// `true` when the task ran under [`ThreadPool::map_build`].
    pub build: bool,
    /// When the task started executing.
    pub start: Instant,
    /// When the task finished.
    pub end: Instant,
}

/// Instrumentation accumulated across [`ThreadPool::map_in_order`] calls
/// while the pool is instrumented ([`ThreadPool::set_instrumented`]).
/// Self-contained (this shim mirrors the real `rayon` API and takes no
/// workspace dependencies); callers convert it to their own stats types.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Configured worker count.
    pub workers: usize,
    /// Morsels dispatched.
    pub tasks: u64,
    /// Tasks claimed out of a contiguous run: index-order transitions
    /// between claiming workers beyond the `used_workers - 1` a perfectly
    /// chunked schedule would show. A proxy for work-stealing churn — 0
    /// when every worker drains a contiguous range.
    pub stolen: u64,
    /// Wall-clock time inside `map_in_order` (all calls summed).
    pub wall_ns: u64,
    /// Time spent in the deterministic index-order merge of results.
    pub merge_ns: u64,
    /// Per-worker time spent executing tasks.
    pub worker_busy_ns: Vec<u64>,
    /// Per-worker tasks executed.
    pub worker_tasks: Vec<u64>,
    /// Tasks dispatched by [`ThreadPool::map_build`] (pipeline-breaker
    /// build phases: hash-join partition builds, aggregation partition
    /// folds). Disjoint from `tasks`.
    pub build_tasks: u64,
    /// Wall-clock time inside `map_build` (all calls summed).
    pub build_wall_ns: u64,
    /// Time callers spent merging per-partition pipeline-breaker state in
    /// fixed partition order ([`ThreadPool::note_partition_merge`]).
    pub partition_merge_ns: u64,
    /// Per-task execution spans, in item-index order per call. Empty
    /// unless span recording is on ([`ThreadPool::set_spans_recorded`]).
    pub spans: Vec<TaskSpan>,
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (the shim never fails; the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder (0 threads = use available parallelism).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the number of worker threads; `0` resolves to the machine's
    /// available parallelism at build time.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            num_threads: n,
            instrument: AtomicBool::new(false),
            record_spans: AtomicBool::new(false),
            metrics: Mutex::new(PoolMetrics::default()),
        })
    }
}

/// A pool of `num_threads` workers. Threads are scoped per call (spawned on
/// demand, joined before returning), which keeps the shim `unsafe`-free and
/// leak-proof; for the coarse batch morsels this workspace processes, the
/// per-call spawn cost is noise.
pub struct ThreadPool {
    num_threads: usize,
    /// Off by default: instrumentation costs two clock reads per task.
    instrument: AtomicBool,
    /// Off by default: span recording additionally retains two `Instant`s
    /// per task. Only consulted while instrumented.
    record_spans: AtomicBool,
    metrics: Mutex<PoolMetrics>,
}

impl ThreadPool {
    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Turn per-task instrumentation on or off (off by default). The
    /// setting is read once per [`ThreadPool::map_in_order`] call; it never
    /// affects results, only whether [`ThreadPool::take_metrics`] has
    /// anything to report.
    pub fn set_instrumented(&self, on: bool) {
        self.instrument.store(on, Ordering::Relaxed);
    }

    /// Whether per-task instrumentation is currently on. Callers that
    /// time their own pipeline-breaker merges
    /// ([`ThreadPool::note_partition_merge`]) consult this to skip the
    /// clock reads when nobody is collecting.
    pub fn instrumented(&self) -> bool {
        self.instrument.load(Ordering::Relaxed)
    }

    /// Turn per-task span recording on or off (off by default). Spans are
    /// only collected while the pool is *also* instrumented
    /// ([`ThreadPool::set_instrumented`]); they feed trace export and, like
    /// all instrumentation here, never affect results.
    pub fn set_spans_recorded(&self, on: bool) {
        self.record_spans.store(on, Ordering::Relaxed);
    }

    /// Whether per-task span recording is currently on.
    pub fn spans_recorded(&self) -> bool {
        self.record_spans.load(Ordering::Relaxed)
    }

    /// Snapshot the accumulated [`PoolMetrics`] and reset them to zero.
    pub fn take_metrics(&self) -> PoolMetrics {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut m)
    }

    /// Drain only the recorded task spans, leaving the numeric metrics
    /// accumulating — trace export consumes spans independently of the
    /// stats snapshot.
    pub fn take_spans(&self) -> Vec<TaskSpan> {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut m.spans)
    }

    /// Account `ns` of caller-side partition-merge time (the fixed-order
    /// fold of per-partition pipeline-breaker state). No-op unless
    /// instrumented.
    pub fn note_partition_merge(&self, ns: u64) {
        if self.instrumented() {
            let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
            m.partition_merge_ns += ns;
        }
    }

    /// Run `f` "inside" the pool (compatibility shim — the closure simply
    /// runs on the calling thread; parallelism comes from
    /// [`ThreadPool::map_in_order`]).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Apply `f` to every item concurrently and return the results **in
    /// item order** — `map_in_order(v, f)[i] == f(i, v[i])` regardless of
    /// thread count or scheduling. Panics in `f` propagate to the caller.
    pub fn map_in_order<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_phase(items, f, false)
    }

    /// [`ThreadPool::map_in_order`] accounted to the *build* phase —
    /// pipeline-breaker work (hash-join partition builds, aggregation
    /// partition folds) lands in `build_tasks`/`build_wall_ns` so stats
    /// separate streaming morsels from breaker construction. Semantics are
    /// otherwise identical.
    pub fn map_build<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_phase(items, f, true)
    }

    fn map_phase<T, R, F>(&self, items: Vec<T>, f: F, build: bool) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let instrument = self.instrument.load(Ordering::Relaxed);
        let record_spans = instrument && self.record_spans.load(Ordering::Relaxed);
        let wall = if instrument {
            Some(Instant::now())
        } else {
            None
        };
        let threads = self.num_threads.min(n);
        if threads <= 1 {
            let mut spans: Vec<TaskSpan> = Vec::new();
            let out: Vec<R> = items
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    if record_spans {
                        let start = Instant::now();
                        let r = f(i, t);
                        spans.push(TaskSpan {
                            worker: 0,
                            index: i,
                            build,
                            start,
                            end: Instant::now(),
                        });
                        r
                    } else {
                        f(i, t)
                    }
                })
                .collect();
            if let Some(start) = wall {
                let ns = start.elapsed().as_nanos() as u64;
                self.record(n as u64, 0, ns, 0, &[(0, ns, n as u64)], spans, build);
            }
            return out;
        }
        // Shared injector: each slot is claimed exactly once via the atomic
        // cursor; the mutex per slot only hands the owned item across the
        // thread boundary (never contended — the cursor serializes claims).
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, usize, R)>> = Mutex::new(Vec::with_capacity(n));
        let worker_stats: Mutex<Vec<(usize, u64, u64)>> = Mutex::new(Vec::new());
        let task_spans: Mutex<Vec<TaskSpan>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for w in 0..threads {
                let (f, slots, cursor, collected, worker_stats, task_spans) =
                    (&f, &slots, &cursor, &collected, &worker_stats, &task_spans);
                scope.spawn(move || {
                    let mut local: Vec<(usize, usize, R)> = Vec::new();
                    let mut local_spans: Vec<TaskSpan> = Vec::new();
                    let mut busy_ns = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("slot claimed once");
                        let task_start = if instrument {
                            Some(Instant::now())
                        } else {
                            None
                        };
                        local.push((i, w, f(i, item)));
                        if let Some(start) = task_start {
                            busy_ns += start.elapsed().as_nanos() as u64;
                            if record_spans {
                                local_spans.push(TaskSpan {
                                    worker: w,
                                    index: i,
                                    build,
                                    start,
                                    end: Instant::now(),
                                });
                            }
                        }
                    }
                    if instrument {
                        worker_stats
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push((w, busy_ns, local.len() as u64));
                    }
                    if !local_spans.is_empty() {
                        task_spans
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .extend(local_spans);
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                });
            }
        });
        // Deterministic merge: scatter by index, then read out in order.
        let merge_start = if instrument {
            Some(Instant::now())
        } else {
            None
        };
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        let mut owner: Vec<usize> = vec![0; n];
        for (i, w, r) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            owner[i] = w;
            out[i] = Some(r);
        }
        let out: Vec<R> = out
            .into_iter()
            .map(|r| r.expect("every index produced"))
            .collect();
        if let (Some(wall_start), Some(merge_start)) = (wall, merge_start) {
            let merge_ns = merge_start.elapsed().as_nanos() as u64;
            let per_worker = worker_stats.into_inner().unwrap_or_else(|e| e.into_inner());
            // "Stolen" = claims breaking a contiguous run: index-order
            // owner transitions beyond the used_workers - 1 a perfectly
            // chunked schedule would produce.
            let used = per_worker.iter().filter(|(_, _, t)| *t > 0).count() as u64;
            let transitions = owner.windows(2).filter(|w| w[0] != w[1]).count() as u64;
            let stolen = transitions.saturating_sub(used.saturating_sub(1));
            let mut spans = task_spans.into_inner().unwrap_or_else(|e| e.into_inner());
            spans.sort_by_key(|s| s.index);
            self.record(
                n as u64,
                stolen,
                wall_start.elapsed().as_nanos() as u64,
                merge_ns,
                &per_worker,
                spans,
                build,
            );
        }
        out
    }

    /// Fold one instrumented `map_in_order` call into the accumulated
    /// metrics.
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        tasks: u64,
        stolen: u64,
        wall_ns: u64,
        merge_ns: u64,
        per_worker: &[(usize, u64, u64)],
        spans: Vec<TaskSpan>,
        build: bool,
    ) {
        let mut m = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        m.workers = self.num_threads;
        if build {
            m.build_tasks += tasks;
            m.build_wall_ns += wall_ns;
        } else {
            m.tasks += tasks;
            m.wall_ns += wall_ns;
        }
        m.stolen += stolen;
        m.merge_ns += merge_ns;
        if m.worker_busy_ns.len() < self.num_threads {
            m.worker_busy_ns.resize(self.num_threads, 0);
            m.worker_tasks.resize(self.num_threads, 0);
        }
        for &(w, busy, t) in per_worker {
            m.worker_busy_ns[w] += busy;
            m.worker_tasks[w] += t;
        }
        m.spans.extend(spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = pool(threads).map_in_order(items.clone(), |_, x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let got = pool(4).map_in_order(vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(pool(8).map_in_order(empty, |_, x| x).is_empty());
        assert_eq!(pool(8).map_in_order(vec![5], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
        assert_eq!(p.install(|| 42), 42);
    }

    #[test]
    fn instrumented_pool_accumulates_metrics_without_changing_results() {
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items.iter().map(|x| x + 1).collect();
        for threads in [1, 4] {
            let p = pool(threads);
            p.set_instrumented(true);
            let got = p.map_in_order(items.clone(), |_, x| x + 1);
            assert_eq!(got, expected, "threads={threads}");
            let m = p.take_metrics();
            assert_eq!(m.workers, threads);
            assert_eq!(m.tasks, 64);
            assert_eq!(m.worker_tasks.iter().sum::<u64>(), 64);
            assert_eq!(m.worker_tasks.len(), threads);
            // take_metrics resets.
            assert_eq!(p.take_metrics(), PoolMetrics::default());
            // Uninstrumented calls leave the metrics untouched.
            p.set_instrumented(false);
            p.map_in_order(items.clone(), |_, x| x + 1);
            assert_eq!(p.take_metrics(), PoolMetrics::default());
        }
    }

    #[test]
    fn build_phase_accounts_separately_from_morsels() {
        for threads in [1, 4] {
            let p = pool(threads);
            p.set_instrumented(true);
            assert!(p.instrumented());
            let got = p.map_build((0..32).collect::<Vec<u64>>(), |_, x| x * 2);
            assert_eq!(got, (0..32).map(|x| x * 2).collect::<Vec<u64>>());
            p.map_in_order((0..8).collect::<Vec<u64>>(), |_, x| x);
            p.note_partition_merge(17);
            let m = p.take_metrics();
            assert_eq!(m.build_tasks, 32, "threads={threads}");
            assert_eq!(m.tasks, 8, "threads={threads}");
            assert_eq!(m.partition_merge_ns, 17);
            assert_eq!(m.worker_tasks.iter().sum::<u64>(), 40);
            // note_partition_merge is a no-op when uninstrumented.
            p.set_instrumented(false);
            p.note_partition_merge(5);
            assert_eq!(p.take_metrics(), PoolMetrics::default());
        }
    }

    #[test]
    fn span_recording_captures_every_task_in_index_order() {
        for threads in [1, 4] {
            let p = pool(threads);
            p.set_instrumented(true);
            p.set_spans_recorded(true);
            assert!(p.spans_recorded());
            let got = p.map_in_order((0..16).collect::<Vec<u64>>(), |_, x| x + 1);
            assert_eq!(got, (1..=16).collect::<Vec<u64>>());
            p.map_build((0..4).collect::<Vec<u64>>(), |_, x| x);
            let m = p.take_metrics();
            assert_eq!(m.spans.len(), 20, "threads={threads}");
            let morsels: Vec<usize> = m
                .spans
                .iter()
                .filter(|s| !s.build)
                .map(|s| s.index)
                .collect();
            assert_eq!(morsels, (0..16).collect::<Vec<usize>>(), "index order");
            assert_eq!(m.spans.iter().filter(|s| s.build).count(), 4);
            for s in &m.spans {
                assert!(s.end >= s.start);
                assert!(s.worker < threads);
            }
            // Spans need instrumentation: recording alone collects nothing.
            p.set_instrumented(false);
            p.map_in_order(vec![1u64], |_, x| x);
            assert!(p.take_metrics().spans.is_empty());
        }
    }

    #[test]
    fn owned_non_clone_items_move_through() {
        struct NoClone(u32);
        let items = (0..100).map(NoClone).collect::<Vec<_>>();
        let got = pool(5).map_in_order(items, |_, NoClone(x)| x);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
