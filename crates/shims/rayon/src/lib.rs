//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate exposes the
//! small API subset the workspace's morsel-driven pipelines use: a
//! [`ThreadPoolBuilder`]/[`ThreadPool`] pair and an order-preserving
//! parallel map ([`ThreadPool::map_in_order`]).
//!
//! Work distribution is a single shared injector queue (an atomic cursor
//! over the item list) drained by scoped worker threads — idle workers
//! "steal" the next unclaimed item, so load balances like rayon's deque
//! stealing for the coarse, similarly-sized morsels this workspace feeds
//! it. Results are reassembled **by item index**, which is what makes the
//! parallel output of a deterministic per-item function byte-identical to
//! a serial run — the determinism contract `ua-vecexec`'s differential
//! tests assert.

#![deny(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type of [`ThreadPoolBuilder::build`] (the shim never fails; the
/// type exists for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A fresh builder (0 threads = use available parallelism).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Set the number of worker threads; `0` resolves to the machine's
    /// available parallelism at build time.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A pool of `num_threads` workers. Threads are scoped per call (spawned on
/// demand, joined before returning), which keeps the shim `unsafe`-free and
/// leak-proof; for the coarse batch morsels this workspace processes, the
/// per-call spawn cost is noise.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `f` "inside" the pool (compatibility shim — the closure simply
    /// runs on the calling thread; parallelism comes from
    /// [`ThreadPool::map_in_order`]).
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }

    /// Apply `f` to every item concurrently and return the results **in
    /// item order** — `map_in_order(v, f)[i] == f(i, v[i])` regardless of
    /// thread count or scheduling. Panics in `f` propagate to the caller.
    pub fn map_in_order<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let threads = self.num_threads.min(n);
        if threads <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }
        // Shared injector: each slot is claimed exactly once via the atomic
        // cursor; the mutex per slot only hands the owned item across the
        // thread boundary (never contended — the cursor serializes claims).
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .take()
                            .expect("slot claimed once");
                        local.push((i, f(i, item)));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                });
            }
        });
        // Deterministic merge: scatter by index, then read out in order.
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index produced"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn map_preserves_order_for_every_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = pool(threads).map_in_order(items.clone(), |_, x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let got = pool(4).map_in_order(vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(pool(8).map_in_order(empty, |_, x| x).is_empty());
        assert_eq!(pool(8).map_in_order(vec![5], |_, x| x + 1), vec![6]);
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let p = ThreadPoolBuilder::new().build().unwrap();
        assert!(p.current_num_threads() >= 1);
        assert_eq!(p.install(|| 42), 42);
    }

    #[test]
    fn owned_non_clone_items_move_through() {
        struct NoClone(u32);
        let items = (0..100).map(NoClone).collect::<Vec<_>>();
        let got = pool(5).map_in_order(items, |_, NoClone(x)| x);
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
