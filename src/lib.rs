//! # UA-DB: Uncertainty Annotated Databases
//!
//! A from-scratch Rust reproduction of *"Uncertainty Annotated Databases —
//! A Lightweight Approach for Approximating Certain Answers"* (Feng, Huber,
//! Glavic, Kennedy; SIGMOD 2019).
//!
//! A **UA-DB** runs queries over one *best-guess world* — exactly like the
//! database you already have — while labeling every tuple `certain` or
//! `uncertain` such that the real certain answers are *sandwiched*:
//!
//! ```text
//! labeled certain  ⊆  certain answers  ⊆  returned answers
//! ```
//!
//! The sandwich survives every positive relational algebra query
//! (selection, projection, join, union), at a few percent overhead over
//! deterministic execution.
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`semiring`] | commutative semirings, natural orders, `K²`, `K^W` |
//! | [`data`] | values, tuples, expressions, K-relations, `RA⁺` |
//! | [`conditions`] | C-table conditions, CNF, the exact solver, probabilities |
//! | [`incomplete`] | possible worlds, `K^W`-databases, labelings |
//! | [`models`] | TI-DBs, x-DBs/BI-DBs, C-tables + labeling schemes |
//! | [`core`] | **UA-DBs**: pair annotations, `Enc`, the `⟦·⟧_UA` rewriting |
//! | [`engine`] | row-store executor, SQL frontend, UA middleware, [`engine::ExecMode`] |
//! | [`vecexec`] | batch-oriented columnar executor with UA label bitmaps, morsel-parallel pipelines and columnar Sort/Top-K |
//! | [`obs`] | metrics registry, per-operator [`obs::OperatorStats`] spans, `EXPLAIN ANALYZE` plumbing |
//! | [`baselines`] | Libkin, MayBMS-style, MCDB-style comparison systems |
//! | [`datagen`] | seeded workload generators for every experiment |
//!
//! ## Choosing an executor
//!
//! Both executors run the same plans and produce identical results (the
//! `ua-vecexec` differential tests enforce label-for-label equality). The
//! row executor is the default; opt into the columnar one per session:
//!
//! ```
//! uadb::vecexec::install(); // one-time process-wide registration
//! let session = uadb::engine::UaSession::new();
//! session.set_exec_mode(uadb::engine::ExecMode::Vectorized);
//! ```
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` (the paper's geocoder example), or:
//!
//! ```
//! use uadb::engine::{Table, UaSession};
//! use uadb::data::{tuple, Schema};
//!
//! let session = UaSession::new();
//! session.register_table("addr", Table::from_rows(
//!     Schema::qualified("addr", ["xid", "aid", "p", "id", "locale"]),
//!     vec![
//!         tuple![1i64, 1i64, 1.0, 1i64, "Lasalle"],
//!         tuple![2i64, 1i64, 0.6, 2i64, "Tucson"],
//!         tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry"],
//!     ],
//! ));
//! let result = session.query_ua(
//!     "SELECT id, locale FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p)",
//! ).unwrap();
//! for (row, certain) in result.rows_with_certainty() {
//!     println!("{row} certain={certain}");
//! }
//! ```

#![deny(unsafe_code)]

pub use ua_baselines as baselines;
pub use ua_conditions as conditions;
pub use ua_core as core;
pub use ua_data as data;
pub use ua_datagen as datagen;
pub use ua_engine as engine;
pub use ua_incomplete as incomplete;
pub use ua_models as models;
pub use ua_obs as obs;
pub use ua_ranges as ranges;
pub use ua_semiring as semiring;
pub use ua_vecexec as vecexec;
