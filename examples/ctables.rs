//! C-tables end-to-end: symbolic query evaluation, the PTIME labeling, and
//! the exact certain-answer check (paper Sections 4.1 and 11.1).
//!
//! Reproduces the paper's Example 9 — the tuple the cheap labeling *must*
//! miss — and shows the exact solver recovering it.
//!
//! Run with `cargo run --example ctables`.

use uadb::conditions::{Atom, Condition, Solver};
use uadb::core::UaDb;
use uadb::data::expr::CmpOp;
use uadb::data::{tuple, Expr, RaExpr, Schema, Tuple, Value, VarId};
use uadb::models::{certain_answers, CDb, CTable, CTuple};

fn main() {
    let x = VarId(0);

    // Paper Example 9:
    //   t1 = (1, X) with φ(t1) = (X = 1)
    //   t2 = (1, 1) with φ(t2) = (X ≠ 1)
    let mut t = CTable::new(Schema::qualified("r", ["a", "b"]));
    t.push(CTuple::new(
        Tuple::new(vec![Value::Int(1), Value::Var(x)]),
        Condition::var_eq(x, 1i64),
    ));
    t.push(CTuple::new(
        tuple![1i64, 1i64],
        Condition::Atom(Atom::var_const(x, CmpOp::Ne, 1i64)),
    ));
    let mut cdb = CDb::new();
    cdb.insert("r", t);

    println!("C-table r (paper Example 9):");
    for row in cdb.get("r").expect("r").tuples() {
        println!("  {}  when  {}", row.values, row.condition);
    }

    // The PTIME labeling is c-sound but misses (1,1).
    let labeling = cdb.labeling();
    println!(
        "\nPTIME labeling marks {} tuple(s) certain — (1,1) is missed, as the",
        labeling.get("r").expect("r").support_size()
    );
    println!("paper proves it must be (its condition is not a tautology alone).");

    // The exact check (order-region solver standing in for Z3) recovers it.
    let solver = Solver::new();
    let target = tuple![1i64, 1i64];
    let membership = cdb.get("r").expect("r").membership_condition(&target);
    println!("\nmembership condition of (1,1): {membership}");
    println!(
        "exact solver says certain: {}",
        solver.is_valid(&membership)
    );

    // Queries evaluate symbolically; certain answers come out per tuple.
    let q = RaExpr::table("r").select(Expr::named("a").eq(Expr::lit(1i64)));
    let (result, certain) = certain_answers(&q, &cdb, &solver).expect("query");
    println!("\nσ[a=1](r) as a C-table ({} rows):", result.len());
    for row in result.tuples() {
        println!("  {}  when  {}", row.values, row.condition);
    }
    println!("exact certain answers: {certain:?}");

    // The same database as a UA-DB: best-guess world + cheap labels.
    let ua = UaDb::from_cdb(&cdb);
    println!("\nUA-DB view (best-guess valuation X = 0):");
    for (t, ann) in ua.relation("r").expect("r").sorted_tuples() {
        println!("  {t}  certain={}", ann.is_fully_certain());
    }
    println!(
        "\nThe UA-DB answers instantly with sound labels; the exact check\n\
         costs a solver call per tuple — the trade-off the paper's Figure 10\n\
         quantifies (reproduce it: cargo run --release -p ua-bench --bin\n\
         reproduce -- fig10)."
    );
}
