//! The data-cleaning motivation (paper Sections 1 and 11.5): impute missing
//! values, keep track of which answers depend on the imputation.
//!
//! A survey table loses 30% of its values; mode/mean imputation repairs it
//! into a best-guess world. Queries over the repaired table silently mix
//! reliable and speculative answers — the UA-DB makes the difference
//! visible, and the utility comparison shows why best-guess answers beat
//! certain answers.
//!
//! Run with `cargo run --example data_cleaning`.

use uadb::baselines::certain_subset;
use uadb::datagen::utility::{build, ground_truth, precision_recall};
use uadb::engine::plan::Plan;
use uadb::engine::sql::{parse, plan_query, RejectAnnotations};
use uadb::engine::{execute, Catalog};

fn main() {
    let ground = ground_truth("income_survey", 2000, 42);
    let instance = build(&ground, 0.30, 7);
    println!(
        "income_survey: {} rows, 30% of values nulled, then imputed (mode/mean)\n",
        ground.len()
    );

    let sql = "SELECT id, age_group, source FROM survey WHERE income >= 30000";
    println!("query: {sql}\n");

    let run = |table: &uadb::engine::Table| {
        let catalog = Catalog::new();
        catalog.register("survey", table.clone());
        let ast = parse(sql).expect("parse");
        let plan = plan_query(&ast, &catalog, &RejectAnnotations).expect("plan");
        execute(&plan, &catalog).expect("run")
    };

    let truth = run(&instance.ground);
    let bgqp = run(&instance.imputed);
    let rgqp = run(&instance.random_repair);

    // Libkin-style certain answers over the incomplete (null-ful) table.
    let catalog = Catalog::new();
    catalog.register("survey", instance.incomplete.clone());
    let ast = parse(sql).expect("parse");
    let plan = plan_query(&ast, &catalog, &RejectAnnotations).expect("plan");
    let certain =
        certain_subset(&Plan::from_ra(&plan.to_ra().expect("SPJ")), &catalog).expect("libkin");

    println!(
        "{:<28} {:>9} {:>10} {:>8}",
        "strategy", "precision", "recall", "rows"
    );
    for (name, result) in [
        ("best-guess (imputed) world", &bgqp),
        ("random repair", &rgqp),
        ("certain answers (Libkin)", &certain),
    ] {
        let (p, r) = precision_recall(result, &truth);
        println!("{name:<28} {p:>9.3} {r:>10.3} {:>8}", result.len());
    }

    println!(
        "\nThe paper's Figure 18 in miniature: the under-approximation is\n\
         perfectly precise but loses recall badly, while best-guess answers\n\
         stay close to the ground truth — and a UA-DB gives you the best-guess\n\
         answers *with* certainty labels, at deterministic cost."
    );
}
