//! UA-DBs beyond sets and bags: the access-control semiring `A`
//! (paper Section 11.3, Figure 21).
//!
//! Tuples carry clearance levels `0 < T < S < C < P`; joins take the
//! minimum (more restrictive) clearance, alternative derivations the
//! maximum. An uncertain classifier's labels become a UA-DB whose pairs
//! bound each answer's true clearance.
//!
//! Run with `cargo run --example access_control`.

use uadb::data::relation::{Database, Relation};
use uadb::data::{eval, tuple, Expr, RaExpr, Schema};
use uadb::semiring::access::Access;
use uadb::semiring::pair::Ua;

fn main() {
    // Personnel records with *true* clearances…
    let records = [
        (tuple![1i64, "alice", "ops"], Access::Public),
        (tuple![2i64, "bob", "ops"], Access::Confidential),
        (tuple![3i64, "carol", "intel"], Access::Secret),
        (tuple![4i64, "dave", "intel"], Access::TopSecret),
    ];
    // …and a heuristic classifier's lower bounds (c-sound: never above the
    // true level; "carol" is conservatively under-labeled).
    let classifier = [
        (tuple![1i64, "alice", "ops"], Access::Public),
        (tuple![2i64, "bob", "ops"], Access::Confidential),
        (tuple![3i64, "carol", "intel"], Access::TopSecret),
        (tuple![4i64, "dave", "intel"], Access::TopSecret),
    ];

    let schema = Schema::qualified("personnel", ["id", "name", "team"]);
    let mut db: Database<Ua<Access>> = Database::new();
    db.insert(
        "personnel",
        Relation::from_annotated(
            schema,
            records
                .iter()
                .zip(&classifier)
                .map(|((t, true_level), (_, classified))| {
                    (t.clone(), Ua::new(*classified, *true_level))
                }),
        ),
    );

    println!("personnel with [classifier, true] clearance bounds:");
    for (t, ann) in db.get("personnel").expect("personnel").sorted_tuples() {
        println!("  {t} ↦ [{:?}, {:?}]", ann.cert, ann.det);
    }

    // Project to teams: ⊕ = max grants the least restrictive derivation.
    let q = RaExpr::table("personnel").project(["team"]);
    let teams = eval(&q, &db).expect("project");
    println!("\nπ[team] under the access-control semiring:");
    for (t, ann) in teams.sorted_tuples() {
        println!(
            "  {t} ↦ [{:?}, {:?}]{}",
            ann.cert,
            ann.det,
            if ann.cert == ann.det {
                "  (bound is tight)"
            } else {
                "  (classifier under-estimates the visibility)"
            }
        );
    }

    // Join with an assignments table: ⊗ = min restricts.
    let mut db2 = db.clone();
    db2.insert(
        "missions",
        Relation::from_annotated(
            Schema::qualified("missions", ["team", "mission"]),
            vec![
                (tuple!["ops", "logistics"], Ua::certain(Access::Public)),
                (tuple!["intel", "overwatch"], Ua::certain(Access::Secret)),
            ],
        ),
    );
    let q = RaExpr::table("personnel")
        .join(
            RaExpr::table("missions"),
            Expr::named("personnel.team").eq(Expr::named("missions.team")),
        )
        .project(["name", "mission"]);
    let joined = eval(&q, &db2).expect("join");
    println!("\nwho can be named on which mission (min of clearances):");
    for (t, ann) in joined.sorted_tuples() {
        println!("  {t} ↦ [{:?}, {:?}]", ann.cert, ann.det);
    }
    println!(
        "\nThe pair semantics is the same machinery as bag/set UA-DBs —\n\
         one K-relational evaluator covers every l-semiring (paper §5)."
    );
}
