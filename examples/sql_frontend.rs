//! The SQL middleware of the paper's Section 9: declare a raw table as an
//! x-relation in `FROM`, and the frontend labels it, extracts the
//! best-guess world and rewrites the query with `⟦·⟧_UA`.
//!
//! Run with `cargo run --example sql_frontend`.

use uadb::data::{tuple, Schema};
use uadb::engine::{Table, UaSession};

fn main() {
    let session = UaSession::new();

    // A raw x-relation, stored row-wise with x-tuple id, alternative id and
    // probability columns — the storage format of Section 9.2.
    session.register_table(
        "addr",
        Table::from_rows(
            Schema::qualified("addr", ["xid", "aid", "p", "id", "locale", "state"]),
            vec![
                tuple![1i64, 1i64, 1.0, 1i64, "Lasalle", "NY"],
                tuple![2i64, 1i64, 0.6, 2i64, "Tucson", "AZ"],
                tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry", "NY"],
                tuple![3i64, 1i64, 0.5, 3i64, "Kingsley", "NY"],
                tuple![3i64, 2i64, 0.5, 3i64, "Kingsley", "NY"],
                tuple![4i64, 1i64, 1.0, 4i64, "Kensington", "NY"],
            ],
        ),
    );

    // And a deterministic lookup table for a join.
    session.register_table(
        "region",
        Table::from_rows(
            Schema::qualified("region", ["state", "region_name"]),
            vec![tuple!["NY", "Northeast"], tuple!["AZ", "Southwest"]],
        ),
    );
    // For UA queries, deterministic tables need the marker too: register the
    // certain encoding via the TI path with probability 1 — or simply use
    // the annotation syntax with a constant-1 column. Here we re-register it
    // pre-encoded:
    session.register_table("region_enc", {
        let mut rows = Vec::new();
        for row in [tuple!["NY", "Northeast"], tuple!["AZ", "Southwest"]] {
            rows.push(row.push(uadb::data::Value::Int(1)));
        }
        Table::from_rows(
            Schema::qualified("region", ["state", "region_name"])
                .with_column(uadb::core::UA_LABEL_COLUMN),
            rows,
        )
    });

    let sql = "SELECT a.id, a.locale, r.region_name \
               FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) a, \
                    region_enc r \
               WHERE a.state = r.state \
               ORDER BY id";
    println!("SQL over an annotated source:\n  {sql}\n");

    let result = session.query_ua(sql).expect("UA query");
    println!("{:<4} {:<14} {:<12} certain?", "id", "locale", "region");
    for (row, certain) in result.rows_with_certainty() {
        println!(
            "{:<4} {:<14} {:<12} {certain}",
            row.get(0).expect("id"),
            row.get(1).expect("locale").to_string().trim_matches('\''),
            row.get(2).expect("region").to_string().trim_matches('\''),
        );
    }

    let (certain, total) = result.certainty_counts();
    println!("\n{certain}/{total} answers are labeled certain.");
    println!(
        "Deterministic (best-guess) processing would return the same rows\n\
         without the labels; certain-answer semantics would return only the\n\
         {certain} labeled rows."
    );

    // The comma-join above is planned as a hash join: the optimizer merges
    // the WHERE into the join, extracts the equi-key, and builds on the
    // smaller side (see docs/optimizer.md). EXPLAIN shows all three stages.
    println!(
        "\n{}",
        session
            .explain_ua(
                "SELECT a.id, r.region_name \
                 FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) a, \
                      region_enc r \
                 WHERE a.state = r.state"
            )
            .expect("explain")
    );
}
