//! Query-lifetime tracing: export a Perfetto / chrome://tracing JSON
//! timeline of one query's execution.
//!
//! Runs a 3-way join + GROUP BY on the vectorized executor with tracing
//! armed, then writes `trace.json` — open it at <https://ui.perfetto.dev>
//! or `chrome://tracing` to see the session-thread phase spans (parse →
//! plan → optimize → bind → execute → merge) stacked above the morsel
//! pool's per-worker task spans. Tracing is a pure observer: the query
//! result is byte-identical with tracing on or off.
//!
//! Run with `cargo run --example trace`.

use uadb::data::{tuple, Schema};
use uadb::engine::{ExecMode, Table, UaSession};

fn main() {
    uadb::vecexec::install();
    let session = UaSession::new();

    session.register_table(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["ok", "ck", "total"]),
            (0..4000i64)
                .map(|i| tuple![i, (i * 7) % 80, (i * 13) % 500])
                .collect(),
        ),
    );
    session.register_table(
        "cust",
        Table::from_rows(
            Schema::qualified("cust", ["ck", "dk"]),
            (0..80i64).map(|i| tuple![i, i % 6]).collect(),
        ),
    );
    session.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["dk", "region"]),
            (0..6i64).map(|i| tuple![i, i % 3]).collect(),
        ),
    );

    let sql = "SELECT d.region, count(*) AS n, sum(o.total) AS s \
               FROM orders o, cust c, dept d \
               WHERE o.ck = c.ck AND c.dk = d.dk AND o.total >= 100 \
               GROUP BY d.region ORDER BY s DESC";

    // Arm tracing; run the same query on both executors. Each query's
    // trace replaces the previous one, so export after each run.
    session.set_trace_enabled(true);

    session.set_exec_mode(ExecMode::Row);
    let rows = session.query_det(sql).expect("row query");
    let row_trace = session.last_query_trace().expect("row trace");
    println!(
        "row engine: {} result rows, trace {} bytes",
        rows.len(),
        row_trace.len()
    );

    session.set_exec_mode(ExecMode::Vectorized);
    session.set_vec_threads(4);
    let rows = session.query_det(sql).expect("vec query");
    let vec_trace = session.last_query_trace().expect("vec trace");
    println!(
        "vectorized engine: {} result rows, trace {} bytes",
        rows.len(),
        vec_trace.len()
    );

    let spans = vec_trace.matches("\"ph\": \"B\"").count();
    let morsels = vec_trace.matches("morsel").count();
    println!("vectorized trace: {spans} nested spans, {morsels} pool morsel spans");

    std::fs::write("trace.json", &vec_trace).expect("write trace.json");
    println!("wrote trace.json — open it at https://ui.perfetto.dev");
}
