//! The paper's running example (Figures 2/3): ambiguous geocodings.
//!
//! An address table where some addresses geocode to several candidate
//! coordinates becomes an x-DB; the UA-DB runs the locale lookup over the
//! best-guess world while labeling which answers are certain —
//! reproducing Figure 3d.
//!
//! Run with `cargo run --example quickstart`.

use uadb::core::UaDb;
use uadb::data::{tuple, Expr, RaExpr, Schema};
use uadb::models::{XDb, XRelation, XTuple};

fn main() {
    // ADDR (Figure 2): addresses 2 and 3 have ambiguous geocodings, already
    // joined with the LOC lookup table to (id, locale, state) candidates.
    let mut addr = XRelation::new(Schema::qualified("loc", ["id", "locale", "state"]));
    addr.push(XTuple::total(vec![tuple![1i64, "Lasalle", "NY"]]));
    addr.push(XTuple::probabilistic(vec![
        (tuple![2i64, "Tucson", "AZ"], 0.6),
        (tuple![2i64, "Grant Ferry", "NY"], 0.4),
    ]));
    addr.push(XTuple::probabilistic(vec![
        (tuple![3i64, "Kingsley", "NY"], 0.5),
        (tuple![3i64, "Kingsley South", "NY"], 0.5),
    ]));
    addr.push(XTuple::total(vec![tuple![4i64, "Kensington", "NY"]]));
    let mut xdb = XDb::new();
    xdb.insert("loc", addr);

    // Build the UA-DB: best-guess world + c-sound labeling (Section 4).
    let ua = UaDb::from_xdb(&xdb);

    println!("UA-DB over the best-guess world (paper Figure 3d):");
    println!("{:<4} {:<14} {:<6} certain?", "id", "locale", "state");
    for (t, ann) in ua.relation("loc").expect("loc").sorted_tuples() {
        println!(
            "{:<4} {:<14} {:<6} {}",
            t.get(0).expect("id"),
            t.get(1).expect("locale").to_string().trim_matches('\''),
            t.get(2).expect("state").to_string().trim_matches('\''),
            ann.is_fully_certain()
        );
    }

    // Queries preserve the sandwich (Theorem 4): locations in NY state.
    let q = RaExpr::table("loc")
        .select(Expr::named("state").eq(Expr::lit("NY")))
        .project(["id", "locale"]);
    let result = ua.query(&q).expect("query");
    println!("\nσ[state='NY'] then π[id, locale]:");
    for (t, ann) in result.sorted_tuples() {
        println!(
            "  {t}  certain={} (annotation [{}, {}])",
            ann.is_fully_certain(),
            ann.cert,
            ann.det
        );
    }

    // Ground truth by world enumeration (4 worlds, paper Example 1).
    let incomplete = xdb.enumerate_worlds(100);
    println!(
        "\nThe x-DB encodes {} possible worlds; certain answers to the query:",
        incomplete.n_worlds()
    );
    let worlds_result = incomplete.query(&q).expect("possible-world query");
    for (t, _) in result.sorted_tuples() {
        let cert = worlds_result.certain_annotation("result", &t);
        println!("  {t}  truly-certain multiplicity = {cert}");
    }
    println!(
        "\nEvery tuple labeled certain is truly certain (c-soundness); the\n\
         sandwich keeps possible-but-uncertain answers available, unlike\n\
         certain-answer semantics which would drop address 2 entirely."
    );

    // The same pipeline through the SQL middleware, on the vectorized
    // columnar executor: opt in with ExecMode::Vectorized (after a one-time
    // uadb::vecexec::install()); labels then flow as per-batch bitmaps
    // instead of per-tuple pair-semiring calls. Results are identical —
    // only faster at scale.
    uadb::vecexec::install();
    let session = uadb::engine::UaSession::with_mode(uadb::engine::ExecMode::Vectorized);
    session.register_table(
        "addr",
        uadb::engine::Table::from_rows(
            Schema::qualified("addr", ["xid", "aid", "p", "id", "locale", "state"]),
            vec![
                tuple![1i64, 1i64, 1.0, 1i64, "Lasalle", "NY"],
                tuple![2i64, 1i64, 0.6, 2i64, "Tucson", "AZ"],
                tuple![2i64, 2i64, 0.4, 2i64, "Grant Ferry", "NY"],
                tuple![4i64, 1i64, 1.0, 4i64, "Kensington", "NY"],
            ],
        ),
    );
    let vec_result = session
        .query_ua(
            "SELECT id, locale FROM addr IS X WITH XID (xid) ALTID (aid) PROBABILITY (p) \
             WHERE state = 'NY' ORDER BY id",
        )
        .expect("vectorized UA query");
    println!("\nSame query, vectorized executor (ExecMode::Vectorized):");
    for (row, certain) in vec_result.rows_with_certainty() {
        println!("  {row} certain={certain}");
    }
}
