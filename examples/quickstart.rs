//! The paper's running example (Figures 2/3): ambiguous geocodings.
//!
//! An address table where some addresses geocode to several candidate
//! coordinates becomes an x-DB; the UA-DB runs the locale lookup over the
//! best-guess world while labeling which answers are certain —
//! reproducing Figure 3d.
//!
//! Run with `cargo run --example quickstart`.

use uadb::core::UaDb;
use uadb::data::{tuple, Expr, RaExpr, Schema};
use uadb::models::{XDb, XRelation, XTuple};

fn main() {
    // ADDR (Figure 2): addresses 2 and 3 have ambiguous geocodings, already
    // joined with the LOC lookup table to (id, locale, state) candidates.
    let mut addr = XRelation::new(Schema::qualified("loc", ["id", "locale", "state"]));
    addr.push(XTuple::total(vec![tuple![1i64, "Lasalle", "NY"]]));
    addr.push(XTuple::probabilistic(vec![
        (tuple![2i64, "Tucson", "AZ"], 0.6),
        (tuple![2i64, "Grant Ferry", "NY"], 0.4),
    ]));
    addr.push(XTuple::probabilistic(vec![
        (tuple![3i64, "Kingsley", "NY"], 0.5),
        (tuple![3i64, "Kingsley South", "NY"], 0.5),
    ]));
    addr.push(XTuple::total(vec![tuple![4i64, "Kensington", "NY"]]));
    let mut xdb = XDb::new();
    xdb.insert("loc", addr);

    // Build the UA-DB: best-guess world + c-sound labeling (Section 4).
    let ua = UaDb::from_xdb(&xdb);

    println!("UA-DB over the best-guess world (paper Figure 3d):");
    println!("{:<4} {:<14} {:<6} {}", "id", "locale", "state", "certain?");
    for (t, ann) in ua.relation("loc").expect("loc").sorted_tuples() {
        println!(
            "{:<4} {:<14} {:<6} {}",
            t.get(0).expect("id"),
            t.get(1).expect("locale").to_string().trim_matches('\''),
            t.get(2).expect("state").to_string().trim_matches('\''),
            ann.is_fully_certain()
        );
    }

    // Queries preserve the sandwich (Theorem 4): locations in NY state.
    let q = RaExpr::table("loc")
        .select(Expr::named("state").eq(Expr::lit("NY")))
        .project(["id", "locale"]);
    let result = ua.query(&q).expect("query");
    println!("\nσ[state='NY'] then π[id, locale]:");
    for (t, ann) in result.sorted_tuples() {
        println!(
            "  {t}  certain={} (annotation [{}, {}])",
            ann.is_fully_certain(),
            ann.cert,
            ann.det
        );
    }

    // Ground truth by world enumeration (4 worlds, paper Example 1).
    let incomplete = xdb.enumerate_worlds(100);
    println!(
        "\nThe x-DB encodes {} possible worlds; certain answers to the query:",
        incomplete.n_worlds()
    );
    let worlds_result = incomplete.query(&q).expect("possible-world query");
    for (t, _) in result.sorted_tuples() {
        let cert = worlds_result.certain_annotation("result", &t);
        println!("  {t}  truly-certain multiplicity = {cert}");
    }
    println!(
        "\nEvery tuple labeled certain is truly certain (c-soundness); the\n\
         sandwich keeps possible-but-uncertain answers available, unlike\n\
         certain-answer semantics which would drop address 2 entirely."
    );
}
