//! EXPLAIN ANALYZE and the engine-wide metrics registry.
//!
//! Runs a 3-way join + GROUP BY on both executors, prints the
//! instrumented plan tree (per-operator actual rows, wall time, and the
//! planner's estimated cardinalities), reads the same stats back
//! programmatically via `last_query_stats()`, and dumps the global
//! metrics registry — including the AU fallback audit and the planner's
//! est-vs-actual join feedback counters.
//!
//! Run with `cargo run --example observability`.

use uadb::data::{tuple, Schema};
use uadb::engine::{ExecMode, Table, UaSession};

fn main() {
    uadb::vecexec::install();
    let session = UaSession::new();

    // orders ⋈ cust ⋈ dept, small but joinful.
    session.register_table(
        "orders",
        Table::from_rows(
            Schema::qualified("orders", ["ok", "ck", "total"]),
            (0..400i64)
                .map(|i| tuple![i, (i * 7) % 80, (i * 13) % 500])
                .collect(),
        ),
    );
    session.register_table(
        "cust",
        Table::from_rows(
            Schema::qualified("cust", ["ck", "dk"]),
            (0..80i64).map(|i| tuple![i, i % 6]).collect(),
        ),
    );
    session.register_table(
        "dept",
        Table::from_rows(
            Schema::qualified("dept", ["dk", "region"]),
            (0..6i64).map(|i| tuple![i, i % 3]).collect(),
        ),
    );
    // Collected table/column statistics sharpen the `est=` column.
    for t in ["orders", "cust", "dept"] {
        session.catalog().analyze(t).expect("analyze");
    }

    let sql = "SELECT d.region, count(*) AS n, sum(o.total) AS s \
               FROM orders o, cust c, dept d \
               WHERE o.ck = c.ck AND c.dk = d.dk AND o.total >= 100 \
               GROUP BY d.region";

    // 1. EXPLAIN ANALYZE: plan + per-operator execution tree, on both
    //    engines. The vectorized report adds batch counts and the
    //    morsel-pool line (tasks, steals, merge wait).
    for mode in [ExecMode::Row, ExecMode::Vectorized] {
        session.set_exec_mode(mode);
        println!("──── EXPLAIN ANALYZE ({mode:?}) ────");
        println!("{}\n", session.explain_analyze_det(sql).expect("analyze"));
    }

    // 2. The same stats, programmatically: enable collection, run the
    //    query, read the span tree off the session.
    session.set_stats_enabled(true);
    let result = session.query_det(sql).expect("query");
    let stats = session.last_query_stats().expect("stats");
    println!("──── last_query_stats() ────");
    println!(
        "engine={} semantics={} result_rows={}",
        stats.engine,
        stats.semantics,
        result.len()
    );
    stats.root.walk(&mut |op| {
        let est = op.est_rows.map_or("?".into(), |e| e.to_string());
        println!(
            "  {:<12} rows={:<6} est={:<6} self={}ns",
            op.name,
            op.rows_out,
            est,
            op.self_ns()
        );
    });
    println!("as JSON: {}\n", stats.to_json());

    // 3. The global registry: planner est-vs-actual feedback (fed by every
    //    instrumented join) and the AU vectorized fallback audit.
    session.set_exec_mode(ExecMode::Vectorized);
    session
        .query_au(
            "SELECT x.region, count(*) AS n FROM \
             dept IS TI WITH PROBABILITY (dk) x GROUP BY x.region",
        )
        .ok();
    println!("──── metrics registry ────");
    println!("{}", uadb::obs::global().to_json());
}
