//! Property-based tests of the paper's core invariants, over randomly
//! generated databases and queries.

use proptest::prelude::*;
use uadb::core::{decode_relation, encode_database, encode_relation, rewrite_ua, UaDb};
use uadb::data::relation::{Database, Relation};
use uadb::data::{eval, Expr, ProjColumn, RaExpr, Schema, Tuple, Value};
use uadb::models::{XDb, XRelation, XTuple};
use uadb::semiring::pair::Ua;
use uadb::semiring::world::WorldVec;
use uadb::semiring::{laws, Semiring};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A small x-DB over schema (k, v): up to 6 x-tuples with up to 3
/// alternatives each, some optional.
fn arb_xdb() -> impl Strategy<Value = XDb> {
    let alternative =
        (0i64..4, 0i64..3).prop_map(|(k, v)| Tuple::new(vec![Value::Int(k), Value::Int(v)]));
    let xtuple = (
        proptest::collection::vec(alternative, 1..=3),
        proptest::bool::ANY,
    )
        .prop_map(|(alts, optional)| {
            if optional {
                XTuple::optional(alts, 0.5)
            } else {
                XTuple::total(alts)
            }
        });
    proptest::collection::vec(xtuple, 1..=6).prop_map(|xtuples| {
        let mut rel = XRelation::new(Schema::qualified("r", ["k", "v"]));
        for xt in xtuples {
            rel.push(xt);
        }
        let mut db = XDb::new();
        db.insert("r", rel);
        db
    })
}

/// A random RA⁺ query over `r(k, v)`.
fn arb_query() -> impl Strategy<Value = RaExpr> {
    prop_oneof![
        (0i64..3).prop_map(|c| { RaExpr::table("r").select(Expr::named("v").ge(Expr::lit(c))) }),
        Just(RaExpr::table("r").project(["k"])),
        Just(RaExpr::table("r").project(["v"])),
        (0i64..3).prop_map(|c| {
            RaExpr::table("r")
                .select(Expr::named("k").eq(Expr::lit(c)))
                .project(["v"])
        }),
        Just(RaExpr::table("r").alias("a").join(
            RaExpr::table("r").alias("b"),
            Expr::named("a.v").eq(Expr::named("b.v")),
        )),
        Just(
            RaExpr::table("r")
                .project(["k"])
                .union(RaExpr::table("r").project(["k"]))
        ),
        (0i64..3).prop_map(|c| {
            RaExpr::table("r")
                .alias("a")
                .join(
                    RaExpr::table("r").alias("b"),
                    Expr::named("a.k").eq(Expr::named("b.k")),
                )
                .select(Expr::named("a.v").ge(Expr::lit(c)))
                .project_cols(vec![ProjColumn::named("a.v")])
        }),
    ]
}

/// A small ℕ_UA-relation over one int column.
fn arb_ua_relation() -> impl Strategy<Value = Relation<Ua<u64>>> {
    proptest::collection::vec((0i64..6, 0u64..3, 0u64..3), 0..8).prop_map(|rows| {
        Relation::from_annotated(
            Schema::qualified("r", ["a"]),
            rows.into_iter()
                .map(|(a, c, extra)| (Tuple::new(vec![Value::Int(a)]), Ua::new(c, c + extra))),
        )
    })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The central soundness property (Theorems 4/5): for random x-DBs and
    /// random queries, the UA result under-approximates the certain
    /// annotations and matches the BGW exactly.
    #[test]
    fn queries_preserve_bounds(xdb in arb_xdb(), q in arb_query()) {
        let inc = xdb.enumerate_worlds(100_000);
        let ua = UaDb::from_xdb(&xdb);
        let result = ua.query(&q).expect("ua query");
        let ground = inc.query(&q).expect("world query");
        for (t, ann) in result.iter() {
            let cert = ground.certain_annotation("result", t);
            prop_assert!(ann.cert <= cert, "c-soundness violated at {t}");
            prop_assert!(cert <= ann.det, "over-approximation violated at {t}");
        }
    }

    /// Theorem 7 on random data: rewritten queries over the encoding
    /// compute the UA semantics exactly.
    #[test]
    fn rewriting_is_correct(rel in arb_ua_relation(), q in arb_query()) {
        // Reuse the r(k, v)-shaped queries over a 1-column table by
        // re-projecting: wrap the relation to (k, v) = (a, a).
        let widened = Relation::from_annotated(
            Schema::qualified("r", ["k", "v"]),
            rel.iter().map(|(t, ann)| {
                let a = t.get(0).expect("col").clone();
                (Tuple::new(vec![a.clone(), a]), *ann)
            }),
        );
        let mut db: Database<Ua<u64>> = Database::new();
        db.insert("r", widened);
        let ua = UaDb::from_database(db);

        let direct = ua.query(&q).expect("direct");
        let encoded = encode_database(ua.database());
        let lookup = |name: &str| encoded.get(name).map(|r| r.schema().clone());
        let rewritten = rewrite_ua(&q, &lookup).expect("rewrite");
        let via_enc = decode_relation(&eval(&rewritten, &encoded).expect("eval"));
        prop_assert_eq!(direct, via_enc);
    }

    /// `Enc⁻¹ ∘ Enc` is the identity on well-formed UA-relations.
    #[test]
    fn encoding_round_trips(rel in arb_ua_relation()) {
        let decoded = decode_relation(&encode_relation(&rel));
        prop_assert_eq!(rel, decoded);
    }

    /// Lemma 3 on random annotation vectors: `cert` is superadditive and
    /// supermultiplicative.
    #[test]
    fn cert_is_super(
        a in proptest::collection::vec(0u64..5, 1..5),
        b in proptest::collection::vec(0u64..5, 1..5),
    ) {
        let n = a.len().min(b.len());
        let va = WorldVec::from_worlds(a[..n].to_vec());
        let vb = WorldVec::from_worlds(b[..n].to_vec());
        let sum_cert = va.plus(&vb).cert();
        let prod_cert = va.times(&vb).cert();
        prop_assert!(va.cert() + vb.cert() <= sum_cert);
        prop_assert!(va.cert() * vb.cert() <= prod_cert);
    }

    /// Semiring laws for random UA pairs (products of semirings are
    /// semirings).
    #[test]
    fn ua_pair_semiring_laws(
        elems in proptest::collection::vec((0u64..4, 0u64..4), 1..5)
    ) {
        let elems: Vec<Ua<u64>> = elems
            .into_iter()
            .map(|(c, d)| Ua::new(c.min(d), d))
            .collect();
        laws::check_semiring_laws(&elems);
    }

    /// Labeling schemes stay sound: the x-DB labeling never exceeds the
    /// certain annotation (Theorem 3, randomized).
    #[test]
    fn xdb_labeling_sound(xdb in arb_xdb()) {
        let inc = xdb.enumerate_worlds(100_000);
        let labeling = xdb.labeling();
        prop_assert!(uadb::incomplete::is_c_sound(&labeling, &inc));
        prop_assert!(uadb::incomplete::is_c_correct(&labeling, &inc));
    }

    /// The projection certainty oracle agrees with brute-force enumeration.
    #[test]
    fn projection_oracle_is_exact(xdb in arb_xdb(), col in 0usize..2) {
        let rel = xdb.get("r").expect("r");
        let oracle = rel.projection_certain_set(&[col]);
        let inc = xdb.enumerate_worlds(100_000);
        let q = RaExpr::table("r").project([if col == 0 { "k" } else { "v" }]);
        let ground = inc.query(&q).expect("worlds");
        let brute: Vec<Tuple> = ground
            .certain_relation("result")
            .map(|r| {
                let mut v: Vec<Tuple> = r.iter().map(|(t, _)| t.clone()).collect();
                v.sort();
                v
            })
            .unwrap_or_default();
        prop_assert_eq!(oracle, brute);
    }

    /// The Libkin baseline is c-sound on random Codd tables derived from
    /// x-DBs (uncertain attributes → NULL).
    #[test]
    fn libkin_under_approximates(xdb in arb_xdb(), q in arb_query()) {
        // Build the null view: per x-tuple, attributes where alternatives
        // disagree become NULL; optional x-tuples are dropped entirely
        // (sound: we may only under-approximate).
        let rel = xdb.get("r").expect("r");
        let mut rows = Vec::new();
        for xt in rel.xtuples() {
            if xt.optional {
                continue;
            }
            let first = &xt.alternatives[0].tuple;
            let values: Vec<Value> = (0..2)
                .map(|i| {
                    let v0 = first.get(i).expect("col");
                    if xt.alternatives.iter().all(|a| a.tuple.get(i) == Some(v0)) {
                        v0.clone()
                    } else {
                        Value::Null
                    }
                })
                .collect();
            rows.push(Tuple::new(values));
        }
        let catalog = uadb::engine::Catalog::new();
        catalog.register(
            "r",
            uadb::engine::Table::from_rows(Schema::qualified("r", ["k", "v"]), rows),
        );
        let under = uadb::baselines::certain_subset(
            &uadb::engine::Plan::from_ra(&q),
            &catalog,
        )
        .expect("libkin");

        let inc = xdb.enumerate_worlds(100_000);
        let ground = inc.query(&q).expect("worlds");
        for t in under.rows() {
            prop_assert!(
                ground.certain_annotation("result", t) > 0,
                "Libkin claimed non-certain tuple {t}"
            );
        }
    }
}
