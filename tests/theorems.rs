//! The paper's named theorems as executable checks (beyond the per-crate
//! unit tests): c-completeness preservation for TI-DBs (Corollary 1) and
//! the x-key condition (Theorem 6).

use uadb::core::UaDb;
use uadb::data::{tuple, Expr, ProjColumn, RaExpr, Schema};
use uadb::incomplete::{is_c_complete, is_c_correct, is_c_sound};
use uadb::models::{TiDb, TiRelation, TiTuple, XDb, XRelation, XTuple};
use uadb::semiring::hom::support;

fn sample_tidb() -> TiDb {
    let mut r = TiRelation::new(Schema::qualified("r", ["a", "b"]));
    r.push(TiTuple::certain(tuple![1i64, 10i64]));
    r.push(TiTuple::certain(tuple![2i64, 20i64]));
    r.push(TiTuple::with_probability(tuple![3i64, 10i64], 0.7));
    r.push(TiTuple::with_probability(tuple![4i64, 20i64], 0.3));
    let mut db = TiDb::new();
    db.insert("r", r);
    db
}

/// Corollary 1: over TI-DB labelings, RA⁺ queries preserve c-completeness
/// (and hence c-correctness, since c-soundness always holds).
#[test]
fn corollary1_tidb_queries_preserve_c_correctness() {
    let tidb = sample_tidb();
    let inc = tidb.enumerate_worlds(16);
    let labeling = tidb.labeling();
    assert!(
        is_c_correct(&labeling, &inc),
        "label_TIDB must be c-correct"
    );

    let queries = vec![
        RaExpr::table("r").select(Expr::named("b").eq(Expr::lit(10i64))),
        RaExpr::table("r").project(["b"]),
        RaExpr::table("r").alias("x").join(
            RaExpr::table("r").alias("y"),
            Expr::named("x.b").eq(Expr::named("y.b")),
        ),
        RaExpr::table("r")
            .project(["b"])
            .union(RaExpr::table("r").project(["b"])),
    ];
    for q in queries {
        // Evaluate the labeling as a 𝔹-database.
        let mut label_db = uadb::data::Database::<bool>::new();
        label_db.insert("r", labeling.get("r").unwrap().clone());
        let label_result = uadb::data::eval(&q, &label_db).expect("labeling eval");

        // Ground truth via possible worlds.
        let ground = inc.query(&q).expect("worlds");

        // c-soundness (Theorem 5) and c-completeness (Corollary 1): the
        // evaluated labeling is exactly the certain answers.
        let mut result_db = uadb::incomplete::Labeling::<bool>::new();
        result_db.insert("result", label_result.clone());
        let result_inc = uadb::incomplete::IncompleteDb::new(
            (0..ground.n_worlds())
                .map(|i| ground.world(i).clone())
                .collect(),
        );
        assert!(
            is_c_sound(&result_db, &result_inc),
            "Theorem 5 violated for {q}"
        );
        assert!(
            is_c_complete(&result_db, &result_inc),
            "Corollary 1 violated for {q}"
        );
    }
}

fn addresses_xdb() -> XDb {
    // x-tuples whose alternatives differ on `loc` but not on `id`.
    let mut rel = XRelation::new(Schema::qualified("addr", ["id", "loc"]));
    rel.push(XTuple::total(vec![tuple![1i64, "a"], tuple![1i64, "b"]]));
    rel.push(XTuple::total(vec![tuple![2i64, "c"]]));
    rel.push(XTuple::total(vec![tuple![3i64, "c"], tuple![3i64, "d"]]));
    let mut db = XDb::new();
    db.insert("addr", rel);
    db
}

/// Theorem 6: projections retaining an x-key preserve c-completeness;
/// dropping the x-key loses it (the paper's canonical counterexample).
#[test]
fn theorem6_x_keys_control_completeness() {
    let xdb = addresses_xdb();
    let rel = xdb.get("addr").unwrap();
    // `loc` (position 1) is an x-key; `id` (position 0) is not.
    assert!(rel.is_x_key(&[1]));
    assert!(!rel.is_x_key(&[0]));

    let inc = xdb.enumerate_worlds(100);
    // Set-semantics view of the labeling.
    let labeling_set = xdb.labeling().map_annotations(&support);
    let inc_set = uadb::incomplete::IncompleteDb::new(
        inc.worlds()
            .iter()
            .map(|w| w.map_annotations(&support))
            .collect(),
    );
    assert!(is_c_complete(&labeling_set, &inc_set));

    // Projection retaining the x-key: completeness preserved.
    let q_key = RaExpr::table("addr").project(["id", "loc"]);
    let mut ldb = uadb::data::Database::<bool>::new();
    ldb.insert("addr", labeling_set.get("addr").unwrap().clone());
    let label_result = uadb::data::eval(&q_key, &ldb).expect("eval");
    let ground = inc_set.query(&q_key).expect("worlds");
    let cert = ground.certain_relation("result").expect("certain relation");
    for (t, _) in cert.iter() {
        assert!(
            label_result.annotation(t),
            "Theorem 6 violated: {t} certain but unlabeled under an x-key projection"
        );
    }

    // Projection dropping the x-key: the tuple ⟨1⟩ becomes certain (both
    // alternatives project to it) but stays unlabeled — completeness lost,
    // soundness kept.
    let q_nokey = RaExpr::table("addr").project(["id"]);
    let label_result = uadb::data::eval(&q_nokey, &ldb).expect("eval");
    let ground = inc_set.query(&q_nokey).expect("worlds");
    assert!(ground.certain_annotation("result", &tuple![1i64]));
    assert!(
        !label_result.annotation(&tuple![1i64]),
        "⟨1⟩ must be a (sound) false negative without the x-key"
    );
    // Soundness is never lost (Theorem 5).
    for (t, _) in label_result.iter() {
        assert!(ground.certain_annotation("result", t));
    }
}

/// The worst case the paper promises: with no certainty information, the
/// UA-DB degrades to exactly best-guess query processing.
#[test]
fn degenerates_to_bgqp_without_certainty_information() {
    let mut rel = XRelation::new(Schema::qualified("r", ["a"]));
    rel.push(XTuple::total(vec![tuple![1i64], tuple![2i64]]));
    rel.push(XTuple::total(vec![tuple![3i64], tuple![4i64]]));
    let mut xdb = XDb::new();
    xdb.insert("r", rel);

    let ua = UaDb::from_xdb(&xdb);
    let q = RaExpr::table("r").project_cols(vec![ProjColumn::named("a")]);
    let result = ua.query(&q).expect("query");
    // Nothing is labeled certain…
    assert!(result.iter().all(|(_, ann)| ann.cert == 0));
    // …but every best-guess answer is present.
    let bgqp = uadb::data::eval(&q, &xdb.best_guess_world()).expect("bgqp");
    assert_eq!(
        result.map_annotations(&uadb::semiring::hom::h_det::<u64>),
        bgqp
    );
}

/// Section 8, Lemma 5: when two annotation vectors attain their GLB in a
/// *common* world, `⊓` commutes with `⊕` and `⊗` — the engine room of
/// Corollary 1.
#[test]
fn lemma5_common_minimum_world_commutes() {
    use uadb::semiring::world::WorldVec;
    use uadb::semiring::Semiring;
    // Both vectors attain their minimum in world 0.
    let a = WorldVec::from_worlds(vec![1u64, 3, 2]);
    let b = WorldVec::from_worlds(vec![0u64, 4, 5]);
    assert_eq!(a.plus(&b).cert(), a.cert() + b.cert());
    assert_eq!(a.times(&b).cert(), a.cert() * b.cert());

    // Counterexample without a common minimum world: minima in different
    // worlds make cert strictly super-additive.
    let c = WorldVec::from_worlds(vec![1u64, 3]);
    let d = WorldVec::from_worlds(vec![3u64, 1]);
    assert!(c.plus(&d).cert() > c.cert() + d.cert());
}

/// Section 8, Lemma 6: a TI-DB has one world where *every* tuple's
/// annotation vector attains its GLB (the world with exactly the certain
/// tuples).
#[test]
fn lemma6_tidb_has_a_common_minimum_world() {
    let tidb = sample_tidb();
    let inc = tidb.enumerate_worlds(16);
    let wdb = inc.to_world_db();
    let rel = wdb.database().get("r").expect("r");
    let n = wdb.n_worlds();
    let minimal = (0..n).find(|&i| {
        rel.iter().all(|(_, vector)| {
            use uadb::semiring::LSemiring;
            vector.world(i)
                == bool::glb_all((0..n).map(|j| vector.world(j)).collect::<Vec<_>>().iter())
                    .expect("non-empty")
        })
    });
    assert!(
        minimal.is_some(),
        "Lemma 6: some world must realize every tuple's GLB simultaneously"
    );
}
