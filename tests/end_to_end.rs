//! Cross-crate integration: one uncertain database flowing through every
//! layer of the system, with all evaluation paths agreeing.

use uadb::baselines::{BundleDb, UDb};
use uadb::core::{decode_relation, encode_database, rewrite_ua, UaDb};
use uadb::data::{eval, tuple, Expr, RaExpr, Schema};
use uadb::datagen::pdbench::{inject, PdbenchConfig};
use uadb::datagen::tpch::{generate, TpchConfig};
use uadb::engine::{Table, UaSession};
use uadb::models::{XDb, XRelation, XTuple};
use uadb::semiring::hom::h_det;

fn sample_xdb() -> XDb {
    let mut rel = XRelation::new(Schema::qualified("loc", ["id", "locale", "state"]));
    rel.push(XTuple::total(vec![tuple![1i64, "Lasalle", "NY"]]));
    rel.push(XTuple::probabilistic(vec![
        (tuple![2i64, "Tucson", "AZ"], 0.6),
        (tuple![2i64, "Grant Ferry", "NY"], 0.4),
    ]));
    rel.push(XTuple::probabilistic(vec![
        (tuple![3i64, "Kingsley", "NY"], 0.5),
        (tuple![3i64, "Kingsley S", "NY"], 0.5),
    ]));
    rel.push(XTuple::total(vec![tuple![4i64, "Kensington", "NY"]]));
    let mut db = XDb::new();
    db.insert("loc", rel);
    db
}

fn queries() -> Vec<RaExpr> {
    vec![
        RaExpr::table("loc").select(Expr::named("state").eq(Expr::lit("NY"))),
        RaExpr::table("loc").project(["locale", "state"]),
        RaExpr::table("loc")
            .select(Expr::named("state").eq(Expr::lit("NY")))
            .project(["id"]),
        RaExpr::table("loc").alias("a").join(
            RaExpr::table("loc").alias("b"),
            Expr::named("a.state").eq(Expr::named("b.state")),
        ),
        RaExpr::table("loc")
            .project(["state"])
            .union(RaExpr::table("loc").project(["state"])),
    ]
}

/// The three UA evaluation paths agree: native pair-semiring evaluation,
/// Enc + rewritten K-relational evaluation, and the row engine through the
/// SQL session — and their det component matches BGQP.
#[test]
fn three_evaluation_paths_agree() {
    let xdb = sample_xdb();
    let ua = UaDb::from_xdb(&xdb);

    // Path 2 setup: encoded K-relations.
    let encoded = encode_database(ua.database());
    // Path 3 setup: the engine session.
    let session = UaSession::new();
    for (name, rel) in ua.database().iter() {
        session.register_ua_relation(name.clone(), rel);
    }

    for q in queries() {
        let native = ua.query(&q).expect("native");

        let lookup = |name: &str| encoded.get(name).map(|r| r.schema().clone());
        let rewritten = rewrite_ua(&q, &lookup).expect("rewrite");
        let via_encoding = decode_relation(&eval(&rewritten, &encoded).expect("encoded eval"));
        assert_eq!(native, via_encoding, "Theorem 7 violated for {q}");

        let via_engine = session.query_ua_ra(&q).expect("engine").decode();
        assert_eq!(native, via_engine, "engine path diverges for {q}");

        // Backwards compatibility with best-guess query processing.
        let bgqp = eval(&q, &xdb.best_guess_world()).expect("bgqp");
        assert_eq!(
            native.map_annotations(&h_det::<u64>),
            bgqp,
            "h_det ≠ BGQP for {q}"
        );
    }
}

/// UA bounds hold against exhaustive world enumeration for every query.
#[test]
fn bounds_hold_against_ground_truth() {
    let xdb = sample_xdb();
    let inc = xdb.enumerate_worlds(100);
    let ua = UaDb::from_xdb(&xdb);
    for q in queries() {
        let result = ua.query(&q).expect("ua");
        let ground = inc.query(&q).expect("worlds");
        for (t, ann) in result.iter() {
            let cert = ground.certain_annotation("result", t);
            assert!(ann.cert <= cert, "c-soundness violated at {t} for {q}");
            assert!(cert <= ann.det, "over-approx violated at {t} for {q}");
        }
        // And no certain tuple is missing from the UA result entirely
        // (the sandwich: every world ⊇ certain answers).
        if let Some(cert_rel) = inc.query(&q).expect("worlds").certain_relation("result") {
            for (t, &m) in cert_rel.iter() {
                assert!(
                    result.annotation(t).det >= m,
                    "certain tuple {t} under-represented for {q}"
                );
            }
        }
    }
}

/// The baselines bracket the UA-DB: Libkin ⊆ certain ⊆ possible ⊆ MayBMS.
#[test]
fn baselines_bracket_consistently() {
    let xdb = sample_xdb();
    let inc = xdb.enumerate_worlds(100);
    let udb = UDb::from_xdb(&xdb);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let bundles = BundleDb::from_xdb(&xdb, 32, &mut rng);

    for q in queries() {
        let ground = inc.query(&q).expect("worlds");
        let possible = ground
            .possible_relation("result")
            .expect("possible relation");

        // MayBMS possible answers = ground-truth possible answers.
        let maybms = udb.query(&q).expect("maybms");
        let mut mb_tuples = maybms.possible_tuples();
        mb_tuples.sort();
        let mut gt_tuples: Vec<_> = possible.iter().map(|(t, _)| t.clone()).collect();
        gt_tuples.sort();
        assert_eq!(
            mb_tuples, gt_tuples,
            "MayBMS possible answers wrong for {q}"
        );

        // MCDB possible ⊆ ground possible; MCDB "certain" ⊇ true certain.
        let mc = bundles.query(&q).expect("mcdb");
        for t in mc.possible() {
            assert!(possible.contains(&t), "MCDB invented {t} for {q}");
        }
        if let Some(cert_rel) = ground.certain_relation("result") {
            let mc_certain = mc.estimated_certain();
            for (t, _) in cert_rel.iter() {
                assert!(
                    mc_certain.contains(t),
                    "MCDB must see certain tuple {t} in all samples for {q}"
                );
            }
        }
    }
}

/// The PDBench pipeline end-to-end on real generated data: injection,
/// encoding, SQL execution and labeling sanity.
#[test]
fn pdbench_pipeline_end_to_end() {
    let data = generate(&TpchConfig::new(0.0005, 99));
    let u = inject(
        "lineitem",
        &data.lineitem,
        &["quantity", "discount", "shipdate"],
        &PdbenchConfig {
            uncertainty: 0.10,
            ..Default::default()
        },
    );
    let session = UaSession::new();
    session.register_table("lineitem", u.encoded["lineitem"].clone());

    let result = session
        .query_ua("SELECT orderkey, quantity FROM lineitem WHERE quantity < 25")
        .expect("sql over encoded table");
    let (certain, total) = result.certainty_counts();
    assert!(total > 0, "selection should match something");
    assert!(certain <= total);

    // Certain rows must come from rows without uncertain cells: cross-check
    // via the x-DB labeling.
    let labeling = u.xdb.labeling();
    let labeled = labeling.get("lineitem").expect("labeling");
    for (row, is_certain) in result.rows_with_certainty() {
        if is_certain {
            // The (orderkey, quantity) pair must appear in some certainly
            // labeled base tuple.
            let found = labeled
                .iter()
                .any(|(t, _)| t.get(0) == row.get(0) && t.get(2) == row.get(1));
            assert!(found, "certain row {row} lacks a certain witness");
        }
    }
}

/// Deterministic overhead sanity: the UA path returns the same rows as
/// deterministic BGQP plus markers.
#[test]
fn ua_equals_det_plus_markers() {
    let data = generate(&TpchConfig::new(0.0005, 7));
    let u = inject(
        "orders",
        &data.orders,
        &["orderdate", "totalprice"],
        &PdbenchConfig::default(),
    );
    let session = UaSession::new();
    session.register_table("orders", u.encoded["orders"].clone());
    let det_catalog = uadb::engine::Catalog::new();
    det_catalog.register("orders", u.bgw["orders"].clone());

    let sql = "SELECT orderkey, orderdate FROM orders WHERE orderdate < 1000";
    let ua_rows: Vec<_> = session
        .query_ua(sql)
        .expect("ua")
        .rows_with_certainty()
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let ast = uadb::engine::parse(sql).expect("parse");
    let plan = uadb::engine::plan_query(&ast, &det_catalog, &uadb::engine::sql::RejectAnnotations)
        .expect("plan");
    let det = uadb::engine::execute(&plan, &det_catalog).expect("det");

    let mut a = ua_rows;
    a.sort();
    let mut b = det.rows().to_vec();
    b.sort();
    assert_eq!(a, b, "UA result must be BGQP result plus markers");
}

#[test]
fn sql_and_programmatic_ctable_paths_agree() {
    use uadb::engine::ctable_source;
    // A C-table stored row-wise with a textual condition column…
    let raw = Table::from_rows(
        Schema::qualified("r", ["a", "v1", "lc"]),
        vec![
            tuple![1i64, uadb::data::Value::Null, "x < 5 OR x >= 5"],
            tuple![2i64, uadb::data::Value::Null, "x = 3"],
        ],
    );
    let encoded = ctable_source(&raw, &["v1".to_string()], "lc").expect("ctable source");
    let markers: Vec<_> = encoded
        .sorted_rows()
        .iter()
        .map(|r| r.get(1).cloned().expect("marker"))
        .collect();
    assert_eq!(
        markers,
        vec![uadb::data::Value::Int(1), uadb::data::Value::Int(0)],
        "tautology labeled certain, contingent condition uncertain"
    );
}
